//! The sans-io Chord protocol node.
//!
//! [`ChordNode`] implements ring creation, joining (optionally with
//! identifier probing, §3.5/§4), recursive greedy lookup routing,
//! stabilization, finger fixing with FOF refresh, predecessor liveness
//! checking, graceful departure, application payload routing and ring
//! broadcast. It performs no I/O: hosts feed [`Input`]s and interpret the
//! returned [`Output`]s, which is what lets the identical protocol code run
//! over both the discrete-event simulator and the UDP RPC transport, as in
//! the paper's prototype (§4).
//!
//! Request/response exchanges are retransmitted on timeout (bounded
//! retries, exponential backoff) with the retransmission timeout adapted
//! from a smoothed RTT estimate (Jacobson/Karn, as in TCP). Hosts feed the
//! node wall/virtual time through [`ChordNode::handle_at`] or
//! [`ChordNode::set_now`]; with `max_retries = 0` the node degrades to the
//! legacy single-shot behavior with the fixed `req_timeout_ms`.

use std::collections::{HashMap, VecDeque};

use dat_obs::EventKind as ObsEventKind;

use crate::finger::{FingerInfo, FingerTable, NodeAddr, NodeRef};
use crate::health::{HealthDetector, SuspicionLevel};
use crate::id::{Id, IdSpace};
use crate::metrics::Metrics;
use crate::msg::{ChordMsg, Input, Output, ReqId, TimerKind, Upcall};
use crate::payload::Payload;

/// Tunables for the Chord layer. Times are in host milliseconds (virtual
/// milliseconds under simulation).
#[derive(Clone, Copy, Debug)]
pub struct ChordConfig {
    /// Identifier space width.
    pub space: IdSpace,
    /// Successor-list length (fault tolerance).
    pub succ_list_len: usize,
    /// Stabilization period.
    pub stabilize_ms: u64,
    /// Finger-fixing period (one finger per firing, round-robin).
    pub fix_fingers_ms: u64,
    /// Predecessor liveness-check period.
    pub check_pred_ms: u64,
    /// Per-request timeout.
    pub req_timeout_ms: u64,
    /// Hop budget for recursive routing (loop protection during churn).
    pub max_hops: u32,
    /// Use identifier probing at join time (§3.5).
    pub probe_on_join: bool,
    /// Give up joining after this many attempts.
    pub max_join_retries: u32,
    /// Refresh the FOF data of one finger every `fof_refresh_every`-th
    /// finger-fix firing (0 disables FOF refresh).
    pub fof_refresh_every: u32,
    /// Retransmissions allowed per request before it is declared failed.
    /// `0` disables retransmission entirely: a request gets exactly one
    /// transmission and the fixed `req_timeout_ms` (the legacy behavior).
    pub max_retries: u32,
    /// Lower clamp for the adaptive retransmission timeout.
    pub rto_min_ms: u64,
    /// Upper clamp for the adaptive RTO and its exponential backoff.
    pub rto_max_ms: u64,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            space: IdSpace::new(64),
            succ_list_len: 8,
            stabilize_ms: 500,
            fix_fingers_ms: 250,
            check_pred_ms: 1_000,
            req_timeout_ms: 2_000,
            max_hops: 160,
            probe_on_join: false,
            max_join_retries: 8,
            fof_refresh_every: 4,
            max_retries: 2,
            rto_min_ms: 250,
            rto_max_ms: 8_000,
        }
    }
}

/// Bounded memory for peers evicted on timeout: how many are remembered
/// for later ring unification, and how many liveness probes each gets.
/// One probe fires per `CheckPredecessor` round (round-robin over the
/// queue), so a lone fallen peer is probed for `FALLEN_PROBES *
/// check_pred_ms` — about 2 minutes at the 1 s default, comfortably
/// longer than the partitions the repro experiments inject — and a full
/// queue stretches that by up to `FALLEN_CAP`× (see DESIGN.md §8).
const FALLEN_CAP: usize = 8;
const FALLEN_PROBES: u8 = 128;

/// Lifecycle of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeStatus {
    /// Constructed, not yet started.
    Created,
    /// Join protocol in progress.
    Joining,
    /// Full ring member.
    Active,
    /// Gracefully departed; ignores all traffic.
    Departed,
}

/// What an outstanding request is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    /// Probe-join phase 1: find the successor of a random anchor id.
    JoinFindAnchor,
    /// Probe-join phase 2: waiting for the designated identifier.
    ProbeJoin,
    /// Final join phase: find the successor of our own identifier.
    JoinFindSuccessor,
    /// Stabilization round: `GetNeighbors` to our successor.
    Stabilize,
    /// Fixing finger `j`.
    FixFinger(u8),
    /// Refreshing the FOF data of finger `j`.
    FofRefresh(u8),
    /// Application lookup.
    Lookup,
    /// Predecessor liveness ping.
    PingPred,
    /// Generic liveness ping to an arbitrary node (evicted on timeout).
    PingNode,
    /// Liveness probe to a previously-evicted peer (ring unification).
    FallenProbe,
    /// Neighborhood pull from a risen peer to re-merge severed rings.
    Unify,
}

/// An in-flight request kept for retransmission and RTT sampling.
#[derive(Clone, Debug)]
struct Outstanding {
    /// First hop the request was (and will again be) sent to.
    to: NodeRef,
    /// The exact datagram to re-send.
    msg: ChordMsg,
    /// Host time of the first transmission (RTT sampling, Karn's rule).
    first_sent_ms: u64,
    /// Transmissions so far (1 = the original send).
    attempts: u32,
    /// Timeout armed for the latest transmission (doubles per retry).
    rto_ms: u64,
}

/// The Chord protocol state machine.
pub struct ChordNode {
    cfg: ChordConfig,
    table: FingerTable,
    status: NodeStatus,
    bootstrap: Option<NodeRef>,
    next_req: ReqId,
    next_finger: u8,
    fix_round: u32,
    join_attempts: u32,
    pending: HashMap<ReqId, Pending>,
    /// The node each outstanding request was sent to — evicted from the
    /// table if the request times out (failure suspicion).
    pending_targets: HashMap<ReqId, Id>,
    /// Consecutive timeout strikes per suspected node; eviction needs two,
    /// so one lost datagram on a lossy network does not tear down a live
    /// neighbor. Any reply from the node clears its strikes.
    strikes: HashMap<Id, u8>,
    /// Host clock (ms) as last reported via `set_now` / `handle_at`.
    now_ms: u64,
    /// Smoothed RTT (ms); `None` until the first sample.
    srtt_ms: Option<f64>,
    /// RTT mean deviation (ms), per Jacobson.
    rttvar_ms: f64,
    /// Retransmission state per outstanding request.
    outstanding: HashMap<ReqId, Outstanding>,
    /// Timeout-evicted peers remembered for ring unification, each with a
    /// remaining probe budget (FIFO, capped at `FALLEN_CAP`).
    fallen: VecDeque<(NodeRef, u8)>,
    /// Phi-accrual failure detector: per-peer suspicion from the cadence
    /// of acks/replies, with flap damping (see [`crate::health`]).
    health: HealthDetector,
    metrics: Metrics,
}

impl ChordNode {
    /// Create a node with identifier `id` reachable at `addr`.
    pub fn new(cfg: ChordConfig, id: Id, addr: NodeAddr) -> Self {
        let me = NodeRef::new(cfg.space.id(id.raw()), addr);
        let table = FingerTable::new(cfg.space, me, cfg.succ_list_len);
        ChordNode {
            cfg,
            table,
            status: NodeStatus::Created,
            bootstrap: None,
            // Seed request ids with the address so traces are readable;
            // only local uniqueness matters.
            next_req: addr.0 << 20,
            next_finger: 2,
            fix_round: 0,
            join_attempts: 0,
            pending: HashMap::new(),
            pending_targets: HashMap::new(),
            strikes: HashMap::new(),
            now_ms: 0,
            srtt_ms: None,
            rttvar_ms: 0.0,
            outstanding: HashMap::new(),
            fallen: VecDeque::new(),
            health: HealthDetector::default(),
            metrics: Metrics::default(),
        }
    }

    /// This node's reference (id may change during a probing join).
    pub fn me(&self) -> NodeRef {
        self.table.me()
    }

    /// Identifier space.
    pub fn space(&self) -> IdSpace {
        self.cfg.space
    }

    /// Current lifecycle status.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// The routing state (read-only).
    pub fn table(&self) -> &FingerTable {
        &self.table
    }

    /// The first `k` distinct successors (excluding this node itself) —
    /// the replication set used by layers that keep warm state on the
    /// nodes that would take over this node's keys if it crashed.
    pub fn successors(&self, k: usize) -> Vec<NodeRef> {
        let me = self.table.me().id;
        let mut out: Vec<NodeRef> = Vec::with_capacity(k);
        for s in self.table.successor_list() {
            if s.id != me && !out.iter().any(|o| o.id == s.id) {
                out.push(*s);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to counters (hosts may fold transport-level stats in).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Configuration in effect.
    pub fn config(&self) -> &ChordConfig {
        &self.cfg
    }

    /// The phi-accrual failure detector (read-only).
    pub fn health(&self) -> &HealthDetector {
        &self.health
    }

    /// Mutable access to the failure detector (harnesses tune thresholds
    /// and quarantine durations).
    pub fn health_mut(&mut self) -> &mut HealthDetector {
        &mut self.health
    }

    /// Evaluate `peer`'s suspicion level at the current host time. This
    /// advances the detector's Healthy↔Suspect↔Quarantined state machine
    /// (silence alone raises suspicion), so it takes `&mut self`.
    pub fn suspicion(&mut self, peer: Id) -> SuspicionLevel {
        self.health.level(peer, self.now_ms)
    }

    /// Proactively evict a suspect peer from the routing table, *before*
    /// any request to it times out. The peer is remembered on the fallen
    /// list exactly like a timeout eviction, so it is probed and re-merged
    /// once it stabilizes. Returns the resulting outputs (a
    /// [`Upcall::NeighborhoodChanged`] when the table actually changed).
    pub fn evict_suspect(&mut self, target: NodeRef) -> Vec<Output> {
        let mut out = Vec::new();
        if target.id == self.me().id {
            return out;
        }
        self.strikes.remove(&target.id);
        if self.table.evict(target.id) {
            self.remember_fallen(target);
            out.push(Output::Upcall(Upcall::NeighborhoodChanged));
        }
        out
    }

    fn fresh_req(&mut self) -> ReqId {
        self.next_req += 1;
        self.next_req
    }

    /// Does this node currently own `key`?
    pub fn owns(&self, key: Id) -> bool {
        match self.table.predecessor() {
            Some(p) => self.cfg.space.in_open_closed(key, p.id, self.me().id),
            // Alone on the ring: owner of everything.
            None => self.table.successor().is_none(),
        }
    }

    fn send(&mut self, out: &mut Vec<Output>, to: NodeRef, msg: ChordMsg) {
        self.metrics.on_send(self.now_ms, 0, msg.kind(), to.id.0);
        out.push(Output::Send { to, msg });
    }

    fn arm(&self, out: &mut Vec<Output>, kind: TimerKind, delay_ms: u64) {
        out.push(Output::SetTimer { kind, delay_ms });
    }

    /// Advance the node's notion of host time (wall or virtual ms). The
    /// clock only moves forward; it feeds RTT estimation, nothing else, so
    /// hosts that never call it simply keep the fallback timeout.
    pub fn set_now(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// [`ChordNode::handle`] with a host clock update first.
    pub fn handle_at(&mut self, input: Input, now_ms: u64) -> Vec<Output> {
        self.set_now(now_ms);
        self.handle(input)
    }

    /// Smoothed RTT estimate (ms), once at least one sample was taken.
    pub fn srtt_ms(&self) -> Option<f64> {
        self.srtt_ms
    }

    /// The retransmission timeout the next request will be armed with:
    /// `SRTT + 4·RTTVAR` clamped into `[rto_min_ms, rto_max_ms]`, or the
    /// configured `req_timeout_ms` before any RTT sample exists (and
    /// always when retransmission is disabled).
    pub fn current_rto(&self) -> u64 {
        if self.cfg.max_retries == 0 {
            return self.cfg.req_timeout_ms;
        }
        match self.srtt_ms {
            Some(srtt) => ((srtt + 4.0 * self.rttvar_ms) as u64)
                .clamp(self.cfg.rto_min_ms, self.cfg.rto_max_ms),
            None => self.cfg.req_timeout_ms,
        }
    }

    fn observe_rtt(&mut self, sample_ms: u64) {
        self.metrics.observe("rtt_ms", sample_ms);
        let s = sample_ms as f64;
        match self.srtt_ms {
            None => {
                self.srtt_ms = Some(s);
                self.rttvar_ms = s / 2.0;
            }
            Some(srtt) => {
                self.rttvar_ms = 0.75 * self.rttvar_ms + 0.25 * (srtt - s).abs();
                self.srtt_ms = Some(0.875 * srtt + 0.125 * s);
            }
        }
    }

    /// Send a request and register it for timeout tracking and (when the
    /// retry budget allows) retransmission. With `suspect` the target is
    /// additionally marked for failure suspicion on final timeout.
    fn send_tracked(
        &mut self,
        out: &mut Vec<Output>,
        to: NodeRef,
        msg: ChordMsg,
        req: ReqId,
        kind: Pending,
        suspect: bool,
    ) {
        if suspect {
            self.pending_targets.insert(req, to.id);
        }
        self.pending.insert(req, kind);
        let rto = self.current_rto();
        self.metrics.observe("rto_ms", rto);
        self.outstanding.insert(
            req,
            Outstanding {
                to,
                msg: msg.clone(),
                first_sent_ms: self.now_ms,
                attempts: 1,
                rto_ms: rto,
            },
        );
        self.send(out, to, msg);
        self.arm(out, TimerKind::ReqTimeout(req), rto);
    }

    fn untrack(&mut self, req: ReqId) -> Option<Pending> {
        if let Some(o) = self.outstanding.remove(&req) {
            // Karn's rule: only exchanges that were never retransmitted
            // yield RTT samples (a retransmitted reply is ambiguous).
            if o.attempts == 1 {
                self.observe_rtt(self.now_ms.saturating_sub(o.first_sent_ms));
            }
        }
        self.pending_targets.remove(&req);
        self.pending.remove(&req)
    }

    /// Start as the first node of a new ring.
    pub fn start_create(&mut self) -> Vec<Output> {
        assert_eq!(self.status, NodeStatus::Created, "already started");
        let mut out = Vec::new();
        self.status = NodeStatus::Active;
        self.arm_periodic(&mut out);
        out.push(Output::Upcall(Upcall::Joined { id: self.me().id }));
        out
    }

    /// Start with a fully materialised routing table (e.g. produced by
    /// [`crate::ring::StaticRing::table_of`]) and become active immediately,
    /// skipping the join protocol. Experiment harnesses use this to build
    /// large pre-stabilized overlays in O(n log n) without simulating
    /// thousands of joins.
    pub fn start_with_table(&mut self, table: FingerTable) -> Vec<Output> {
        assert_eq!(self.status, NodeStatus::Created, "already started");
        assert_eq!(
            table.me().id,
            self.me().id,
            "table belongs to a different node"
        );
        self.table = table;
        self.status = NodeStatus::Active;
        let mut out = Vec::new();
        self.arm_periodic(&mut out);
        out.push(Output::Upcall(Upcall::Joined { id: self.me().id }));
        out
    }

    /// Start joining an existing ring through `bootstrap`.
    pub fn start_join(&mut self, bootstrap: NodeRef) -> Vec<Output> {
        assert_eq!(self.status, NodeStatus::Created, "already started");
        self.status = NodeStatus::Joining;
        self.bootstrap = Some(bootstrap);
        let mut out = Vec::new();
        self.begin_join_attempt(&mut out);
        out
    }

    fn begin_join_attempt(&mut self, out: &mut Vec<Output>) {
        let bootstrap = self.bootstrap.expect("join without bootstrap");
        let req = self.fresh_req();
        let kind = if self.cfg.probe_on_join {
            Pending::JoinFindAnchor
        } else {
            Pending::JoinFindSuccessor
        };
        let msg = ChordMsg::FindSuccessor {
            req,
            key: self.me().id,
            origin: self.me(),
            hops: 0,
        };
        self.send_tracked(out, bootstrap, msg, req, kind, false);
    }

    fn arm_periodic(&self, out: &mut Vec<Output>) {
        self.arm(out, TimerKind::Stabilize, self.cfg.stabilize_ms);
        self.arm(out, TimerKind::FixFingers, self.cfg.fix_fingers_ms);
        self.arm(out, TimerKind::CheckPredecessor, self.cfg.check_pred_ms);
    }

    /// Issue an application lookup for `key`. Completion is reported via
    /// [`Upcall::LookupDone`] / [`Upcall::LookupFailed`] carrying the
    /// returned request id.
    pub fn lookup(&mut self, key: Id) -> (ReqId, Vec<Output>) {
        let mut out = Vec::new();
        let req = self.fresh_req();
        if self.owns(key) {
            out.push(Output::Upcall(Upcall::LookupDone {
                req,
                owner: self.me(),
                owner_pred: self.table.predecessor(),
                hops: 0,
            }));
            return (req, out);
        }
        let msg = ChordMsg::FindSuccessor {
            req,
            key,
            origin: self.me(),
            hops: 0,
        };
        match self.next_hop(key) {
            Some(next) => self.send_tracked(&mut out, next, msg, req, Pending::Lookup, true),
            None => out.push(Output::Upcall(Upcall::LookupFailed { req })),
        }
        (req, out)
    }

    /// Route an opaque payload to the owner of `key`
    /// ([`Upcall::Routed`] fires there).
    pub fn route(&mut self, key: Id, payload: impl Into<Payload>) -> Vec<Output> {
        let payload = payload.into();
        let mut out = Vec::new();
        if self.owns(key) {
            out.push(Output::Upcall(Upcall::Routed {
                key,
                payload,
                origin: self.me(),
                hops: 0,
            }));
            return out;
        }
        let msg = ChordMsg::Route {
            key,
            payload,
            origin: self.me(),
            hops: 0,
        };
        if let Some(next) = self.next_hop(key) {
            self.send(&mut out, next, msg);
        }
        out
    }

    /// Broadcast a payload to every ring member (the `broadcast` primitive
    /// of §4). The local upcall fires immediately; remote nodes receive
    /// [`Upcall::Broadcast`] exactly once on a stable ring.
    pub fn broadcast(&mut self, payload: impl Into<Payload>) -> Vec<Output> {
        let payload = payload.into();
        let mut out = Vec::new();
        let me = self.me();
        // Shared-buffer payload: the local upcall and every fan-out branch
        // alias one allocation instead of deep-copying per finger.
        out.push(Output::Upcall(Upcall::Broadcast {
            payload: payload.clone(),
            origin: me,
            depth: 0,
            limit: me.id,
        }));
        self.fan_out(&mut out, me.id, &payload, me, 0);
        out
    }

    /// Probe an arbitrary node's liveness. If no pong arrives within the
    /// request timeout the node is evicted from the routing table (failure
    /// suspicion) — upper layers use this to detect dead DAT parents.
    pub fn ping_node(&mut self, target: NodeRef) -> Vec<Output> {
        let mut out = Vec::new();
        if target.id == self.me().id || self.status != NodeStatus::Active {
            return out;
        }
        let req = self.fresh_req();
        let msg = ChordMsg::Ping {
            req,
            sender: self.me(),
        };
        self.send_tracked(&mut out, target, msg, req, Pending::PingNode, true);
        out
    }

    /// Ask `target` for its observability snapshot. The reply (if the
    /// remote host serves stats) surfaces as [`Upcall::StatsReceived`].
    /// Fire-and-forget: no retransmission, no timeout — stats are a
    /// diagnostic, not a protocol dependency.
    pub fn request_stats(&mut self, target: NodeRef) -> (ReqId, Vec<Output>) {
        let mut out = Vec::new();
        let req = self.fresh_req();
        let msg = ChordMsg::StatsRequest {
            req,
            sender: self.me(),
        };
        self.send(&mut out, target, msg);
        (req, out)
    }

    /// Build the reply to a [`Upcall::StatsRequested`] — hosts call this
    /// with whatever exposition text they serve.
    pub fn reply_stats(&mut self, to: NodeRef, req: ReqId, text: impl Into<Payload>) -> Output {
        let msg = ChordMsg::StatsReply {
            req,
            sender: self.me(),
            text: text.into(),
        };
        self.metrics.on_send(self.now_ms, 0, msg.kind(), to.id.0);
        Output::Send { to, msg }
    }

    /// Send a direct application-layer message to `to` (single hop, no
    /// routing). The remote side receives [`Upcall::AppMessage`].
    pub fn send_app(&mut self, to: NodeRef, proto: u8, payload: impl Into<Payload>) -> Output {
        let msg = ChordMsg::App {
            proto,
            from: self.me(),
            payload: payload.into(),
        };
        self.metrics.on_send(self.now_ms, 0, msg.kind(), to.id.0);
        Output::Send { to, msg }
    }

    /// Arm an application-layer timer (surfaces as [`Upcall::AppTimer`]).
    pub fn app_timer(&self, sub: u64, delay_ms: u64) -> Output {
        Output::SetTimer {
            kind: TimerKind::App(sub),
            delay_ms,
        }
    }

    /// Gracefully leave the ring.
    pub fn leave(&mut self) -> Vec<Output> {
        let mut out = Vec::new();
        if self.status != NodeStatus::Active {
            self.status = NodeStatus::Departed;
            return out;
        }
        let me = self.me();
        if let Some(p) = self.table.predecessor() {
            let msg = ChordMsg::LeaveToPred {
                leaver: me,
                succ_list: self.table.successor_list().to_vec(),
            };
            self.send(&mut out, p, msg);
        }
        if let Some(s) = self.table.successor() {
            let msg = ChordMsg::LeaveToSucc {
                leaver: me,
                pred: self.table.predecessor(),
            };
            self.send(&mut out, s, msg);
        }
        self.status = NodeStatus::Departed;
        self.pending.clear();
        self.pending_targets.clear();
        self.outstanding.clear();
        self.fallen.clear();
        out
    }

    /// Greedy next hop toward `key`; `None` when the table is empty.
    fn next_hop(&self, key: Id) -> Option<NodeRef> {
        let space = self.cfg.space;
        let succ = self.table.successor()?;
        if space.in_open_closed(key, self.me().id, succ.id) {
            return Some(succ);
        }
        self.table.closest_preceding(key).or(Some(succ))
    }

    /// Drive one input through the state machine.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        let mut out = Vec::new();
        if self.status == NodeStatus::Departed {
            return out;
        }
        match input {
            Input::Timer(kind) => self.on_timer(kind, &mut out),
            Input::Message { from, msg } => {
                // Trace peer is the transport address (the UDP transport
                // reports a sentinel); cross-transport digests use the
                // application-layer events, which carry real node ids.
                self.metrics.on_recv(self.now_ms, 0, msg.kind(), from.0);
                self.on_message(from, msg, &mut out);
            }
            // An undecodable frame carried nothing the ring layer can act
            // on by itself; the stack host scores it per peer and feeds
            // the failure detector (see `core::engine`).
            Input::BadFrame { .. } => {}
        }
        out
    }

    /// Resolve a transport address to the known peer behind it, if that
    /// peer is anywhere in the routing state (successor list, predecessor
    /// or fingers).
    pub fn peer_by_addr(&self, addr: NodeAddr) -> Option<NodeRef> {
        self.table
            .known_nodes()
            .into_iter()
            .find(|n| n.addr == addr)
    }

    /// Register hard evidence that the peer behind `addr` is poisoning
    /// the wire (a burst of undecodable frames). Forces the peer Suspect
    /// in the failure detector — repeated episodes trip its flap-damped
    /// quarantine — and returns the peer it resolved to, or `None` when
    /// the address maps to no known peer (nothing to quarantine).
    pub fn suspect_addr(&mut self, addr: NodeAddr) -> Option<NodeRef> {
        let peer = self.peer_by_addr(addr)?;
        self.health.miss(peer.id, self.now_ms);
        Some(peer)
    }

    fn on_timer(&mut self, kind: TimerKind, out: &mut Vec<Output>) {
        match kind {
            TimerKind::Stabilize => {
                if self.status == NodeStatus::Active {
                    if let Some(s) = self.table.successor() {
                        let req = self.fresh_req();
                        let msg = ChordMsg::GetNeighbors {
                            req,
                            sender: self.me(),
                        };
                        self.send_tracked(out, s, msg, req, Pending::Stabilize, true);
                    }
                }
                self.arm(out, TimerKind::Stabilize, self.cfg.stabilize_ms);
            }
            TimerKind::FixFingers => {
                if self.status == NodeStatus::Active {
                    self.fix_next_finger(out);
                }
                self.arm(out, TimerKind::FixFingers, self.cfg.fix_fingers_ms);
            }
            TimerKind::CheckPredecessor => {
                if self.status == NodeStatus::Active {
                    if let Some(p) = self.table.predecessor() {
                        let req = self.fresh_req();
                        let msg = ChordMsg::Ping {
                            req,
                            sender: self.me(),
                        };
                        self.send_tracked(out, p, msg, req, Pending::PingPred, true);
                    }
                    self.probe_fallen(out);
                    self.keepalive_probe(out);
                }
                self.arm(out, TimerKind::CheckPredecessor, self.cfg.check_pred_ms);
            }
            TimerKind::ReqTimeout(req) => self.on_req_timeout(req, out),
            TimerKind::App(sub) => out.push(Output::Upcall(Upcall::AppTimer(sub))),
        }
    }

    fn fix_next_finger(&mut self, out: &mut Vec<Output>) {
        self.fix_round = self.fix_round.wrapping_add(1);
        // Periodically refresh FOF data of an existing finger instead of
        // re-looking one up; probing and child computation depend on it.
        if self.cfg.fof_refresh_every > 0
            && self.fix_round.is_multiple_of(self.cfg.fof_refresh_every)
        {
            let target = self.table.iter().nth(
                (self.fix_round / self.cfg.fof_refresh_every) as usize
                    % self.table.populated().max(1),
            );
            if let Some((j, f)) = target {
                let req = self.fresh_req();
                let msg = ChordMsg::GetNeighbors {
                    req,
                    sender: self.me(),
                };
                self.send_tracked(out, f.node, msg, req, Pending::FofRefresh(j), true);
                return;
            }
        }
        let bits = self.cfg.space.bits();
        let j = self.next_finger;
        self.next_finger = if self.next_finger >= bits {
            2
        } else {
            self.next_finger + 1
        };
        let target = self.cfg.space.finger_start(self.me().id, j);
        if self.owns(target) {
            // The finger interval wraps back to ourselves: no such finger.
            return;
        }
        let req = self.fresh_req();
        let msg = ChordMsg::FindSuccessor {
            req,
            key: target,
            origin: self.me(),
            hops: 0,
        };
        if let Some(next) = self.next_hop(target) {
            self.send_tracked(out, next, msg, req, Pending::FixFinger(j), true);
        }
    }

    /// Probe one remembered fallen peer per firing (round-robin). A Pong
    /// from it triggers a `Unify` neighborhood pull — the mechanism that
    /// re-merges two sub-rings after a network partition heals.
    fn probe_fallen(&mut self, out: &mut Vec<Output>) {
        let Some((node, budget)) = self.fallen.pop_front() else {
            return;
        };
        let req = self.fresh_req();
        let msg = ChordMsg::Ping {
            req,
            sender: self.me(),
        };
        self.send_tracked(out, node, msg, req, Pending::FallenProbe, false);
        if budget > 1 {
            self.fallen.push_back((node, budget - 1));
        }
    }

    /// Adaptive keepalive: ping the routing-table neighbor the detector
    /// has heard from least recently (one per `CheckPredecessor` round,
    /// only when its silence exceeds the keepalive bar). Regular protocol
    /// chatter keeps busy links fed; this covers the quiet ones so the
    /// phi estimate never starves — a peer the detector cannot hear is a
    /// peer it cannot clear.
    fn keepalive_probe(&mut self, out: &mut Vec<Output>) {
        let me = self.me().id;
        let mut neigh: Vec<NodeRef> = Vec::new();
        let push = |n: NodeRef, neigh: &mut Vec<NodeRef>| {
            if n.id != me && !neigh.iter().any(|x| x.id == n.id) {
                neigh.push(n);
            }
        };
        for s in self.table.successor_list() {
            push(*s, &mut neigh);
        }
        if let Some(p) = self.table.predecessor() {
            push(p, &mut neigh);
        }
        for (_, fi) in self.table.iter() {
            push(fi.node, &mut neigh);
        }
        let ids: Vec<Id> = neigh.iter().map(|n| n.id).collect();
        if let Some(target) = self.health.stalest(&ids, self.now_ms) {
            if let Some(&r) = neigh.iter().find(|n| n.id == target) {
                let req = self.fresh_req();
                let msg = ChordMsg::Ping {
                    req,
                    sender: self.me(),
                };
                self.send_tracked(out, r, msg, req, Pending::PingNode, true);
            }
        }
    }

    /// Remember a timeout-evicted peer so the ring can unify again if it
    /// (or the path to it) comes back. Deduplicated, FIFO-bounded.
    fn remember_fallen(&mut self, node: NodeRef) {
        if node.id == self.me().id || self.fallen.iter().any(|(n, _)| n.id == node.id) {
            return;
        }
        if self.fallen.len() == FALLEN_CAP {
            self.fallen.pop_front();
        }
        self.fallen.push_back((node, FALLEN_PROBES));
    }

    fn on_req_timeout(&mut self, req: ReqId, out: &mut Vec<Output>) {
        if !self.pending.contains_key(&req) {
            return; // answered in time
        }
        // Retransmit the identical datagram to the identical first hop
        // while the retry budget lasts, doubling the timeout each round.
        if let Some(o) = self.outstanding.get_mut(&req) {
            if o.attempts <= self.cfg.max_retries {
                o.attempts += 1;
                o.rto_ms = (o.rto_ms * 2).min(self.cfg.rto_max_ms);
                let (to, msg, rto) = (o.to, o.msg.clone(), o.rto_ms);
                self.metrics.retransmits += 1;
                self.send(out, to, msg);
                self.arm(out, TimerKind::ReqTimeout(req), rto);
                return;
            }
        }
        // Retries exhausted. Drop the retransmission entry *before*
        // untracking so the failed exchange cannot feed the RTT estimate,
        // but keep the target's NodeRef for the fallen list.
        let target_ref = self.outstanding.remove(&req).map(|o| o.to);
        let suspect = self.pending_targets.get(&req).copied();
        let Some(kind) = self.untrack(req) else {
            return;
        };
        // Suspect the node that failed to answer. Two consecutive strikes
        // are required before eviction so a single lost datagram on a lossy
        // network cannot tear down a live neighbor; finger fixing relearns
        // genuinely-alive nodes either way.
        if let Some(dead) = suspect {
            // Hard evidence for the failure detector: the full retry
            // budget burned with no reply.
            self.health.miss(dead, self.now_ms);
            let s = self.strikes.entry(dead).or_insert(0);
            *s += 1;
            if *s >= 2 {
                self.strikes.remove(&dead);
                if self.table.evict(dead) {
                    if let Some(r) = target_ref.filter(|r| r.id == dead) {
                        self.remember_fallen(r);
                    }
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                }
            }
        }
        self.metrics.timeouts += 1;
        match kind {
            Pending::JoinFindAnchor | Pending::ProbeJoin | Pending::JoinFindSuccessor => {
                self.join_attempts += 1;
                if self.join_attempts >= self.cfg.max_join_retries {
                    out.push(Output::Upcall(Upcall::JoinFailed));
                } else {
                    self.begin_join_attempt(out);
                }
            }
            // Stabilize / predecessor-ping targets were already evicted by
            // the generic suspicion above (they were tracked with
            // `track_to`); the successor list/notify machinery re-links.
            Pending::Stabilize | Pending::PingPred => {}
            Pending::Lookup => out.push(Output::Upcall(Upcall::LookupFailed { req })),
            // The generic suspect-eviction above already handled the target.
            Pending::PingNode => {}
            Pending::FixFinger(_) | Pending::FofRefresh(_) => {}
            // Fallen peers are not table members; silence is the expected
            // outcome until a partition heals.
            Pending::FallenProbe | Pending::Unify => {}
        }
    }

    fn on_message(&mut self, from: NodeAddr, msg: ChordMsg, out: &mut Vec<Output>) {
        let _ = from;
        // Any message that names its direct sender doubles as a heartbeat
        // for the phi-accrual detector — the "every ack/reply the RTO
        // machinery observes" feed, plus unsolicited traffic for free.
        // (FindSuccessor/Route/Broadcast carry an *origin*, which may be
        // several forwarding hops away; those are not direct evidence.)
        let heard = match &msg {
            ChordMsg::GetNeighbors { sender, .. }
            | ChordMsg::Notify { sender }
            | ChordMsg::Ping { sender, .. }
            | ChordMsg::Pong { sender, .. }
            | ChordMsg::StatsRequest { sender, .. }
            | ChordMsg::StatsReply { sender, .. } => Some(*sender),
            ChordMsg::Neighbors { me, .. } => Some(*me),
            ChordMsg::FoundSuccessor { owner, .. } => Some(*owner),
            ChordMsg::App { from, .. } => Some(*from),
            _ => None,
        };
        if let Some(p) = heard {
            if p.id != self.me().id {
                self.health.heartbeat(p.id, self.now_ms);
            }
        }
        match msg {
            ChordMsg::FindSuccessor {
                req,
                key,
                origin,
                hops,
            } => self.on_find_successor(req, key, origin, hops, out),
            ChordMsg::FoundSuccessor {
                req,
                owner,
                owner_pred,
                owner_succ,
                hops,
            } => self.on_found_successor(req, owner, owner_pred, owner_succ, hops, out),
            ChordMsg::GetNeighbors { req, sender } => {
                let reply = ChordMsg::Neighbors {
                    req,
                    me: self.me(),
                    pred: self.table.predecessor(),
                    succ_list: self.table.successor_list().to_vec(),
                };
                self.send(out, sender, reply);
            }
            ChordMsg::Neighbors {
                req,
                me: responder,
                pred,
                succ_list,
            } => self.on_neighbors(req, responder, pred, succ_list, out),
            ChordMsg::Notify { sender } => {
                let mut changed = self.table.notify(sender);
                // Bootstrap case: a lone ring creator adopts its first
                // notifier as successor.
                if self.table.successor().is_none() {
                    self.table.set_successor(sender);
                    changed = true;
                }
                if changed {
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                }
            }
            ChordMsg::Ping { req, sender } => {
                let reply = ChordMsg::Pong {
                    req,
                    sender: self.me(),
                };
                self.send(out, sender, reply);
            }
            ChordMsg::Pong { req, sender } => {
                self.strikes.remove(&sender.id);
                if self.untrack(req) == Some(Pending::FallenProbe) {
                    // A previously-evicted peer answered: whatever cut it
                    // off has healed. Pull its neighborhood to re-merge
                    // the (possibly severed) rings.
                    self.fallen.retain(|(n, _)| n.id != sender.id);
                    let req = self.fresh_req();
                    let msg = ChordMsg::GetNeighbors {
                        req,
                        sender: self.me(),
                    };
                    self.send_tracked(out, sender, msg, req, Pending::Unify, false);
                }
            }
            ChordMsg::ProbeJoin { req, origin } => {
                let designated = self.designate_id();
                let reply = ChordMsg::ProbeJoinReply { req, designated };
                self.send(out, origin, reply);
            }
            ChordMsg::ProbeJoinReply { req, designated } => {
                if self.untrack(req) != Some(Pending::ProbeJoin) {
                    return;
                }
                self.adopt_id(designated);
                let bootstrap = self.bootstrap.expect("probing join without bootstrap");
                let req = self.fresh_req();
                let msg = ChordMsg::FindSuccessor {
                    req,
                    key: self.me().id,
                    origin: self.me(),
                    hops: 0,
                };
                self.send_tracked(out, bootstrap, msg, req, Pending::JoinFindSuccessor, false);
            }
            ChordMsg::LeaveToPred { leaver, succ_list } => {
                if self.table.successor().map(|s| s.id) == Some(leaver.id) {
                    self.table.evict(leaver.id);
                    self.table.set_successor_list(succ_list);
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                } else {
                    self.table.evict(leaver.id);
                }
            }
            ChordMsg::LeaveToSucc { leaver, pred } => {
                if self.table.predecessor().map(|p| p.id) == Some(leaver.id) {
                    self.table.evict(leaver.id);
                    self.table
                        .set_predecessor(pred.filter(|p| p.id != self.me().id));
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                } else {
                    self.table.evict(leaver.id);
                }
            }
            ChordMsg::Route {
                key,
                payload,
                origin,
                hops,
            } => {
                if hops >= self.cfg.max_hops {
                    self.metrics.dropped += 1;
                    return;
                }
                if self.owns(key) {
                    self.metrics.observe("route_hops", hops as u64);
                    self.metrics
                        .trace(self.now_ms, 0, ObsEventKind::RouteHop { key: key.0, hops });
                    out.push(Output::Upcall(Upcall::Routed {
                        key,
                        payload,
                        origin,
                        hops,
                    }));
                } else if let Some(next) = self.next_hop(key) {
                    let fwd = ChordMsg::Route {
                        key,
                        payload,
                        origin,
                        hops: hops + 1,
                    };
                    self.send(out, next, fwd);
                } else {
                    self.metrics.dropped += 1;
                }
            }
            ChordMsg::App {
                proto,
                from,
                payload,
            } => {
                out.push(Output::Upcall(Upcall::AppMessage {
                    proto,
                    from,
                    payload,
                }));
            }
            ChordMsg::StatsRequest { req, sender } => {
                out.push(Output::Upcall(Upcall::StatsRequested { req, from: sender }));
            }
            ChordMsg::StatsReply { req, sender, text } => {
                out.push(Output::Upcall(Upcall::StatsReceived {
                    req,
                    from: sender,
                    text,
                }));
            }
            ChordMsg::Broadcast {
                limit,
                payload,
                origin,
                depth,
            } => {
                out.push(Output::Upcall(Upcall::Broadcast {
                    payload: payload.clone(),
                    origin,
                    depth,
                    limit,
                }));
                self.fan_out(out, limit, &payload, origin, depth + 1);
            }
        }
    }

    fn on_find_successor(
        &mut self,
        req: ReqId,
        key: Id,
        origin: NodeRef,
        hops: u32,
        out: &mut Vec<Output>,
    ) {
        if hops >= self.cfg.max_hops {
            self.metrics.dropped += 1;
            return;
        }
        if self.status != NodeStatus::Active {
            // Joining nodes cannot serve lookups; origin will retry.
            self.metrics.dropped += 1;
            return;
        }
        if self.owns(key) {
            let reply = ChordMsg::FoundSuccessor {
                req,
                owner: self.me(),
                owner_pred: self.table.predecessor(),
                owner_succ: self.table.successor(),
                hops,
            };
            self.send(out, origin, reply);
            return;
        }
        match self.next_hop(key) {
            Some(next) => {
                let fwd = ChordMsg::FindSuccessor {
                    req,
                    key,
                    origin,
                    hops: hops + 1,
                };
                self.send(out, next, fwd);
            }
            None => self.metrics.dropped += 1,
        }
    }

    fn on_found_successor(
        &mut self,
        req: ReqId,
        owner: NodeRef,
        owner_pred: Option<NodeRef>,
        owner_succ: Option<NodeRef>,
        hops: u32,
        out: &mut Vec<Output>,
    ) {
        self.strikes.remove(&owner.id);
        let Some(kind) = self.untrack(req) else {
            return; // late reply, already timed out
        };
        match kind {
            Pending::JoinFindAnchor => {
                // Probe the anchor's owner for a designated identifier.
                let req = self.fresh_req();
                let msg = ChordMsg::ProbeJoin {
                    req,
                    origin: self.me(),
                };
                self.send_tracked(out, owner, msg, req, Pending::ProbeJoin, false);
            }
            Pending::JoinFindSuccessor => {
                if owner.id == self.me().id {
                    // Identifier collision: re-draw by perturbing ours.
                    let new_id = self.cfg.space.add(self.me().id, 1);
                    self.adopt_id(new_id);
                    self.join_attempts += 1;
                    if self.join_attempts >= self.cfg.max_join_retries {
                        out.push(Output::Upcall(Upcall::JoinFailed));
                    } else {
                        self.begin_join_attempt(out);
                    }
                    return;
                }
                self.table.set_successor(owner);
                if let Some(p) = owner_pred {
                    // Tentative predecessor hint; stabilization will verify.
                    self.table.notify(p);
                }
                let _ = owner_succ;
                self.status = NodeStatus::Active;
                self.arm_periodic(out);
                let notify = ChordMsg::Notify { sender: self.me() };
                self.send(out, owner, notify);
                out.push(Output::Upcall(Upcall::Joined { id: self.me().id }));
            }
            Pending::FixFinger(j) => {
                let info = FingerInfo {
                    node: owner,
                    pred: owner_pred,
                    succ: owner_succ,
                };
                self.table.set_finger(j, info);
            }
            Pending::Lookup => {
                self.metrics.observe("route_hops", hops as u64);
                out.push(Output::Upcall(Upcall::LookupDone {
                    req,
                    owner,
                    owner_pred,
                    hops,
                }));
            }
            // A FoundSuccessor can never answer these.
            Pending::ProbeJoin
            | Pending::Stabilize
            | Pending::FofRefresh(_)
            | Pending::PingPred
            | Pending::PingNode
            | Pending::FallenProbe
            | Pending::Unify => {}
        }
    }

    fn on_neighbors(
        &mut self,
        req: ReqId,
        responder: NodeRef,
        pred: Option<NodeRef>,
        succ_list: Vec<NodeRef>,
        out: &mut Vec<Output>,
    ) {
        self.strikes.remove(&responder.id);
        let Some(kind) = self.untrack(req) else {
            return;
        };
        match kind {
            Pending::Stabilize => {
                let space = self.cfg.space;
                let me = self.me();
                let mut changed = false;
                // Rule: if succ.pred ∈ (me, succ) it is a closer successor.
                if let Some(x) = pred {
                    if x.id != me.id
                        && self
                            .table
                            .successor()
                            .is_some_and(|s| space.in_open_open(x.id, me.id, s.id))
                    {
                        self.table.set_successor(x);
                        changed = true;
                    }
                }
                if self.table.successor().map(|s| s.id) == Some(responder.id) {
                    // Adopt the responder's list shifted under it.
                    let mut list = vec![responder];
                    list.extend(succ_list);
                    self.table.set_successor_list(list);
                }
                if let Some(s) = self.table.successor() {
                    let notify = ChordMsg::Notify { sender: me };
                    self.send(out, s, notify);
                }
                if changed {
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                }
            }
            Pending::FofRefresh(j)
                if self.table.finger(j).map(|f| f.node.id) == Some(responder.id) =>
            {
                let info = FingerInfo {
                    node: responder,
                    pred,
                    succ: succ_list.first().copied(),
                };
                self.table.set_finger(j, info);
            }
            Pending::FofRefresh(_) => {}
            Pending::Unify => {
                // Ring unification after a heal: fold the risen peer's
                // neighborhood into ours. Any candidate strictly between us
                // and our current successor is a closer successor (or, with
                // no successor at all, a way back into a ring); each is also
                // offered to the notify rule as a potential predecessor.
                // Stabilization then walks both sub-rings back into one.
                let space = self.cfg.space;
                let me = self.me();
                let mut changed = false;
                let mut cands: Vec<NodeRef> = Vec::with_capacity(succ_list.len() + 2);
                cands.push(responder);
                cands.extend(pred);
                cands.extend(succ_list.iter().copied());
                for c in cands {
                    if c.id == me.id {
                        continue;
                    }
                    let closer = match self.table.successor() {
                        None => true,
                        Some(s) => space.in_open_open(c.id, me.id, s.id),
                    };
                    if closer {
                        self.table.set_successor(c);
                        changed = true;
                    }
                    changed |= self.table.notify(c);
                }
                if let Some(s) = self.table.successor() {
                    let notify = ChordMsg::Notify { sender: me };
                    self.send(out, s, notify);
                }
                if changed {
                    out.push(Output::Upcall(Upcall::NeighborhoodChanged));
                }
            }
            _ => {}
        }
    }

    /// Identifier-probing designation (§3.5): inspect ourselves plus our
    /// fingers, pick the node owning the largest identifier gap, and hand
    /// out that gap's midpoint.
    fn designate_id(&self) -> Id {
        let space = self.cfg.space;
        let me = self.me().id;
        // Candidate gaps: (pred(candidate), candidate].
        let mut best_start = self.table.predecessor().map(|p| p.id).unwrap_or(me);
        let mut best_end = me;
        let mut best_gap = match self.table.predecessor() {
            Some(p) => space.dist_cw(p.id, me),
            None => return space.add(me, (space.size() / 2) as u64),
        };
        for (_, fi) in self.table.iter() {
            if let Some(p) = fi.pred {
                let gap = space.dist_cw(p.id, fi.node.id);
                if gap > best_gap {
                    best_gap = gap;
                    best_start = p.id;
                    best_end = fi.node.id;
                }
            }
        }
        let _ = best_end;
        space.add(best_start, best_gap / 2)
    }

    fn adopt_id(&mut self, id: Id) {
        let addr = self.me().addr;
        let me = NodeRef::new(self.cfg.space.id(id.raw()), addr);
        self.table = FingerTable::new(self.cfg.space, me, self.cfg.succ_list_len);
    }

    /// Forward a broadcast to every finger responsible for a sub-range of
    /// `(me, limit)`.
    fn fan_out(
        &mut self,
        out: &mut Vec<Output>,
        limit: Id,
        payload: &Payload,
        origin: NodeRef,
        depth: u32,
    ) {
        let space = self.cfg.space;
        let me = self.me().id;
        // Distinct finger nodes strictly inside (me, limit), ordered by
        // clockwise distance from me.
        let mut targets: Vec<NodeRef> = Vec::new();
        for (_, fi) in self.table.iter() {
            let n = fi.node;
            let inside = if limit == me {
                n.id != me
            } else {
                space.in_open_open(n.id, me, limit)
            };
            if inside && !targets.iter().any(|t| t.id == n.id) {
                targets.push(n);
            }
        }
        targets.sort_by_key(|t| space.dist_cw(me, t.id));
        for i in 0..targets.len() {
            let sub_limit = if i + 1 < targets.len() {
                targets[i + 1].id
            } else {
                limit
            };
            let msg = ChordMsg::Broadcast {
                limit: sub_limit,
                payload: payload.clone(),
                origin,
                depth,
            };
            self.send(out, targets[i], msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(4),
            succ_list_len: 3,
            ..ChordConfig::default()
        }
    }

    fn node(id: u64) -> ChordNode {
        ChordNode::new(cfg4(), Id(id), NodeAddr(id))
    }

    /// A node with retransmission disabled: the first `ReqTimeout` is final,
    /// which is what the failure-suspicion tests below drive by hand.
    fn node_no_retry(id: u64) -> ChordNode {
        let cfg = ChordConfig {
            max_retries: 0,
            ..cfg4()
        };
        ChordNode::new(cfg, Id(id), NodeAddr(id))
    }

    fn sends(out: &[Output]) -> Vec<(&NodeRef, &ChordMsg)> {
        out.iter()
            .filter_map(|o| match o {
                Output::Send { to, msg } => Some((to, msg)),
                _ => None,
            })
            .collect()
    }

    fn upcalls(out: &[Output]) -> Vec<&Upcall> {
        out.iter()
            .filter_map(|o| match o {
                Output::Upcall(u) => Some(u),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn create_becomes_active_root_of_everything() {
        let mut n = node(5);
        let out = n.start_create();
        assert_eq!(n.status(), NodeStatus::Active);
        assert!(matches!(upcalls(&out)[0], Upcall::Joined { id } if *id == Id(5)));
        assert!(n.owns(Id(0)));
        assert!(n.owns(Id(15)));
        // Three periodic timers armed.
        let timers = out
            .iter()
            .filter(|o| matches!(o, Output::SetTimer { .. }))
            .count();
        assert_eq!(timers, 3);
    }

    #[test]
    fn join_handshake_two_nodes() {
        let mut a = node(2);
        let _ = a.start_create();
        let mut b = node(9);
        let out = b.start_join(a.me());
        let (to, msg) = sends(&out)[0];
        assert_eq!(to.id, Id(2));
        // a serves the lookup: b's key 9 ∈ (pred, a]? a is alone, owns all.
        let reply_out = a.handle(Input::Message {
            from: b.me().addr,
            msg: msg.clone(),
        });
        let (to, reply) = sends(&reply_out)[0];
        assert_eq!(to.id, Id(9));
        assert!(matches!(reply, ChordMsg::FoundSuccessor { owner, .. } if owner.id == Id(2)));
        // b completes the join and notifies a.
        let out = b.handle(Input::Message {
            from: a.me().addr,
            msg: reply.clone(),
        });
        assert_eq!(b.status(), NodeStatus::Active);
        assert_eq!(b.table().successor().unwrap().id, Id(2));
        let notify = sends(&out)
            .into_iter()
            .find(|(_, m)| matches!(m, ChordMsg::Notify { .. }))
            .unwrap();
        // a adopts b as predecessor AND as first successor.
        let _ = a.handle(Input::Message {
            from: b.me().addr,
            msg: notify.1.clone(),
        });
        assert_eq!(a.table().predecessor().unwrap().id, Id(9));
        assert_eq!(a.table().successor().unwrap().id, Id(9));
        // One stabilization round: a asks b for neighbors, then notifies b,
        // which completes b's predecessor link.
        let out = a.handle(Input::Timer(TimerKind::Stabilize));
        let (to, gn) = sends(&out)
            .into_iter()
            .find(|(_, m)| matches!(m, ChordMsg::GetNeighbors { .. }))
            .unwrap();
        assert_eq!(to.id, Id(9));
        let out = b.handle(Input::Message {
            from: a.me().addr,
            msg: gn.clone(),
        });
        let neighbors = sends(&out)[0].1.clone();
        let out = a.handle(Input::Message {
            from: b.me().addr,
            msg: neighbors,
        });
        let notify_b = sends(&out)
            .into_iter()
            .find(|(_, m)| matches!(m, ChordMsg::Notify { .. }))
            .unwrap()
            .1
            .clone();
        let _ = b.handle(Input::Message {
            from: a.me().addr,
            msg: notify_b,
        });
        assert_eq!(b.table().predecessor().unwrap().id, Id(2));
        // Ownership is now split.
        assert!(a.owns(Id(0)));
        assert!(!a.owns(Id(5)));
        assert!(b.owns(Id(5)));
    }

    #[test]
    fn find_successor_forwards_greedily() {
        let mut n = node(0);
        let _ = n.start_create();
        // Give node 0 a populated table on the full 16-ring.
        n.table
            .set_predecessor(Some(NodeRef::new(Id(15), NodeAddr(15))));
        for j in 1..=4u8 {
            let t = n.cfg.space.finger_start(Id(0), j);
            n.table
                .set_finger(j, FingerInfo::bare(NodeRef::new(t, NodeAddr(t.raw()))));
        }
        let out = n.handle(Input::Message {
            from: NodeAddr(3),
            msg: ChordMsg::FindSuccessor {
                req: 77,
                key: Id(13),
                origin: NodeRef::new(Id(3), NodeAddr(3)),
                hops: 1,
            },
        });
        let (to, msg) = sends(&out)[0];
        assert_eq!(to.id, Id(8)); // closest preceding finger of 13
        assert!(matches!(msg, ChordMsg::FindSuccessor { hops: 2, .. }));
    }

    #[test]
    fn owner_replies_with_fof_data() {
        let mut n = node(10);
        let _ = n.start_create();
        n.table
            .set_predecessor(Some(NodeRef::new(Id(4), NodeAddr(4))));
        n.table.set_successor(NodeRef::new(Id(14), NodeAddr(14)));
        let out = n.handle(Input::Message {
            from: NodeAddr(4),
            msg: ChordMsg::FindSuccessor {
                req: 5,
                key: Id(7),
                origin: NodeRef::new(Id(4), NodeAddr(4)),
                hops: 2,
            },
        });
        let (_, msg) = sends(&out)[0];
        match msg {
            ChordMsg::FoundSuccessor {
                owner,
                owner_pred,
                owner_succ,
                hops,
                ..
            } => {
                assert_eq!(owner.id, Id(10));
                assert_eq!(owner_pred.unwrap().id, Id(4));
                assert_eq!(owner_succ.unwrap().id, Id(14));
                assert_eq!(*hops, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stabilize_adopts_closer_successor() {
        let mut n = node(0);
        let _ = n.start_create();
        n.table.set_successor(NodeRef::new(Id(8), NodeAddr(8)));
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let (to, msg) = sends(&out)[0];
        assert_eq!(to.id, Id(8));
        let req = match msg {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        // 8 answers: its predecessor is 3 (∈ (0, 8)) — adopt.
        let out = n.handle(Input::Message {
            from: NodeAddr(8),
            msg: ChordMsg::Neighbors {
                req,
                me: NodeRef::new(Id(8), NodeAddr(8)),
                pred: Some(NodeRef::new(Id(3), NodeAddr(3))),
                succ_list: vec![NodeRef::new(Id(12), NodeAddr(12))],
            },
        });
        assert_eq!(n.table().successor().unwrap().id, Id(3));
        // Notify goes to the *new* successor.
        let notify = sends(&out)
            .into_iter()
            .find(|(_, m)| matches!(m, ChordMsg::Notify { .. }))
            .unwrap();
        assert_eq!(notify.0.id, Id(3));
        assert!(upcalls(&out)
            .iter()
            .any(|u| matches!(u, Upcall::NeighborhoodChanged)));
    }

    #[test]
    fn stabilize_timeout_fails_over_to_list() {
        let mut n = node_no_retry(0);
        let _ = n.start_create();
        n.table.set_successor_list(vec![
            NodeRef::new(Id(4), NodeAddr(4)),
            NodeRef::new(Id(8), NodeAddr(8)),
        ]);
        // First timeout: the successor is merely suspected (one strike) —
        // a single lost datagram must not tear down a live neighbor.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let _ = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        assert_eq!(
            n.table().successor().unwrap().id,
            Id(4),
            "one strike keeps it"
        );
        // Second consecutive timeout: evicted, list fails over.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let out = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        assert_eq!(n.table().successor().unwrap().id, Id(8));
        assert!(upcalls(&out)
            .iter()
            .any(|u| matches!(u, Upcall::NeighborhoodChanged)));
        assert_eq!(n.metrics().timeouts, 2);
    }

    #[test]
    fn reply_clears_suspicion_strikes() {
        let mut n = node_no_retry(0);
        let _ = n.start_create();
        n.table.set_successor_list(vec![
            NodeRef::new(Id(4), NodeAddr(4)),
            NodeRef::new(Id(8), NodeAddr(8)),
        ]);
        // Strike one.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let _ = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        // The node answers the next round: strikes reset.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let _ = n.handle(Input::Message {
            from: NodeAddr(4),
            msg: ChordMsg::Neighbors {
                req,
                me: NodeRef::new(Id(4), NodeAddr(4)),
                pred: None,
                succ_list: vec![NodeRef::new(Id(8), NodeAddr(8))],
            },
        });
        // A later single timeout is again only one strike.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let _ = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        assert_eq!(
            n.table().successor().unwrap().id,
            Id(4),
            "strikes were cleared"
        );
    }

    #[test]
    fn route_delivers_locally_when_owner() {
        let mut n = node(10);
        let _ = n.start_create();
        let out = n.route(Id(3), vec![1, 2, 3]);
        assert!(matches!(
            upcalls(&out)[0],
            Upcall::Routed { key, payload, .. } if *key == Id(3) && payload == &vec![1, 2, 3]
        ));
    }

    #[test]
    fn route_hop_budget_drops() {
        let mut n = node(0);
        let _ = n.start_create();
        n.table
            .set_predecessor(Some(NodeRef::new(Id(15), NodeAddr(15))));
        n.table.set_successor(NodeRef::new(Id(4), NodeAddr(4)));
        let out = n.handle(Input::Message {
            from: NodeAddr(15),
            msg: ChordMsg::Route {
                key: Id(6),
                payload: vec![].into(),
                origin: NodeRef::new(Id(15), NodeAddr(15)),
                hops: n.config().max_hops,
            },
        });
        assert!(out.is_empty());
        assert_eq!(n.metrics().dropped, 1);
    }

    #[test]
    fn broadcast_covers_disjoint_ranges() {
        let mut n = node(0);
        let _ = n.start_create();
        n.table
            .set_predecessor(Some(NodeRef::new(Id(15), NodeAddr(15))));
        for j in 1..=4u8 {
            let t = n.cfg.space.finger_start(Id(0), j);
            n.table
                .set_finger(j, FingerInfo::bare(NodeRef::new(t, NodeAddr(t.raw()))));
        }
        let out = n.broadcast(vec![9]);
        // Local delivery + one send per distinct finger (1, 2, 4, 8).
        assert!(matches!(
            upcalls(&out)[0],
            Upcall::Broadcast { depth: 0, .. }
        ));
        let s = sends(&out);
        assert_eq!(s.len(), 4);
        // Ranges are disjoint and ordered: limits are the next finger.
        let limits: Vec<u64> = s
            .iter()
            .map(|(_, m)| match m {
                ChordMsg::Broadcast { limit, .. } => limit.raw(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(limits, vec![2, 4, 8, 0]);
    }

    #[test]
    fn graceful_leave_bridges_neighbors() {
        let mut n = node(8);
        let _ = n.start_create();
        n.table
            .set_predecessor(Some(NodeRef::new(Id(4), NodeAddr(4))));
        n.table.set_successor_list(vec![
            NodeRef::new(Id(12), NodeAddr(12)),
            NodeRef::new(Id(15), NodeAddr(15)),
        ]);
        let out = n.leave();
        assert_eq!(n.status(), NodeStatus::Departed);
        let s = sends(&out);
        assert_eq!(s.len(), 2);
        // Departed nodes ignore everything.
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        assert!(out.is_empty());

        // The predecessor bridges using the leaver's successor list.
        let mut p = node(4);
        let _ = p.start_create();
        p.table.set_successor(NodeRef::new(Id(8), NodeAddr(8)));
        let leave_msg = s
            .iter()
            .find(|(to, _)| to.id == Id(4))
            .map(|(_, m)| (*m).clone())
            .unwrap();
        let _ = p.handle(Input::Message {
            from: NodeAddr(8),
            msg: leave_msg,
        });
        assert_eq!(p.table().successor().unwrap().id, Id(12));
    }

    #[test]
    fn designate_id_splits_largest_known_gap() {
        let mut n = node(8);
        let _ = n.start_create();
        n.table
            .set_predecessor(Some(NodeRef::new(Id(7), NodeAddr(7))));
        // Finger 12 owns a gap of 4 (pred 8); finger 0 owns a gap of 2.
        n.table.set_finger(
            3,
            FingerInfo {
                node: NodeRef::new(Id(12), NodeAddr(12)),
                pred: Some(NodeRef::new(Id(8), NodeAddr(8))),
                succ: None,
            },
        );
        n.table.set_finger(
            4,
            FingerInfo {
                node: NodeRef::new(Id(0), NodeAddr(0)),
                pred: Some(NodeRef::new(Id(14), NodeAddr(14))),
                succ: None,
            },
        );
        // Largest gap is (8, 12]: midpoint 10.
        assert_eq!(n.designate_id(), Id(10));
    }

    #[test]
    fn lookup_to_self_completes_immediately() {
        let mut n = node(3);
        let _ = n.start_create();
        let (req, out) = n.lookup(Id(1));
        match upcalls(&out)[0] {
            Upcall::LookupDone {
                req: r,
                owner,
                hops,
                ..
            } => {
                assert_eq!(*r, req);
                assert_eq!(owner.id, Id(3));
                assert_eq!(*hops, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collision_on_join_redraws() {
        let mut b = node(2);
        b.status = NodeStatus::Joining;
        b.bootstrap = Some(NodeRef::new(Id(9), NodeAddr(9)));
        b.pending.insert(42, Pending::JoinFindSuccessor);
        let out = b.handle(Input::Message {
            from: NodeAddr(9),
            msg: ChordMsg::FoundSuccessor {
                req: 42,
                owner: NodeRef::new(Id(2), NodeAddr(7)), // same id, other node
                owner_pred: None,
                owner_succ: None,
                hops: 3,
            },
        });
        // Perturbed id and a fresh join attempt.
        assert_eq!(b.me().id, Id(3));
        assert!(sends(&out)
            .iter()
            .any(|(_, m)| matches!(m, ChordMsg::FindSuccessor { .. })));
    }

    #[test]
    fn timeout_retransmits_with_backoff_until_budget() {
        let mut n = node(0); // default cfg: max_retries = 2
        let _ = n.start_create();
        n.table.set_successor(NodeRef::new(Id(4), NodeAddr(4)));
        let out = n.handle(Input::Timer(TimerKind::Stabilize));
        let req = match sends(&out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        // Two retransmissions of the identical datagram, backing off from
        // the 2 s initial timeout, then the request is declared failed.
        for i in 1..=2u64 {
            let out = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
            let (to, msg) = sends(&out)[0];
            assert_eq!(to.id, Id(4));
            assert!(matches!(msg, ChordMsg::GetNeighbors { req: r, .. } if *r == req));
            let delay = out
                .iter()
                .find_map(|o| match o {
                    Output::SetTimer {
                        kind: TimerKind::ReqTimeout(r),
                        delay_ms,
                    } if *r == req => Some(*delay_ms),
                    _ => None,
                })
                .unwrap();
            assert_eq!(delay, 2_000 << i);
            assert_eq!(n.metrics().retransmits, i);
            assert_eq!(n.metrics().timeouts, 0, "not failed yet");
        }
        // Budget exhausted: the third expiry is final (one strike, no send).
        let out = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        assert!(sends(&out).is_empty());
        assert_eq!(n.metrics().timeouts, 1);
        assert_eq!(
            n.table().successor().unwrap().id,
            Id(4),
            "first strike only"
        );
    }

    #[test]
    fn rtt_samples_adapt_rto_and_karn_filters_retransmitted() {
        let neighbors = |req| ChordMsg::Neighbors {
            req,
            me: NodeRef::new(Id(4), NodeAddr(4)),
            pred: None,
            succ_list: vec![NodeRef::new(Id(8), NodeAddr(8))],
        };
        let stabilize_req = |out: &[Output]| match sends(out)[0].1 {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        let mut n = node(0);
        let _ = n.start_create();
        n.table.set_successor(NodeRef::new(Id(4), NodeAddr(4)));
        assert_eq!(n.current_rto(), 2_000, "no sample yet: fixed timeout");
        // Exchange 1 completes in 100 ms: SRTT = 100, RTTVAR = 50,
        // RTO = 100 + 4·50 = 300 (above the 250 ms floor).
        let out = n.handle_at(Input::Timer(TimerKind::Stabilize), 0);
        let req = stabilize_req(&out);
        let _ = n.handle_at(
            Input::Message {
                from: NodeAddr(4),
                msg: neighbors(req),
            },
            100,
        );
        assert_eq!(n.srtt_ms(), Some(100.0));
        assert_eq!(n.current_rto(), 300);
        // Exchange 2 gets retransmitted; its late reply must not feed the
        // estimator (Karn's rule), however slow it was.
        let out = n.handle_at(Input::Timer(TimerKind::Stabilize), 1_000);
        let req2 = stabilize_req(&out);
        let out = n.handle_at(Input::Timer(TimerKind::ReqTimeout(req2)), 1_300);
        assert_eq!(sends(&out).len(), 1, "retransmitted");
        let _ = n.handle_at(
            Input::Message {
                from: NodeAddr(4),
                msg: neighbors(req2),
            },
            5_000,
        );
        assert_eq!(n.srtt_ms(), Some(100.0), "ambiguous exchange not sampled");
        assert_eq!(n.current_rto(), 300);
    }

    #[test]
    fn fallen_peer_probe_unifies_ring_after_heal() {
        let mut n = node_no_retry(0);
        let _ = n.start_create();
        n.table.set_successor_list(vec![
            NodeRef::new(Id(4), NodeAddr(4)),
            NodeRef::new(Id(8), NodeAddr(8)),
        ]);
        // Two consecutive stabilize timeouts evict 4 into the fallen list.
        for _ in 0..2 {
            let out = n.handle(Input::Timer(TimerKind::Stabilize));
            let req = match sends(&out)[0].1 {
                ChordMsg::GetNeighbors { req, .. } => *req,
                other => panic!("unexpected {other:?}"),
            };
            let _ = n.handle(Input::Timer(TimerKind::ReqTimeout(req)));
        }
        assert_eq!(n.table().successor().unwrap().id, Id(8));
        // The next liveness round probes the fallen peer.
        let out = n.handle(Input::Timer(TimerKind::CheckPredecessor));
        let (to, msg) = sends(&out)[0];
        assert_eq!(to.id, Id(4));
        let req = match msg {
            ChordMsg::Ping { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        // It answers — whatever cut it off has healed — so a unify
        // neighborhood pull goes out.
        let out = n.handle(Input::Message {
            from: NodeAddr(4),
            msg: ChordMsg::Pong {
                req,
                sender: NodeRef::new(Id(4), NodeAddr(4)),
            },
        });
        let (to, msg) = sends(&out)[0];
        assert_eq!(to.id, Id(4));
        let req = match msg {
            ChordMsg::GetNeighbors { req, .. } => *req,
            other => panic!("unexpected {other:?}"),
        };
        // Its neighborhood folds into ours: its predecessor 2 is a closer
        // successor for us, its successor 8 becomes our predecessor, and
        // the adopted successor is notified so stabilization can converge.
        let out = n.handle(Input::Message {
            from: NodeAddr(4),
            msg: ChordMsg::Neighbors {
                req,
                me: NodeRef::new(Id(4), NodeAddr(4)),
                pred: Some(NodeRef::new(Id(2), NodeAddr(2))),
                succ_list: vec![NodeRef::new(Id(8), NodeAddr(8))],
            },
        });
        assert_eq!(n.table().successor().unwrap().id, Id(2));
        assert_eq!(n.table().predecessor().unwrap().id, Id(8));
        let notify = sends(&out)
            .into_iter()
            .find(|(_, m)| matches!(m, ChordMsg::Notify { .. }))
            .unwrap();
        assert_eq!(notify.0.id, Id(2));
    }

    #[test]
    fn metrics_track_sent_and_received() {
        let mut n = node(1);
        let _ = n.start_create();
        let _ = n.handle(Input::Message {
            from: NodeAddr(5),
            msg: ChordMsg::Ping {
                req: 9,
                sender: NodeRef::new(Id(5), NodeAddr(5)),
            },
        });
        assert_eq!(n.metrics().received_total(), 1);
        assert_eq!(n.metrics().sent_total(), 1); // the pong
    }

    /// Invariants the Karn/Jacobson estimator must hold for *any* sample
    /// sequence: SRTT stays finite and non-negative, RTTVAR stays finite
    /// and non-negative, and the armed RTO never escapes
    /// `[rto_min_ms, rto_max_ms]`.
    fn assert_rto_invariants(n: &ChordNode, context: &str) {
        if let Some(srtt) = n.srtt_ms() {
            assert!(srtt.is_finite(), "{context}: SRTT not finite: {srtt}");
            assert!(srtt >= 0.0, "{context}: SRTT negative: {srtt}");
        }
        assert!(
            n.rttvar_ms.is_finite() && n.rttvar_ms >= 0.0,
            "{context}: RTTVAR bad: {}",
            n.rttvar_ms
        );
        let rto = n.current_rto();
        assert!(
            (n.cfg.rto_min_ms..=n.cfg.rto_max_ms).contains(&rto),
            "{context}: RTO {rto} escaped [{}, {}]",
            n.cfg.rto_min_ms,
            n.cfg.rto_max_ms
        );
    }

    #[test]
    fn rto_survives_all_zero_samples() {
        let mut n = node(1);
        for i in 0..64 {
            n.observe_rtt(0);
            assert_rto_invariants(&n, &format!("zero sample {i}"));
        }
        // Degenerate estimate clamps to the floor, not to zero.
        assert_eq!(n.current_rto(), n.cfg.rto_min_ms);
    }

    #[test]
    fn rto_survives_huge_samples() {
        let mut n = node(1);
        for &s in &[u64::MAX, u64::MAX / 2, 1 << 60, u64::MAX] {
            n.observe_rtt(s);
            assert_rto_invariants(&n, &format!("huge sample {s}"));
        }
        // Astronomical estimates clamp to the ceiling.
        assert_eq!(n.current_rto(), n.cfg.rto_max_ms);
    }

    #[test]
    fn rto_survives_monotone_decreasing_samples() {
        let mut n = node(1);
        let mut s = 1u64 << 40;
        while s > 0 {
            n.observe_rtt(s);
            assert_rto_invariants(&n, &format!("decreasing sample {s}"));
            s /= 3;
        }
        n.observe_rtt(0);
        assert_rto_invariants(&n, "decreasing tail 0");
    }

    #[test]
    fn rto_property_random_pathological_sequences() {
        // Hand-rolled xorshift so the test needs no RNG dependency and
        // every run replays the same 32 sequences.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seq in 0..32 {
            let mut n = node(1);
            for step in 0..256 {
                // Mix regimes: zeros, tiny, realistic, huge and
                // alternating spikes within one sequence.
                let r = next();
                let sample = match r % 5 {
                    0 => 0,
                    1 => r % 3,
                    2 => r % 10_000,
                    3 => u64::MAX - (r % 1_000),
                    _ => {
                        if step % 2 == 0 {
                            1
                        } else {
                            1 << 50
                        }
                    }
                };
                n.observe_rtt(sample);
                assert_rto_invariants(&n, &format!("seq {seq} step {step} sample {sample}"));
            }
        }
    }

    #[test]
    fn rto_without_retries_keeps_fixed_timeout() {
        let mut n = node_no_retry(1);
        for s in [0, u64::MAX, 5] {
            n.observe_rtt(s);
            assert_eq!(n.current_rto(), n.cfg.req_timeout_ms);
        }
    }
}
