//! # dat-chord — the Chord structured P2P overlay
//!
//! The substrate underneath distributed aggregation trees (DAT): a
//! from-scratch implementation of the Chord protocol (Stoica et al.,
//! SIGCOMM'01) extended exactly the way the DAT paper's prototype extends
//! it (Cai & Hwang, IPDPS'07 §4):
//!
//! * **identifier probing** at join time (Adler et al.), which keeps the
//!   ratio of the largest to smallest identifier gap constant instead of
//!   `O(log n)` — the precondition for balanced DATs to reach a constant
//!   branching factor;
//! * **fingers-of-fingers (FOF)**: each finger entry carries the finger's
//!   predecessor and successor, learned during finger fixing, which both
//!   probing and local DAT-child computation consume;
//! * **balanced routing** (§3.4): a finger-limited next-hop rule,
//!   `g(x) = ⌈log2((x + 2·d0)/3)⌉`, alongside ordinary greedy routing.
//!
//! The protocol core ([`node::ChordNode`]) is sans-io: it consumes
//! [`msg::Input`]s and emits [`msg::Output`]s and never touches a socket or
//! a clock, so the identical code runs under the discrete-event simulator
//! (`dat-sim`) and the UDP RPC transport (`dat-rpc`) — mirroring the
//! paper's prototype architecture.
//!
//! For analysis there is also a global-view [`ring::StaticRing`] that
//! materialises the finger tables a converged overlay would hold, letting
//! experiments on 8192-node rings run in microseconds and cross-validate
//! the live protocol.
//!
//! ## Quick tour
//!
//! ```
//! use dat_chord::{IdSpace, Id, StaticRing, IdPolicy, RoutingScheme};
//! use rand::SeedableRng;
//!
//! let space = IdSpace::new(16);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
//! // Greedy finger route from some node to the owner of key 0:
//! let route = ring.finger_route(ring.ids()[10], Id(0));
//! assert!(route.len() <= 1 + space.bits() as usize);
//! assert_eq!(*route.last().unwrap(), ring.successor(Id(0)));
//! # let _ = RoutingScheme::Greedy;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod codec;
pub mod finger;
pub mod health;
pub mod id;
pub mod metrics;
pub mod msg;
pub mod node;
pub mod payload;
pub mod probing;
pub mod ring;
pub mod routing;
pub mod sha1;
pub mod wire;

pub use actor::Actor;
pub use finger::{FingerInfo, FingerTable, NodeAddr, NodeRef};
pub use health::{HealthConfig, HealthDetector, SuspicionLevel};
pub use id::{ceil_log2, ceil_log2_ratio, Id, IdSpace};
pub use metrics::{Dir, Metrics};
pub use msg::{ChordMsg, Input, Output, ReqId, TimerKind, Upcall};
pub use node::{ChordConfig, ChordNode, NodeStatus};
pub use payload::Payload;
pub use ring::{IdPolicy, StaticRing};
pub use routing::{
    estimate_d0, estimate_ring_size, finger_limit, ideal_parent_balanced, ideal_parent_basic,
    parent_balanced, parent_basic, parent_for, ring_size_for_d0, ParentDecision, RoutingScheme,
};
pub use sha1::{hash_to_id, sha1, Sha1};
