//! Per-node message counters.
//!
//! The paper's evaluation is largely message-count based: the distribution
//! of aggregation messages across nodes (Fig. 8a), imbalance factors
//! (Fig. 8b) and maintenance overhead during churn. [`Metrics`] tallies
//! sends and receives per message kind so experiments can slice traffic by
//! category without instrumenting transports.

use std::collections::HashMap;

use crate::msg::ChordMsg;

/// Message counters kept by every protocol node.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    sent: HashMap<&'static str, u64>,
    received: HashMap<&'static str, u64>,
    /// Requests that expired in the pending table.
    pub timeouts: u64,
    /// Requests re-sent after an RTO expiry (bounded-retry recovery).
    pub retransmits: u64,
    /// Messages dropped (hop budget, inactive node, empty table).
    pub dropped: u64,
}

impl Metrics {
    /// Record an outgoing message.
    pub fn count_sent(&mut self, msg: &ChordMsg) {
        *self.sent.entry(msg.kind()).or_insert(0) += 1;
    }

    /// Record an incoming message.
    pub fn count_received(&mut self, msg: &ChordMsg) {
        *self.received.entry(msg.kind()).or_insert(0) += 1;
    }

    /// Record an outgoing message by kind label (for layers above Chord).
    pub fn count_sent_kind(&mut self, kind: &'static str) {
        *self.sent.entry(kind).or_insert(0) += 1;
    }

    /// Record an incoming message by kind label (for layers above Chord).
    pub fn count_received_kind(&mut self, kind: &'static str) {
        *self.received.entry(kind).or_insert(0) += 1;
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages received.
    pub fn received_total(&self) -> u64 {
        self.received.values().sum()
    }

    /// Messages sent of a given kind.
    pub fn sent_of(&self, kind: &str) -> u64 {
        self.sent.get(kind).copied().unwrap_or(0)
    }

    /// Messages received of a given kind.
    pub fn received_of(&self, kind: &str) -> u64 {
        self.received.get(kind).copied().unwrap_or(0)
    }

    /// Sum of sent counts over `kinds`.
    pub fn sent_of_kinds(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.sent_of(k)).sum()
    }

    /// Sum of received counts over `kinds`.
    pub fn received_of_kinds(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.received_of(k)).sum()
    }

    /// Iterate `(kind, sent, received)` over every kind seen.
    pub fn by_kind(&self) -> Vec<(&'static str, u64, u64)> {
        let mut kinds: Vec<&'static str> = self
            .sent
            .keys()
            .chain(self.received.keys())
            .copied()
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
            .into_iter()
            .map(|k| (k, self.sent_of(k), self.received_of(k)))
            .collect()
    }

    /// Merge another metrics snapshot into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.sent {
            *self.sent.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.received {
            *self.received.entry(k).or_insert(0) += v;
        }
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.dropped += other.dropped;
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
        self.timeouts = 0;
        self.retransmits = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finger::{NodeAddr, NodeRef};
    use crate::id::Id;

    fn ping() -> ChordMsg {
        ChordMsg::Ping {
            req: 1,
            sender: NodeRef::new(Id(0), NodeAddr(0)),
        }
    }

    #[test]
    fn counting_and_totals() {
        let mut m = Metrics::default();
        m.count_sent(&ping());
        m.count_sent(&ping());
        m.count_received(&ping());
        assert_eq!(m.sent_total(), 2);
        assert_eq!(m.received_total(), 1);
        assert_eq!(m.sent_of("ping"), 2);
        assert_eq!(m.sent_of("pong"), 0);
    }

    #[test]
    fn custom_kinds_and_merge() {
        let mut a = Metrics::default();
        a.count_sent_kind("dat_update");
        a.count_received_kind("dat_update");
        let mut b = Metrics::default();
        b.count_sent_kind("dat_update");
        b.timeouts = 3;
        a.merge(&b);
        assert_eq!(a.sent_of("dat_update"), 2);
        assert_eq!(a.received_of("dat_update"), 1);
        assert_eq!(a.timeouts, 3);
    }

    #[test]
    fn by_kind_sorted() {
        let mut m = Metrics::default();
        m.count_sent_kind("zeta");
        m.count_received_kind("alpha");
        let rows = m.by_kind();
        assert_eq!(rows[0].0, "alpha");
        assert_eq!(rows[1].0, "zeta");
        assert_eq!(rows, vec![("alpha", 0, 1), ("zeta", 1, 0)]);
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::default();
        m.count_sent(&ping());
        m.dropped = 2;
        m.reset();
        assert_eq!(m.sent_total(), 0);
        assert_eq!(m.dropped, 0);
    }
}
