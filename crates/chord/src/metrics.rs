//! Per-node observability: message counters, histograms and event traces.
//!
//! The paper's evaluation is largely message-count based: the distribution
//! of aggregation messages across nodes (Fig. 8a), imbalance factors
//! (Fig. 8b) and maintenance overhead during churn. [`Metrics`] is the
//! compat shim every layer keeps one of — the counting API predates the
//! `dat-obs` registry, but all counts now land in an embedded
//! [`Registry`], every kind-label increment flows through one helper
//! ([`Dir`] + `count_kind`), and a bounded [`Tracer`] records typed events
//! with causal trace ids alongside the tallies.

use dat_obs::{EventKind, Key, Registry, Tracer};

use crate::msg::ChordMsg;

/// Which direction a kind-labeled count applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Outgoing traffic (`sent_total`).
    Sent,
    /// Incoming traffic (`received_total`).
    Received,
}

/// Observability state kept by every protocol node: a metric registry
/// (counters + histograms), an event tracer, and the three loose counters
/// the transports bump directly.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    reg: Registry,
    tracer: Tracer,
    /// Requests that expired in the pending table.
    pub timeouts: u64,
    /// Requests re-sent after an RTO expiry (bounded-retry recovery).
    pub retransmits: u64,
    /// Messages dropped (hop budget, inactive node, empty table).
    pub dropped: u64,
}

impl Metrics {
    /// The single kind-label counting helper: every sent/received tally —
    /// whole messages or bare kind labels — funnels through here.
    fn count_kind(&mut self, dir: Dir, kind: &'static str) {
        let name = match dir {
            Dir::Sent => "sent_total",
            Dir::Received => "received_total",
        };
        self.reg.counter_inc(Key::new(name).label("kind", kind));
    }

    /// Record an outgoing message.
    pub fn count_sent(&mut self, msg: &ChordMsg) {
        self.count_kind(Dir::Sent, msg.kind());
    }

    /// Record an incoming message.
    pub fn count_received(&mut self, msg: &ChordMsg) {
        self.count_kind(Dir::Received, msg.kind());
    }

    /// Record an outgoing message by kind label (for layers above Chord).
    pub fn count_sent_kind(&mut self, kind: &'static str) {
        self.count_kind(Dir::Sent, kind);
    }

    /// Record an incoming message by kind label (for layers above Chord).
    pub fn count_received_kind(&mut self, kind: &'static str) {
        self.count_kind(Dir::Received, kind);
    }

    /// Count an outgoing message *and* trace it under `trace_id`
    /// (`peer` is the destination node id, or the routing key for routed
    /// sends).
    pub fn on_send(&mut self, at_ms: u64, trace_id: u64, kind: &'static str, peer: u64) {
        self.count_kind(Dir::Sent, kind);
        self.tracer
            .record(at_ms, trace_id, EventKind::Send { kind, to: peer });
    }

    /// Count an incoming message *and* trace it under `trace_id`.
    pub fn on_recv(&mut self, at_ms: u64, trace_id: u64, kind: &'static str, peer: u64) {
        self.count_kind(Dir::Received, kind);
        self.tracer
            .record(at_ms, trace_id, EventKind::Recv { kind, from: peer });
    }

    /// Record an arbitrary traced event (timers, epoch starts, reports…).
    pub fn trace(&mut self, at_ms: u64, trace_id: u64, kind: EventKind) {
        self.tracer.record(at_ms, trace_id, kind);
    }

    /// Record a histogram sample (e.g. `route_hops`, `rtt_ms`).
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.reg.observe(Key::new(name), v);
    }

    /// Bump an arbitrary unlabeled counter — for layers above Chord that
    /// need bespoke tallies (e.g. `proactive_reparents_total`). Exported
    /// with the layer stamp by [`Metrics::export_into`] like every other
    /// series.
    pub fn inc(&mut self, name: &'static str) {
        self.reg.counter_inc(Key::new(name));
    }

    /// Read back a counter bumped with [`Metrics::inc`].
    pub fn get(&self, name: &str) -> u64 {
        self.reg.counter_sum(name)
    }

    /// The embedded metric registry (read-only view).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// The embedded event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (enable/disable, resize, drain).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Total messages sent.
    pub fn sent_total(&self) -> u64 {
        self.reg.counter_sum("sent_total")
    }

    /// Total messages received.
    pub fn received_total(&self) -> u64 {
        self.reg.counter_sum("received_total")
    }

    /// Messages sent of a given kind.
    pub fn sent_of(&self, kind: &str) -> u64 {
        self.reg.counter_with("sent_total", kind)
    }

    /// Messages received of a given kind.
    pub fn received_of(&self, kind: &str) -> u64 {
        self.reg.counter_with("received_total", kind)
    }

    /// Sum of sent counts over `kinds`.
    pub fn sent_of_kinds(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.sent_of(k)).sum()
    }

    /// Sum of received counts over `kinds`.
    pub fn received_of_kinds(&self, kinds: &[&str]) -> u64 {
        kinds.iter().map(|k| self.received_of(k)).sum()
    }

    /// Iterate `(kind, sent, received)` over every kind seen, sorted.
    pub fn by_kind(&self) -> Vec<(&'static str, u64, u64)> {
        let mut rows: std::collections::BTreeMap<&'static str, (u64, u64)> =
            std::collections::BTreeMap::new();
        for (key, v) in self.reg.counters() {
            let kind = key.labels[0].1;
            match key.name {
                "sent_total" => rows.entry(kind).or_default().0 += v,
                "received_total" => rows.entry(kind).or_default().1 += v,
                _ => {}
            }
        }
        rows.into_iter().map(|(k, (s, r))| (k, s, r)).collect()
    }

    /// Merge another metrics snapshot into this one (registries merge;
    /// the other's trace buffer is left alone — traces are per-node).
    pub fn merge(&mut self, other: &Metrics) {
        self.reg.merge(&other.reg);
        self.timeouts += other.timeouts;
        self.retransmits += other.retransmits;
        self.dropped += other.dropped;
    }

    /// Reset every counter, histogram and the trace buffer.
    pub fn reset(&mut self) {
        self.reg.reset();
        self.tracer.clear();
        self.timeouts = 0;
        self.retransmits = 0;
        self.dropped = 0;
    }

    /// Fold this node's metrics into a wider registry, stamping every
    /// series with `layer` (e.g. `chord`, `dat`) and materializing the
    /// three loose counters as proper series.
    pub fn export_into(&self, out: &mut Registry, layer: &'static str) {
        out.merge_labeled(&self.reg, "layer", layer);
        out.counter_add(
            Key::new("timeouts_total").label("layer", layer),
            self.timeouts,
        );
        out.counter_add(
            Key::new("retransmits_total").label("layer", layer),
            self.retransmits,
        );
        out.counter_add(
            Key::new("dropped_total").label("layer", layer),
            self.dropped,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finger::{NodeAddr, NodeRef};
    use crate::id::Id;

    fn ping() -> ChordMsg {
        ChordMsg::Ping {
            req: 1,
            sender: NodeRef::new(Id(0), NodeAddr(0)),
        }
    }

    #[test]
    fn counting_and_totals() {
        let mut m = Metrics::default();
        m.count_sent(&ping());
        m.count_sent(&ping());
        m.count_received(&ping());
        assert_eq!(m.sent_total(), 2);
        assert_eq!(m.received_total(), 1);
        assert_eq!(m.sent_of("ping"), 2);
        assert_eq!(m.sent_of("pong"), 0);
    }

    #[test]
    fn custom_kinds_and_merge() {
        let mut a = Metrics::default();
        a.count_sent_kind("dat_update");
        a.count_received_kind("dat_update");
        let mut b = Metrics::default();
        b.count_sent_kind("dat_update");
        b.timeouts = 3;
        a.merge(&b);
        assert_eq!(a.sent_of("dat_update"), 2);
        assert_eq!(a.received_of("dat_update"), 1);
        assert_eq!(a.timeouts, 3);
    }

    #[test]
    fn by_kind_sorted() {
        let mut m = Metrics::default();
        m.count_sent_kind("zeta");
        m.count_received_kind("alpha");
        let rows = m.by_kind();
        assert_eq!(rows[0].0, "alpha");
        assert_eq!(rows[1].0, "zeta");
        assert_eq!(rows, vec![("alpha", 0, 1), ("zeta", 1, 0)]);
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::default();
        m.count_sent(&ping());
        m.dropped = 2;
        m.reset();
        assert_eq!(m.sent_total(), 0);
        assert_eq!(m.dropped, 0);
    }

    #[test]
    fn send_recv_helpers_count_and_trace() {
        let mut m = Metrics::default();
        m.on_send(10, 42, "dat_update", 7);
        m.on_recv(11, 42, "dat_update", 3);
        assert_eq!(m.sent_of("dat_update"), 1);
        assert_eq!(m.received_of("dat_update"), 1);
        let evs: Vec<_> = m.tracer().events().collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].trace_id, 42);
        assert!(matches!(
            evs[0].kind,
            EventKind::Send {
                kind: "dat_update",
                to: 7
            }
        ));
        m.reset();
        assert!(m.tracer().is_empty());
    }

    #[test]
    fn export_stamps_layer_and_loose_counters() {
        let mut m = Metrics::default();
        m.count_sent(&ping());
        m.timeouts = 2;
        m.observe("rtt_ms", 5);
        let mut reg = Registry::new();
        m.export_into(&mut reg, "chord");
        assert_eq!(reg.counter_with("sent_total", "chord"), 1);
        assert_eq!(reg.counter_with("timeouts_total", "chord"), 2);
        assert_eq!(reg.hist_sum("rtt_ms").count(), 1);
        dat_obs::validate_prometheus(&reg.render_prometheus()).expect("valid dump");
    }
}
