//! Finger tables, successor lists and fingers-of-fingers (FOF) state.
//!
//! Each Chord node keeps `b` fingers spaced exponentially in the identifier
//! space: `FINGER(v, j)` is the first node succeeding `v + 2^(j-1)`
//! (paper §3.1). The DAT prototype additionally keeps "the information of
//! its *fingers of finger* (FOF)" (§4) — we store each finger's predecessor
//! and successor as learned during finger fixing, which is what identifier
//! probing and local child computation consume.

use crate::{Id, IdSpace};

/// An opaque transport endpoint for a node. The simulator uses the node's
/// index; the UDP transport maps it to a socket address via an address book.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeAddr(pub u64);

/// A reference to a remote node: its ring identifier plus how to reach it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct NodeRef {
    /// Ring identifier of the node.
    pub id: Id,
    /// Transport endpoint of the node.
    pub addr: NodeAddr,
}

impl NodeRef {
    /// Convenience constructor.
    pub fn new(id: Id, addr: NodeAddr) -> Self {
        NodeRef { id, addr }
    }
}

/// Neighborhood information about one finger: the finger itself plus the
/// FOF data (its predecessor and first successor) learned when the finger
/// was last fixed. `gap` — the arc `(pred, node]` — is what identifier
/// probing ranks candidates by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FingerInfo {
    /// The finger node.
    pub node: NodeRef,
    /// The finger's predecessor at fix time, if known.
    pub pred: Option<NodeRef>,
    /// The finger's first successor at fix time, if known.
    pub succ: Option<NodeRef>,
}

impl FingerInfo {
    /// A finger with no FOF data yet.
    pub fn bare(node: NodeRef) -> Self {
        FingerInfo {
            node,
            pred: None,
            succ: None,
        }
    }

    /// Size of the identifier gap owned by this finger, when its
    /// predecessor is known: `dist(pred, node)`.
    pub fn gap(&self, space: IdSpace) -> Option<u64> {
        self.pred.map(|p| space.dist_cw(p.id, self.node.id))
    }
}

/// The per-node routing state: predecessor, successor list and the finger
/// table proper.
#[derive(Clone, Debug)]
pub struct FingerTable {
    space: IdSpace,
    me: NodeRef,
    /// `fingers[j-1]` holds `FINGER(me, j)`, `j = 1..=b`. Entry 0 is the
    /// immediate successor.
    fingers: Vec<Option<FingerInfo>>,
    /// Successor list for fault tolerance (first entry mirrors finger 1).
    successors: Vec<NodeRef>,
    /// Maximum successor-list length.
    succ_list_len: usize,
    predecessor: Option<NodeRef>,
}

impl FingerTable {
    /// Create an empty table for node `me` in `space`, keeping a successor
    /// list of `succ_list_len` entries.
    pub fn new(space: IdSpace, me: NodeRef, succ_list_len: usize) -> Self {
        FingerTable {
            space,
            me,
            fingers: vec![None; space.bits() as usize],
            successors: Vec::new(),
            succ_list_len: succ_list_len.max(1),
            predecessor: None,
        }
    }

    /// The identifier space this table lives in.
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// The owning node.
    pub fn me(&self) -> NodeRef {
        self.me
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<NodeRef> {
        self.predecessor
    }

    /// Set/replace the predecessor unconditionally.
    pub fn set_predecessor(&mut self, p: Option<NodeRef>) {
        self.predecessor = p;
    }

    /// Adopt `candidate` as predecessor if it is closer than the current one
    /// (the Chord `notify` rule). Returns `true` if the predecessor changed.
    pub fn notify(&mut self, candidate: NodeRef) -> bool {
        if candidate.id == self.me.id {
            return false;
        }
        let adopt = match self.predecessor {
            None => true,
            Some(p) => self.space.in_open_open(candidate.id, p.id, self.me.id),
        };
        if adopt {
            self.predecessor = Some(candidate);
        }
        adopt
    }

    /// Immediate successor (finger 1 / head of the successor list).
    pub fn successor(&self) -> Option<NodeRef> {
        self.successors
            .first()
            .copied()
            .or_else(|| self.fingers[0].map(|f| f.node))
    }

    /// Full successor list, nearest first.
    pub fn successor_list(&self) -> &[NodeRef] {
        &self.successors
    }

    /// Replace the successor list with `succs` (already orderered nearest
    /// first), truncating to the configured length, and mirror the head into
    /// finger 1.
    pub fn set_successor_list(&mut self, succs: Vec<NodeRef>) {
        let mut list: Vec<NodeRef> = Vec::with_capacity(self.succ_list_len);
        for s in succs {
            if s.id != self.me.id && !list.iter().any(|o| o.id == s.id) {
                list.push(s);
            }
            if list.len() == self.succ_list_len {
                break;
            }
        }
        if let Some(&head) = list.first() {
            self.set_finger(1, FingerInfo::bare(head));
        }
        self.successors = list;
    }

    /// Set the immediate successor, pushing the old list down.
    pub fn set_successor(&mut self, s: NodeRef) {
        if s.id == self.me.id {
            self.successors.clear();
            self.fingers[0] = None;
            return;
        }
        let mut list = Vec::with_capacity(self.succ_list_len);
        list.push(s);
        for &old in &self.successors {
            if old.id != s.id && old.id != self.me.id {
                list.push(old);
            }
        }
        list.truncate(self.succ_list_len);
        self.successors = list;
        self.fingers[0] = Some(FingerInfo::bare(s));
    }

    /// Drop a failed node from every slot it occupies. Returns `true` if
    /// anything changed.
    pub fn evict(&mut self, dead: Id) -> bool {
        let mut changed = false;
        if self.predecessor.map(|p| p.id) == Some(dead) {
            self.predecessor = None;
            changed = true;
        }
        let before = self.successors.len();
        self.successors.retain(|s| s.id != dead);
        changed |= self.successors.len() != before;
        for f in self.fingers.iter_mut() {
            if f.map(|fi| fi.node.id) == Some(dead) {
                *f = None;
                changed = true;
            }
        }
        // Keep finger 1 mirroring the successor list head.
        if let Some(&head) = self.successors.first() {
            if self.fingers[0].map(|f| f.node.id) != Some(head.id) {
                self.fingers[0] = Some(FingerInfo::bare(head));
            }
        }
        changed
    }

    /// `FINGER(me, j)` for `j = 1..=b`.
    pub fn finger(&self, j: u8) -> Option<FingerInfo> {
        assert!((1..=self.space.bits()).contains(&j));
        self.fingers[(j - 1) as usize]
    }

    /// Install finger `j`.
    pub fn set_finger(&mut self, j: u8, info: FingerInfo) {
        assert!((1..=self.space.bits()).contains(&j));
        if info.node.id == self.me.id {
            self.fingers[(j - 1) as usize] = None;
            return;
        }
        self.fingers[(j - 1) as usize] = Some(info);
        if j == 1 {
            // Mirror into the successor list head.
            if self.successors.first().map(|s| s.id) != Some(info.node.id) {
                let mut list = vec![info.node];
                list.extend(
                    self.successors
                        .iter()
                        .copied()
                        .filter(|s| s.id != info.node.id),
                );
                list.truncate(self.succ_list_len);
                self.successors = list;
            }
        }
    }

    /// Iterate `(j, FingerInfo)` over the populated fingers, ascending `j`.
    pub fn iter(&self) -> impl Iterator<Item = (u8, FingerInfo)> + '_ {
        self.fingers
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|fi| ((i + 1) as u8, fi)))
    }

    /// The distinct nodes known to this table (fingers + successors +
    /// predecessor), deduplicated by id.
    pub fn known_nodes(&self) -> Vec<NodeRef> {
        let mut out: Vec<NodeRef> = Vec::new();
        let mut push = |n: NodeRef| {
            if n.id != self.me.id && !out.iter().any(|o| o.id == n.id) {
                out.push(n);
            }
        };
        for (_, f) in self.iter() {
            push(f.node);
        }
        for &s in &self.successors {
            push(s);
        }
        if let Some(p) = self.predecessor {
            push(p);
        }
        out
    }

    /// Closest known node preceding-or-at `key` (the greedy routing helper,
    /// paper §3.1): the populated finger in `(me, key]` that maximises
    /// clockwise progress. A finger sitting exactly at `key` owns the key
    /// and is therefore the best possible hop (this is how N8 reaches N0
    /// directly in the paper's Fig. 2). Falls back over successors too.
    pub fn closest_preceding(&self, key: Id) -> Option<NodeRef> {
        let mut best: Option<NodeRef> = None;
        let mut best_dist = u64::MAX;
        let consider = |n: NodeRef, best: &mut Option<NodeRef>, best_dist: &mut u64| {
            if self.space.in_open_closed(n.id, self.me.id, key) {
                let d = self.space.dist_cw(n.id, key);
                if d < *best_dist {
                    *best_dist = d;
                    *best = Some(n);
                }
            }
        };
        // Fingers only: this is what defines the paper's finger routes and
        // hence the basic-DAT tree shape (e.g. node 13's parent toward key 0
        // on the Fig. 2 ring is its finger 15, even if its successor list
        // happens to contain the root).
        for (_, f) in self.iter() {
            consider(f.node, &mut best, &mut best_dist);
        }
        if best.is_some() {
            return best;
        }
        // Degraded table: fall back on the successor list so routing still
        // makes progress while fingers are being fixed.
        for &s in &self.successors {
            consider(s, &mut best, &mut best_dist);
        }
        best
    }

    /// Number of populated fingers.
    pub fn populated(&self) -> usize {
        self.fingers.iter().filter(|f| f.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id))
    }

    fn table() -> FingerTable {
        FingerTable::new(IdSpace::new(4), nr(8), 3)
    }

    #[test]
    fn successor_mirrors_finger_one() {
        let mut t = table();
        t.set_successor(nr(9));
        assert_eq!(t.successor().unwrap().id, Id(9));
        assert_eq!(t.finger(1).unwrap().node.id, Id(9));
        t.set_finger(1, FingerInfo::bare(nr(10)));
        assert_eq!(t.successor().unwrap().id, Id(10));
        assert_eq!(t.successor_list()[0].id, Id(10));
    }

    #[test]
    fn successor_list_truncated_and_deduped() {
        let mut t = table();
        t.set_successor_list(vec![nr(9), nr(10), nr(9), nr(12), nr(14)]);
        let ids: Vec<u64> = t.successor_list().iter().map(|s| s.id.raw()).collect();
        assert_eq!(ids, vec![9, 10, 12]);
    }

    #[test]
    fn self_references_rejected() {
        let mut t = table();
        t.set_successor(nr(8));
        assert!(t.successor().is_none());
        t.set_finger(2, FingerInfo::bare(nr(8)));
        assert!(t.finger(2).is_none());
        t.set_successor_list(vec![nr(8), nr(9)]);
        assert_eq!(t.successor().unwrap().id, Id(9));
    }

    #[test]
    fn notify_rule() {
        let mut t = table();
        assert!(t.notify(nr(3)));
        assert_eq!(t.predecessor().unwrap().id, Id(3));
        // 5 ∈ (3, 8): closer predecessor, adopt.
        assert!(t.notify(nr(5)));
        assert_eq!(t.predecessor().unwrap().id, Id(5));
        // 3 ∉ (5, 8): keep 5.
        assert!(!t.notify(nr(3)));
        assert_eq!(t.predecessor().unwrap().id, Id(5));
        // Self is never a predecessor.
        assert!(!t.notify(nr(8)));
    }

    #[test]
    fn closest_preceding_picks_max_progress() {
        let mut t = table();
        t.set_finger(1, FingerInfo::bare(nr(9)));
        t.set_finger(2, FingerInfo::bare(nr(10)));
        t.set_finger(3, FingerInfo::bare(nr(12)));
        t.set_finger(4, FingerInfo::bare(nr(0)));
        // Toward key 0: finger 0 IS the key (and thus owns it) — take it
        // directly, as N8 does in the paper's Fig. 2.
        assert_eq!(t.closest_preceding(Id(0)).unwrap().id, Id(0));
        // Toward key 11: best in (8, 11] is 10.
        assert_eq!(t.closest_preceding(Id(11)).unwrap().id, Id(10));
        // Toward key 9: the successor 9 sits exactly at the key.
        assert_eq!(t.closest_preceding(Id(9)).unwrap().id, Id(9));
        // Toward key 8 (our own id): the whole ring precedes it; max
        // progress is the finger just before 8, i.e. 0... none closer than
        // 12? 12 is at distance 12 from key 8; 0 is at distance 8 — best.
        assert_eq!(t.closest_preceding(Id(8)).unwrap().id, Id(0));
    }

    #[test]
    fn evict_clears_everywhere() {
        let mut t = table();
        t.set_successor_list(vec![nr(9), nr(10), nr(12)]);
        t.set_finger(3, FingerInfo::bare(nr(9)));
        t.set_predecessor(Some(nr(9)));
        assert!(t.evict(Id(9)));
        assert!(t.predecessor().is_none());
        assert_eq!(t.successor().unwrap().id, Id(10));
        assert!(t.finger(3).is_none());
        assert_eq!(t.finger(1).unwrap().node.id, Id(10));
        assert!(!t.evict(Id(9)));
    }

    #[test]
    fn known_nodes_dedup() {
        let mut t = table();
        t.set_successor_list(vec![nr(9), nr(10)]);
        t.set_finger(3, FingerInfo::bare(nr(12)));
        t.set_predecessor(Some(nr(5)));
        let mut ids: Vec<u64> = t.known_nodes().iter().map(|n| n.id.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![5, 9, 10, 12]);
    }

    #[test]
    fn finger_gap_uses_fof() {
        let space = IdSpace::new(4);
        let fi = FingerInfo {
            node: nr(12),
            pred: Some(nr(9)),
            succ: Some(nr(14)),
        };
        assert_eq!(fi.gap(space), Some(3));
        assert_eq!(FingerInfo::bare(nr(12)).gap(space), None);
    }
}
