//! The single transport-facing actor interface.
//!
//! Both drivers — the deterministic simulator (`dat-sim`) and the UDP RPC
//! cluster (`dat-rpc`) — host protocol state machines through this one
//! trait. An actor is addressed, consumes [`Input`]s and emits [`Output`]s,
//! and has its clock advanced by the driver before every delivery. The one
//! implementation in the workspace is `dat-core`'s `StackNode`, the
//! protocol-stack engine that multiplexes any number of application
//! protocols over a single Chord substrate; transports never need to know
//! which protocols a node hosts.

use crate::finger::NodeAddr;
use crate::msg::{Input, Output};

/// A hosted protocol endpoint, as seen by a transport.
///
/// `Send + 'static` so the same object can be moved onto the UDP cluster's
/// per-node worker threads; the simulator needs neither bound but accepts
/// them for the sake of one shared vocabulary.
pub trait Actor: Send + 'static {
    /// The transport address this actor must be reachable at.
    fn addr(&self) -> NodeAddr;

    /// Feed one input (message delivery or timer expiry) and collect the
    /// resulting outputs.
    fn on_input(&mut self, input: Input) -> Vec<Output>;

    /// Advance the actor's monotonic clock. Drivers call this before every
    /// [`Actor::on_input`] so protocol code never observes a stale clock.
    fn set_now(&mut self, _now_ms: u64) {}
}

/// The bare substrate is itself hostable — a Chord overlay with no
/// application protocols on top.
impl Actor for crate::node::ChordNode {
    fn addr(&self) -> NodeAddr {
        self.me().addr
    }

    fn on_input(&mut self, input: Input) -> Vec<Output> {
        self.handle(input)
    }

    fn set_now(&mut self, now_ms: u64) {
        crate::node::ChordNode::set_now(self, now_ms);
    }
}
