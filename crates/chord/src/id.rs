//! Circular b-bit identifier space arithmetic.
//!
//! Chord structures its identifier space as a cycle of `2^b` (paper §3.1).
//! All node and key identifiers live in `[0, 2^b)` and every arithmetic
//! operation is taken modulo `2^b`. This module provides [`Id`] (a thin
//! newtype over `u64`) and [`IdSpace`], which carries the bit width `b` and
//! implements the modular operations every other layer builds on.
//!
//! The paper writes `DIST(i1, i2) = (i1 + 2^b - i2) mod 2^b`; we expose the
//! same quantity as [`IdSpace::dist_cw`]`(i2, i1)` — the clockwise distance
//! travelled when walking from the first argument to the second. Keeping a
//! single orientation ("from, to") avoids the sign confusions that the
//! paper's own Fig. 5 narration trips over.

use core::fmt;

/// An identifier in a circular b-bit space.
///
/// `Id` deliberately does not implement `Add`/`Sub`: all modular arithmetic
/// must go through an [`IdSpace`] so the bit width is always explicit.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Id(pub u64);

impl Id {
    /// The zero identifier.
    pub const ZERO: Id = Id(0);

    /// Raw value of the identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Id {
    fn from(v: u64) -> Self {
        Id(v)
    }
}

/// A circular identifier space of `2^bits` identifiers, `1 <= bits <= 64`.
///
/// The paper's prototype uses SHA-1 (160-bit) identifiers; we default to a
/// 64-bit space, which is plenty for up to millions of nodes while letting
/// arithmetic stay in native integers. All experiments in the paper
/// (≤ 8192 nodes) are unaffected by the width as long as `2^bits >> n`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct IdSpace {
    bits: u8,
}

impl Default for IdSpace {
    fn default() -> Self {
        IdSpace::new(64)
    }
}

impl IdSpace {
    /// Create a space of `2^bits` identifiers. Panics unless `1 <= bits <= 64`.
    pub fn new(bits: u8) -> Self {
        assert!((1..=64).contains(&bits), "id space bits must be in 1..=64");
        IdSpace { bits }
    }

    /// Bit width `b` of the space.
    #[inline]
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// Number of identifiers `2^b` as `u128` (avoids overflow at b = 64).
    #[inline]
    pub fn size(self) -> u128 {
        1u128 << self.bits
    }

    /// Bit mask selecting the low `b` bits.
    #[inline]
    pub fn mask(self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Truncate an arbitrary value into the space.
    #[inline]
    pub fn id(self, v: u64) -> Id {
        Id(v & self.mask())
    }

    /// `(a + delta) mod 2^b`.
    #[inline]
    pub fn add(self, a: Id, delta: u64) -> Id {
        self.id(a.0.wrapping_add(delta))
    }

    /// `(a - delta) mod 2^b`.
    #[inline]
    pub fn sub(self, a: Id, delta: u64) -> Id {
        self.id(a.0.wrapping_sub(delta))
    }

    /// Clockwise distance from `from` to `to`: the number of steps walked in
    /// increasing-identifier direction to reach `to` from `from`.
    ///
    /// Equals the paper's `DIST(to, from)` under its
    /// `DIST(i1, i2) = (i1 + 2^b − i2) mod 2^b` convention.
    #[inline]
    pub fn dist_cw(self, from: Id, to: Id) -> u64 {
        self.id(to.0.wrapping_sub(from.0)).0
    }

    /// `true` iff `x ∈ (a, b]` walking clockwise from `a`.
    ///
    /// When `a == b` the interval is the whole circle (everything but `a`
    /// itself is strictly inside, and `b == a` is included), matching the
    /// Chord paper's conventions for successor checks on a 1-node ring.
    #[inline]
    pub fn in_open_closed(self, x: Id, a: Id, b: Id) -> bool {
        if a == b {
            return true;
        }
        self.dist_cw(a, x) <= self.dist_cw(a, b) && x != a
    }

    /// `true` iff `x ∈ [a, b)` walking clockwise from `a`.
    #[inline]
    pub fn in_closed_open(self, x: Id, a: Id, b: Id) -> bool {
        if a == b {
            return true;
        }
        x == a || self.dist_cw(a, x) < self.dist_cw(a, b)
    }

    /// `true` iff `x ∈ (a, b)` walking clockwise from `a`.
    #[inline]
    pub fn in_open_open(self, x: Id, a: Id, b: Id) -> bool {
        if a == b {
            // Whole circle minus the endpoint.
            return x != a;
        }
        x != a && x != b && self.dist_cw(a, x) < self.dist_cw(a, b)
    }

    /// Nominal start of the `j`-th finger interval of `v` (1-based):
    /// `v + 2^(j-1) mod 2^b`. `FINGER(v, j)` is the first node that succeeds
    /// this point (paper §3.1). Panics unless `1 <= j <= b`.
    #[inline]
    pub fn finger_start(self, v: Id, j: u8) -> Id {
        assert!(
            (1..=self.bits).contains(&j),
            "finger index {j} out of range 1..={}",
            self.bits
        );
        self.add(v, 1u64 << (j - 1))
    }

    /// Nominal offset of the `j`-th finger: `2^(j-1)`.
    #[inline]
    pub fn finger_offset(self, j: u8) -> u64 {
        assert!((1..=self.bits).contains(&j));
        1u64 << (j - 1)
    }

    /// Midpoint of the clockwise arc from `a` to `b` — used by identifier
    /// probing to split the largest gap. For a zero-length arc returns `a`.
    #[inline]
    pub fn midpoint(self, a: Id, b: Id) -> Id {
        let d = self.dist_cw(a, b);
        self.add(a, d / 2)
    }

    /// Draw a uniformly random identifier from the space.
    pub fn random<R: rand::Rng + ?Sized>(self, rng: &mut R) -> Id {
        self.id(rng.random::<u64>())
    }
}

/// Exact integer `⌈log2(x)⌉` for `x >= 1`. `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(x: u128) -> u32 {
    assert!(x >= 1, "ceil_log2 of zero");
    if x == 1 {
        0
    } else {
        128 - (x - 1).leading_zeros()
    }
}

/// Exact integer `⌈log2(num/den)⌉` for a positive rational `num/den`:
/// the minimal `k >= 0` with `den * 2^k >= num`. Requires `num >= den`
/// callers wanting non-negative results; for `num < den` returns 0 (the
/// identifier-space quantities the paper feeds in are always >= 1).
#[inline]
pub fn ceil_log2_ratio(num: u128, den: u128) -> u32 {
    assert!(den > 0, "ceil_log2_ratio with zero denominator");
    assert!(num > 0, "ceil_log2_ratio with zero numerator");
    if num <= den {
        return 0;
    }
    // Minimal k with den << k >= num. num/den <= 2^127 always holds for the
    // id-space magnitudes we use (num <= 3 * 2^64), so the shift is safe.
    let q = num.div_ceil(den);
    ceil_log2(q).min(127) // ⌈log2⌈num/den⌉⌉ == ⌈log2(num/den)⌉ for integers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_truncation() {
        let s = IdSpace::new(4);
        assert_eq!(s.mask(), 0xF);
        assert_eq!(s.id(16), Id(0));
        assert_eq!(s.id(31), Id(15));
        let s64 = IdSpace::new(64);
        assert_eq!(s64.mask(), u64::MAX);
        assert_eq!(s64.size(), 1u128 << 64);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        IdSpace::new(0);
    }

    #[test]
    #[should_panic]
    fn too_many_bits_rejected() {
        IdSpace::new(65);
    }

    #[test]
    fn add_sub_wrap() {
        let s = IdSpace::new(4);
        assert_eq!(s.add(Id(15), 1), Id(0));
        assert_eq!(s.add(Id(15), 17), Id(0));
        assert_eq!(s.sub(Id(0), 1), Id(15));
        assert_eq!(s.sub(Id(3), 19), Id(0));
    }

    #[test]
    fn dist_cw_matches_paper_examples() {
        let s = IdSpace::new(4);
        // Walking clockwise from 8 to 0 in a 16-id space covers 8 steps —
        // the x = 8 of the paper's N8 example (§3.4).
        assert_eq!(s.dist_cw(Id(8), Id(0)), 8);
        assert_eq!(s.dist_cw(Id(0), Id(8)), 8);
        assert_eq!(s.dist_cw(Id(1), Id(0)), 15);
        assert_eq!(s.dist_cw(Id(5), Id(5)), 0);
    }

    #[test]
    fn dist_cw_full_width() {
        let s = IdSpace::new(64);
        assert_eq!(s.dist_cw(Id(u64::MAX), Id(0)), 1);
        assert_eq!(s.dist_cw(Id(0), Id(u64::MAX)), u64::MAX);
    }

    #[test]
    fn interval_open_closed() {
        let s = IdSpace::new(4);
        assert!(s.in_open_closed(Id(5), Id(4), Id(5)));
        assert!(!s.in_open_closed(Id(4), Id(4), Id(5)));
        // Wrapping interval (14, 2]
        assert!(s.in_open_closed(Id(15), Id(14), Id(2)));
        assert!(s.in_open_closed(Id(0), Id(14), Id(2)));
        assert!(s.in_open_closed(Id(2), Id(14), Id(2)));
        assert!(!s.in_open_closed(Id(14), Id(14), Id(2)));
        assert!(!s.in_open_closed(Id(3), Id(14), Id(2)));
        // Degenerate a == b: whole circle except a.
        assert!(s.in_open_closed(Id(9), Id(3), Id(3)));
        assert!(s.in_open_closed(Id(3), Id(3), Id(3))); // b itself included
    }

    #[test]
    fn interval_closed_open_and_open_open() {
        let s = IdSpace::new(4);
        assert!(s.in_closed_open(Id(4), Id(4), Id(5)));
        assert!(!s.in_closed_open(Id(5), Id(4), Id(5)));
        assert!(s.in_open_open(Id(15), Id(14), Id(2)));
        assert!(!s.in_open_open(Id(2), Id(14), Id(2)));
        assert!(!s.in_open_open(Id(14), Id(14), Id(2)));
        assert!(s.in_open_open(Id(9), Id(3), Id(3)));
        assert!(!s.in_open_open(Id(3), Id(3), Id(3)));
    }

    #[test]
    fn finger_starts() {
        let s = IdSpace::new(4);
        // N8's finger interval starts: 9, 10, 12, 0 (paper Fig. 2).
        assert_eq!(s.finger_start(Id(8), 1), Id(9));
        assert_eq!(s.finger_start(Id(8), 2), Id(10));
        assert_eq!(s.finger_start(Id(8), 3), Id(12));
        assert_eq!(s.finger_start(Id(8), 4), Id(0));
    }

    #[test]
    fn midpoint_splits_gaps() {
        let s = IdSpace::new(4);
        assert_eq!(s.midpoint(Id(0), Id(8)), Id(4));
        assert_eq!(s.midpoint(Id(14), Id(2)), Id(0));
        assert_eq!(s.midpoint(Id(5), Id(5)), Id(5));
        assert_eq!(s.midpoint(Id(5), Id(6)), Id(5));
    }

    #[test]
    fn ceil_log2_small_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1 << 40), 40);
        assert_eq!(ceil_log2((1 << 40) + 1), 41);
    }

    #[test]
    fn ceil_log2_ratio_matches_paper_g_of_x() {
        // g(x) = ceil(log2((x + 2 d0) / 3)) with d0 = 1:
        // x = 8 -> ceil(log2(10/3)) = 2 (paper's N8 example).
        assert_eq!(ceil_log2_ratio(8 + 2, 3), 2);
        // x = 1 -> ceil(log2(3/3)) = 0.
        assert_eq!(ceil_log2_ratio(1 + 2, 3), 0);
        // x = 2 -> ceil(log2(4/3)) = 1.
        assert_eq!(ceil_log2_ratio(2 + 2, 3), 1);
        // x = 4 -> ceil(log2(6/3)) = 1.
        assert_eq!(ceil_log2_ratio(4 + 2, 3), 1);
        // x = 5 -> ceil(log2(7/3)) = 2.
        assert_eq!(ceil_log2_ratio(5 + 2, 3), 2);
    }

    #[test]
    fn ceil_log2_ratio_degenerate() {
        assert_eq!(ceil_log2_ratio(1, 5), 0);
        assert_eq!(ceil_log2_ratio(5, 5), 0);
        assert_eq!(ceil_log2_ratio(6, 5), 1);
    }

    #[test]
    fn random_ids_in_space() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let s = IdSpace::new(10);
        for _ in 0..1000 {
            let id = s.random(&mut rng);
            assert!(id.raw() < 1024);
        }
    }
}
