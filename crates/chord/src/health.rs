//! Phi-accrual failure detection with flap damping — the health plane.
//!
//! The RTO machinery ([`crate::node::ChordNode`]) reacts to *silence*: a
//! request times out, retries, and eventually evicts the peer. That is the
//! right tool for clean crashes, but it cannot tell a dead peer from a slow
//! one, and it reacts only after the full retry budget burns down. The
//! [`HealthDetector`] closes that gap with the phi-accrual estimator of
//! Hayashibara et al.: every ack/reply a peer sends is a heartbeat, the
//! detector learns the peer's natural cadence (mean + deviation of
//! inter-arrival times), and suspicion is the improbability of the current
//! silence under that history — `phi = -log10(P(silence this long))`.
//! Upper layers act on a *level* ([`SuspicionLevel`]), not a timeout: a
//! peer whose phi crosses the threshold turns [`SuspicionLevel::Suspect`]
//! *before* any request times out, which is what lets the DAT layer
//! re-parent proactively.
//!
//! Slow-but-alive peers oscillate: they fall silent, turn Suspect, then
//! ack and recover. Each Suspect→Healthy recovery is recorded; too many
//! recoveries inside the flap window and the peer is *quarantined* — held
//! at [`SuspicionLevel::Quarantined`] for a fixed period regardless of its
//! acks, so routing stops bouncing on and off it. A quarantined peer
//! rejoins (drops back to Healthy) only after the quarantine expires, with
//! its flap history cleared.
//!
//! The detector is sans-io and fully deterministic: it consumes only
//! `(peer, now_ms)` observations, never a clock or RNG of its own, so the
//! same input schedule yields the same suspicion trajectory on the
//! simulator and over UDP.

#![deny(clippy::unwrap_used)]

use std::collections::{BTreeMap, VecDeque};

use crate::id::Id;

/// Tunables for the phi-accrual detector. Times are host milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Suspicion threshold: a peer turns [`SuspicionLevel::Suspect`] when
    /// its phi (improbability exponent of the current silence) reaches
    /// this. 8 ≈ "this silence had a 10⁻⁸ chance under the learned
    /// cadence".
    pub phi_threshold: f64,
    /// Sliding window of inter-arrival samples kept per peer.
    pub window: usize,
    /// Floor on the inter-arrival standard deviation (ms). Simulated
    /// heartbeats can be metronome-regular; without a floor the
    /// distribution collapses and one millisecond of jitter reads as
    /// certain death.
    pub min_std_ms: f64,
    /// Inter-arrival samples required before phi is trusted; below this
    /// the peer reads Healthy (phi 0).
    pub min_samples: usize,
    /// Sliding window (ms) over which Suspect→Healthy recoveries count as
    /// flapping.
    pub flap_window_ms: u64,
    /// Recoveries inside the flap window that trigger quarantine.
    pub flap_threshold: u32,
    /// How long a quarantined peer is held at
    /// [`SuspicionLevel::Quarantined`] before it may rejoin.
    pub quarantine_ms: u64,
    /// Silence (ms) after which a monitored peer is worth an adaptive
    /// keepalive ping (see [`HealthDetector::stalest`]).
    pub keepalive_after_ms: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            phi_threshold: 8.0,
            window: 32,
            min_std_ms: 100.0,
            min_samples: 3,
            flap_window_ms: 30_000,
            flap_threshold: 3,
            quarantine_ms: 30_000,
            keepalive_after_ms: 3_000,
        }
    }
}

/// Coarse per-peer suspicion state derived from phi + flap damping.
/// Ordered: `Healthy < Suspect < Quarantined`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SuspicionLevel {
    /// Phi below threshold (or not enough history to judge).
    Healthy,
    /// Phi crossed the threshold, or the last tracked exchange to this
    /// peer exhausted its retries.
    Suspect,
    /// The peer flapped Suspect↔Healthy too often and is held suspect for
    /// a fixed period regardless of its acks.
    Quarantined,
}

/// Per-peer detector state.
#[derive(Clone, Debug)]
struct PeerHealth {
    /// Sliding window of heartbeat inter-arrival times (ms).
    intervals: VecDeque<u64>,
    /// Host time of the last heartbeat.
    last_heard_ms: u64,
    level: SuspicionLevel,
    /// Timestamps of recent Suspect→Healthy recoveries (flap evidence).
    recoveries: VecDeque<u64>,
    /// When a quarantine ends (meaningful only while Quarantined).
    quarantined_until_ms: u64,
}

impl PeerHealth {
    fn new(now_ms: u64) -> Self {
        PeerHealth {
            intervals: VecDeque::new(),
            last_heard_ms: now_ms,
            level: SuspicionLevel::Healthy,
            recoveries: VecDeque::new(),
            quarantined_until_ms: 0,
        }
    }
}

/// The phi-accrual failure detector with flap damping.
///
/// Counters are loose public fields (the same pattern as
/// [`crate::metrics::Metrics`]); hosts export them into their registry.
#[derive(Clone, Debug, Default)]
pub struct HealthDetector {
    cfg: HealthConfig,
    /// `BTreeMap` so every iteration (keepalive target pick, exports) is
    /// deterministic.
    peers: BTreeMap<Id, PeerHealth>,
    /// Healthy→Suspect transitions observed (phi crossings + final
    /// timeouts).
    pub suspects: u64,
    /// Suspect→Quarantined transitions (flap damping trips).
    pub quarantines: u64,
    /// Quarantined→Healthy transitions after a quarantine expired.
    pub rejoins: u64,
}

impl HealthDetector {
    /// A detector with the given tunables.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthDetector {
            cfg,
            peers: BTreeMap::new(),
            suspects: 0,
            quarantines: 0,
            rejoins: 0,
        }
    }

    /// The tunables in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Mutable access to the tunables (harnesses shorten quarantines).
    pub fn config_mut(&mut self) -> &mut HealthConfig {
        &mut self.cfg
    }

    /// Record a heartbeat: any ack, reply or message that proves `peer`
    /// was alive at `now_ms`.
    pub fn heartbeat(&mut self, peer: Id, now_ms: u64) {
        let window = self.cfg.window;
        let e = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerHealth::new(now_ms));
        if now_ms > e.last_heard_ms {
            // Only a Healthy peer's cadence is learned: the long silence
            // that ends a Suspect episode is exactly the anomaly the
            // detector exists to flag, and absorbing it would train the
            // detector to accept ever-worse degradation (and let flappers
            // walk the threshold out from under the flap damper).
            if e.level == SuspicionLevel::Healthy {
                e.intervals.push_back(now_ms - e.last_heard_ms);
                if e.intervals.len() > window {
                    e.intervals.pop_front();
                }
            }
            e.last_heard_ms = now_ms;
        }
        self.transition(peer, now_ms);
    }

    /// Record hard evidence of failure: a tracked exchange to `peer`
    /// exhausted its retries. Forces Suspect immediately (quarantine is
    /// never overridden downward).
    pub fn miss(&mut self, peer: Id, now_ms: u64) {
        let e = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerHealth::new(now_ms));
        if e.level == SuspicionLevel::Healthy {
            e.level = SuspicionLevel::Suspect;
            self.suspects += 1;
        }
    }

    /// Phi for `peer` at `now_ms`: `-log10` of the probability that a
    /// peer with this heartbeat history stays silent this long. 0.0 while
    /// the history is too short to judge.
    pub fn phi(&self, peer: Id, now_ms: u64) -> f64 {
        let Some(e) = self.peers.get(&peer) else {
            return 0.0;
        };
        if e.intervals.len() < self.cfg.min_samples {
            return 0.0;
        }
        let n = e.intervals.len() as f64;
        let mean = e.intervals.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = e
            .intervals
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        let std = var.sqrt().max(self.cfg.min_std_ms);
        let t = now_ms.saturating_sub(e.last_heard_ms) as f64;
        // Logistic approximation of the normal tail (as used by Akka's
        // accrual detector): cheap, monotone, and good to a few percent.
        let y = (t - mean) / std;
        let ex = (-y * (1.5976 + 0.070566 * y * y)).exp();
        let p_later = if t > mean {
            ex / (1.0 + ex)
        } else {
            1.0 - 1.0 / (1.0 + ex)
        };
        -p_later.max(1e-30).log10()
    }

    /// Evaluate and return `peer`'s suspicion level at `now_ms`,
    /// advancing the Healthy↔Suspect↔Quarantined state machine (silence
    /// alone can raise suspicion, so evaluation mutates).
    pub fn level(&mut self, peer: Id, now_ms: u64) -> SuspicionLevel {
        if !self.peers.contains_key(&peer) {
            return SuspicionLevel::Healthy;
        }
        self.transition(peer, now_ms);
        self.peek(peer)
    }

    /// The last evaluated level, without re-evaluating (pure read — used
    /// for cross-transport snapshots).
    pub fn peek(&self, peer: Id) -> SuspicionLevel {
        self.peers
            .get(&peer)
            .map(|e| e.level)
            .unwrap_or(SuspicionLevel::Healthy)
    }

    /// Drop all state for `peer` (evicted / departed / replaced).
    pub fn forget(&mut self, peer: Id) {
        self.peers.remove(&peer);
    }

    /// Among `candidates`, the peer silent the longest — provided its
    /// silence exceeds `keepalive_after_ms` — as the target for one
    /// adaptive keepalive ping. A candidate with no history counts as
    /// silent since time zero (never heard), so fresh links get probed and
    /// a history started, without a ping storm at startup.
    pub fn stalest(&self, candidates: &[Id], now_ms: u64) -> Option<Id> {
        let mut best: Option<(u64, Id)> = None;
        for &c in candidates {
            let silence = match self.peers.get(&c) {
                Some(e) => now_ms.saturating_sub(e.last_heard_ms),
                None => now_ms,
            };
            if silence < self.cfg.keepalive_after_ms {
                continue;
            }
            if best.map(|(s, _)| silence > s).unwrap_or(true) {
                best = Some((silence, c));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Number of peers currently tracked.
    pub fn tracked(&self) -> usize {
        self.peers.len()
    }

    /// Iterate `(peer, level)` in deterministic (id) order.
    pub fn peers(&self) -> impl Iterator<Item = (Id, SuspicionLevel)> + '_ {
        self.peers.iter().map(|(id, e)| (*id, e.level))
    }

    /// Advance the state machine for one peer at `now_ms`.
    fn transition(&mut self, peer: Id, now_ms: u64) {
        let phi = self.phi(peer, now_ms);
        let threshold = self.cfg.phi_threshold;
        let (flap_window, flap_threshold, quarantine) = (
            self.cfg.flap_window_ms,
            self.cfg.flap_threshold,
            self.cfg.quarantine_ms,
        );
        let Some(e) = self.peers.get_mut(&peer) else {
            return;
        };
        match e.level {
            SuspicionLevel::Quarantined => {
                if now_ms >= e.quarantined_until_ms && phi < threshold {
                    // Quarantine served AND the peer is currently talking:
                    // it has stabilized, let it back in with a clean slate.
                    e.level = SuspicionLevel::Healthy;
                    e.recoveries.clear();
                    self.rejoins += 1;
                }
            }
            SuspicionLevel::Suspect => {
                if phi < threshold {
                    // Recovery. Count it as flap evidence; too many inside
                    // the window and the peer is quarantined instead.
                    e.recoveries.push_back(now_ms);
                    while e
                        .recoveries
                        .front()
                        .is_some_and(|&t| now_ms.saturating_sub(t) > flap_window)
                    {
                        e.recoveries.pop_front();
                    }
                    if e.recoveries.len() as u32 >= flap_threshold {
                        e.level = SuspicionLevel::Quarantined;
                        e.quarantined_until_ms = now_ms + quarantine;
                        e.recoveries.clear();
                        self.quarantines += 1;
                    } else {
                        e.level = SuspicionLevel::Healthy;
                    }
                }
            }
            SuspicionLevel::Healthy => {
                if phi >= threshold {
                    e.level = SuspicionLevel::Suspect;
                    self.suspects += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(x: u64) -> Id {
        Id(x)
    }

    fn cfg() -> HealthConfig {
        HealthConfig {
            phi_threshold: 4.0,
            min_samples: 3,
            min_std_ms: 50.0,
            flap_window_ms: 20_000,
            flap_threshold: 3,
            quarantine_ms: 5_000,
            ..HealthConfig::default()
        }
    }

    /// Feed a regular cadence and return the detector + last timestamp.
    fn warmed(d: &mut HealthDetector, peer: Id, period: u64, beats: u64) -> u64 {
        let mut t = 0;
        for i in 1..=beats {
            t = i * period;
            d.heartbeat(peer, t);
        }
        t
    }

    #[test]
    fn regular_heartbeats_stay_healthy() {
        let mut d = HealthDetector::new(cfg());
        let t = warmed(&mut d, id(7), 500, 20);
        assert_eq!(d.level(id(7), t + 600), SuspicionLevel::Healthy);
        assert!(d.phi(id(7), t + 600) < 4.0);
        assert_eq!(d.suspects, 0);
    }

    #[test]
    fn unknown_peer_is_healthy_with_zero_phi() {
        let mut d = HealthDetector::new(cfg());
        assert_eq!(d.level(id(1), 10_000), SuspicionLevel::Healthy);
        assert_eq!(d.phi(id(1), 10_000), 0.0);
    }

    #[test]
    fn silence_raises_phi_until_suspect() {
        let mut d = HealthDetector::new(cfg());
        let t = warmed(&mut d, id(7), 500, 20);
        // Growing silence: phi grows monotonically past the bar (sampled
        // close to the mean so the 10⁻³⁰ probability floor is not hit).
        let p1 = d.phi(id(7), t + 550);
        let p2 = d.phi(id(7), t + 650);
        let p3 = d.phi(id(7), t + 900);
        assert!(p1 < p2 && p2 < p3, "phi not monotone: {p1} {p2} {p3}");
        assert_eq!(d.level(id(7), t + 4_000), SuspicionLevel::Suspect);
        assert_eq!(d.suspects, 1);
        // An ack recovers it.
        d.heartbeat(id(7), t + 4_100);
        assert_eq!(d.peek(id(7)), SuspicionLevel::Healthy);
    }

    #[test]
    fn miss_forces_suspect_without_history() {
        let mut d = HealthDetector::new(cfg());
        d.miss(id(9), 1_000);
        assert_eq!(d.peek(id(9)), SuspicionLevel::Suspect);
        assert_eq!(d.suspects, 1);
    }

    #[test]
    fn flapping_peer_is_quarantined_then_rejoins() {
        let mut d = HealthDetector::new(cfg());
        let mut t = warmed(&mut d, id(3), 500, 20);
        // Three suspect/recover cycles inside the flap window.
        for flap in 0..3 {
            t += 4_000; // long silence → Suspect
            assert_eq!(
                d.level(id(3), t),
                SuspicionLevel::Suspect,
                "flap {flap} did not suspect"
            );
            t += 100;
            d.heartbeat(id(3), t); // recovery
        }
        assert_eq!(d.peek(id(3)), SuspicionLevel::Quarantined);
        assert_eq!(d.quarantines, 1);
        // Acks during quarantine do not lift it.
        t += 1_000;
        d.heartbeat(id(3), t);
        assert_eq!(d.peek(id(3)), SuspicionLevel::Quarantined);
        // After it expires AND the peer is talking again, it rejoins.
        t += 6_000;
        d.heartbeat(id(3), t);
        d.heartbeat(id(3), t + 500);
        d.heartbeat(id(3), t + 1_000);
        assert_eq!(d.level(id(3), t + 1_200), SuspicionLevel::Healthy);
        assert_eq!(d.rejoins, 1);
    }

    #[test]
    fn stalest_prefers_longest_silence_and_unknowns() {
        let mut d = HealthDetector::new(cfg());
        d.heartbeat(id(1), 1_000);
        d.heartbeat(id(2), 5_000);
        // Both known peers are past the keepalive bar at t=10s; id(1) is
        // staler. An unknown candidate beats both.
        assert_eq!(d.stalest(&[id(1), id(2)], 10_000), Some(id(1)));
        assert_eq!(d.stalest(&[id(1), id(2), id(4)], 10_000), Some(id(4)));
        // Fresh peers are not pinged.
        d.heartbeat(id(1), 9_500);
        d.heartbeat(id(2), 9_600);
        assert_eq!(d.stalest(&[id(1), id(2)], 10_000), None);
    }

    #[test]
    fn forget_drops_state() {
        let mut d = HealthDetector::new(cfg());
        d.miss(id(5), 100);
        d.forget(id(5));
        assert_eq!(d.peek(id(5)), SuspicionLevel::Healthy);
        assert_eq!(d.tracked(), 0);
    }

    #[test]
    fn determinism_same_schedule_same_trajectory() {
        let run = || {
            let mut d = HealthDetector::new(cfg());
            let mut levels = Vec::new();
            let t = warmed(&mut d, id(8), 400, 16);
            for step in 0..40u64 {
                let now = t + step * 300;
                if step % 7 == 0 {
                    d.heartbeat(id(8), now);
                }
                levels.push(d.level(id(8), now));
            }
            (levels, d.suspects, d.quarantines, d.rejoins)
        };
        assert_eq!(run(), run());
    }
}
