//! Greedy and balanced Chord routing.
//!
//! *Greedy finger routing* (paper §3.1) always forwards a lookup for key `k`
//! to the closest preceding finger — each hop covers at least half of the
//! remaining clockwise arc, giving `O(log n)` hops but a skewed implicit
//! tree (the root ends up with `log2 n` children, §3.3).
//!
//! *Balanced routing* (paper §3.4, Algorithm 1) restricts the choice to
//! fingers of nominal offset at most `2^g(x)` where
//! `g(x) = ⌈log2((x + 2·d0) / 3)⌉`, `x` being the clockwise distance to the
//! rendezvous key and `d0` the average inter-node gap. On evenly spaced
//! rings this caps every node at two children while keeping the route
//! length within `log2 n` hops (§3.5).
//!
//! Both schemes are exposed in two forms: as *next-hop* decisions over a
//! node's [`FingerTable`] (used by the live protocol) and as pure functions
//! over identifiers (used by the static-ring analysis in [`crate::ring`]).

use crate::finger::{FingerTable, NodeRef};
use crate::id::{ceil_log2_ratio, Id, IdSpace};

/// Which routing scheme constructs the DAT tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, serde::Serialize, serde::Deserialize)]
pub enum RoutingScheme {
    /// Ordinary greedy finger routing — builds the *basic DAT* (§3.2).
    Greedy,
    /// Finger-limited balanced routing — builds the *balanced DAT* (§3.4).
    Balanced,
}

impl RoutingScheme {
    /// Short human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RoutingScheme::Greedy => "basic",
            RoutingScheme::Balanced => "balanced",
        }
    }
}

/// Outcome of a parent/next-hop computation toward a rendezvous key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParentDecision {
    /// This node owns the key — it is the DAT root and has no parent.
    IAmRoot,
    /// Forward to / aggregate into this node.
    Parent(NodeRef),
    /// The finger table is too empty to decide (node still joining).
    Unknown,
}

impl ParentDecision {
    /// The parent node, if any.
    pub fn parent(self) -> Option<NodeRef> {
        match self {
            ParentDecision::Parent(p) => Some(p),
            _ => None,
        }
    }
}

/// The finger-limiting function `g(x) = ⌈log2((x + 2·d0)/3)⌉` of §3.4,
/// computed with exact integer arithmetic: the minimal `g ≥ 0` such that
/// `3·2^g ≥ x + 2·d0`.
///
/// `d0` is the (average) distance between adjacent nodes; on a ring of `n`
/// evenly spaced nodes `d0 = 2^b / n`. Returns the *maximum admissible
/// nominal finger offset* exponent: fingers with offset `2^(j-1) ≤ 2^g(x)`
/// may be used as the parent finger.
pub fn finger_limit(x: u64, d0: u64) -> u32 {
    let num = x as u128 + 2 * d0.max(1) as u128;
    ceil_log2_ratio(num, 3)
}

/// Estimate the average inter-node gap `d0` from purely local state: the
/// gaps seen along the successor list and toward the predecessor. Falls
/// back to the whole ring (single-node view) when nothing is known.
///
/// The live protocol cannot evaluate `d0 = 2^b / n` exactly because `n` is
/// global; the estimate converges quickly because consistent hashing spaces
/// gaps within an `O(log n)` factor of the mean, and identifier probing
/// (§3.5) tightens that to a constant factor.
pub fn estimate_d0(table: &FingerTable) -> u64 {
    let space = table.space();
    let me = table.me().id;
    let mut gaps: Vec<u64> = Vec::with_capacity(table.successor_list().len() + 1);
    let mut prev = me;
    for s in table.successor_list() {
        let d = space.dist_cw(prev, s.id);
        if d > 0 {
            gaps.push(d);
        }
        prev = s.id;
    }
    if let Some(p) = table.predecessor() {
        let d = space.dist_cw(p.id, me);
        if d > 0 {
            gaps.push(d);
        }
    }
    if gaps.is_empty() {
        // Single-node ring: the node owns the entire space.
        return u64::try_from(space.size().min(u64::MAX as u128 + 1) - 1).unwrap_or(u64::MAX);
    }
    let sum: u128 = gaps.iter().map(|&g| g as u128).sum();
    (sum / gaps.len() as u128).max(1) as u64
}

/// Ring size implied by an average inter-node gap `d0`: `2^b / d0`.
pub fn ring_size_for_d0(space: IdSpace, d0: u64) -> u64 {
    u64::try_from(space.size() / d0.max(1) as u128)
        .unwrap_or(u64::MAX)
        .max(1)
}

/// Estimate the total number of ring nodes from purely local state (the
/// successor-list / predecessor gap density, see [`estimate_d0`]).
///
/// This is the `expected` side of the completeness accounting: the root
/// compares the number of nodes that actually contributed to a report
/// against this estimate to quantify how much of the grid the report
/// covers. On an evenly spaced (probed) ring the estimate is exact; on
/// random rings it is within the usual `O(log n)` consistent-hashing
/// spread.
pub fn estimate_ring_size(table: &FingerTable) -> u64 {
    ring_size_for_d0(table.space(), estimate_d0(table))
}

/// Greedy (basic DAT) parent of `table.me()` for rendezvous key `key`.
///
/// Implements the implicit-tree rule of §3.2: the parent is the next hop of
/// ordinary Chord finger routing toward `key`.
pub fn parent_basic(table: &FingerTable, key: Id) -> ParentDecision {
    let space = table.space();
    let me = table.me().id;
    // Am I the root? I own the key iff key ∈ (pred, me].
    if let Some(p) = table.predecessor() {
        if space.in_open_closed(key, p.id, me) {
            return ParentDecision::IAmRoot;
        }
    }
    let Some(succ) = table.successor() else {
        // A node alone on the ring is trivially the root of every tree.
        return if table.predecessor().is_none() {
            ParentDecision::IAmRoot
        } else {
            ParentDecision::Unknown
        };
    };
    // Final hop: key ∈ (me, succ] means the successor owns the key.
    if space.in_open_closed(key, me, succ.id) {
        return ParentDecision::Parent(succ);
    }
    match table.closest_preceding(key) {
        Some(n) => ParentDecision::Parent(n),
        // Nothing strictly inside (me, key): forward to the successor, which
        // is still progress (it is ∈ (me, key] here).
        None => ParentDecision::Parent(succ),
    }
}

/// Balanced (balanced DAT) parent of `table.me()` for key `key` using the
/// inter-node gap estimate `d0` (paper Algorithm 1).
///
/// Only fingers of nominal offset `2^(j-1) ≤ 2^g(x)` are admissible; among
/// them the closest preceding one is chosen. The immediate successor
/// (offset 1) is always admissible, so the scheme never stalls; every hop
/// strictly decreases the clockwise distance to `key`, so routes stay
/// loop-free.
pub fn parent_balanced(table: &FingerTable, key: Id, d0: u64) -> ParentDecision {
    let space = table.space();
    let me = table.me().id;
    if let Some(p) = table.predecessor() {
        if space.in_open_closed(key, p.id, me) {
            return ParentDecision::IAmRoot;
        }
    }
    let Some(succ) = table.successor() else {
        return if table.predecessor().is_none() {
            ParentDecision::IAmRoot
        } else {
            ParentDecision::Unknown
        };
    };
    if space.in_open_closed(key, me, succ.id) {
        return ParentDecision::Parent(succ);
    }
    let x = space.dist_cw(me, key);
    let g = finger_limit(x, d0);
    let limit: u128 = 1u128 << g.min(127);

    let mut best: Option<NodeRef> = None;
    let mut best_dist = u64::MAX;
    for (j, fi) in table.iter() {
        if (space.finger_offset(j) as u128) > limit {
            continue;
        }
        let n = fi.node;
        if space.in_open_open(n.id, me, key) || n.id == key {
            let d = space.dist_cw(n.id, key);
            if d < best_dist {
                best_dist = d;
                best = Some(n);
            }
        }
    }
    match best {
        Some(n) => ParentDecision::Parent(n),
        // Successor (offset 1) is admissible and ∈ (me, key] whenever the
        // final-hop test above failed, so this only triggers on a degraded
        // table whose successor slot is empty but other fingers exist.
        None => ParentDecision::Parent(succ),
    }
}

/// Dispatch on [`RoutingScheme`].
pub fn parent_for(scheme: RoutingScheme, table: &FingerTable, key: Id, d0: u64) -> ParentDecision {
    match scheme {
        RoutingScheme::Greedy => parent_basic(table, key),
        RoutingScheme::Balanced => parent_balanced(table, key, d0),
    }
}

/// Pure-identifier greedy parent on an *ideal* ring — one where every node
/// has perfect fingers. `succ_of(x)` must return the first live node id at
/// or after `x` (clockwise). Used by the static-ring analysis.
///
/// Returns `None` when `me` owns `key` (it is the root).
pub fn ideal_parent_basic(
    space: IdSpace,
    me: Id,
    key: Id,
    succ_of: &dyn Fn(Id) -> Id,
) -> Option<Id> {
    let root = succ_of(key);
    if me == root {
        return None;
    }
    // Closest preceding finger: scan j = b..1 for the first finger in (me, key].
    for j in (1..=space.bits()).rev() {
        let f = succ_of(space.finger_start(me, j));
        if f != me && (space.in_open_open(f, me, key) || f == key) {
            return Some(f);
        }
    }
    Some(root)
}

/// Pure-identifier balanced parent on an ideal ring (see
/// [`ideal_parent_basic`]); `d0` as in [`parent_balanced`].
pub fn ideal_parent_balanced(
    space: IdSpace,
    me: Id,
    key: Id,
    d0: u64,
    succ_of: &dyn Fn(Id) -> Id,
) -> Option<Id> {
    let root = succ_of(key);
    if me == root {
        return None;
    }
    let x = space.dist_cw(me, key);
    let g = finger_limit(x, d0);
    let limit: u128 = 1u128 << g.min(127);
    for j in (1..=space.bits()).rev() {
        if (space.finger_offset(j) as u128) > limit {
            continue;
        }
        let f = succ_of(space.finger_start(me, j));
        if f != me && (space.in_open_open(f, me, key) || f == key) {
            return Some(f);
        }
    }
    Some(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finger::{FingerInfo, NodeAddr};

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id))
    }

    /// Finger table of node `me` on the full 16-node, 4-bit ring of Fig. 2.
    fn full_ring_table(me: u64) -> FingerTable {
        let space = IdSpace::new(4);
        let mut t = FingerTable::new(space, nr(me), 3);
        t.set_predecessor(Some(nr((me + 15) % 16)));
        for j in 1..=4u8 {
            let target = space.finger_start(Id(me), j);
            t.set_finger(j, FingerInfo::bare(nr(target.raw())));
        }
        t.set_successor_list(vec![
            nr((me + 1) % 16),
            nr((me + 2) % 16),
            nr((me + 3) % 16),
        ]);
        t
    }

    #[test]
    fn finger_limit_paper_example() {
        // N8 toward N0 on the 16-node ring: x = 8, d0 = 1 → g = 2.
        assert_eq!(finger_limit(8, 1), 2);
        assert_eq!(finger_limit(1, 1), 0);
        assert_eq!(finger_limit(2, 1), 1);
        assert_eq!(finger_limit(15, 1), 3);
    }

    #[test]
    fn finger_limit_scales_with_d0() {
        // Shrinking the space by d0 (paper: g(x) = ⌈log2((x + 2 d0)/3)⌉).
        assert_eq!(finger_limit(8 * 16, 16), finger_limit(8, 1) + 4);
        assert_eq!(finger_limit(0, 4), ceil_log2_ratio(8, 3)); // = 2
    }

    #[test]
    fn basic_parent_matches_fig2() {
        // Fig. 2: root N0; N8, N12, N14, N15 are children of N0.
        for me in [8u64, 12, 14, 15] {
            let t = full_ring_table(me);
            assert_eq!(
                parent_basic(&t, Id(0)),
                ParentDecision::Parent(nr(0)),
                "N{me}"
            );
        }
        // N1's route is <N1, N9, N13, N15, N0>: parent of N1 is N9.
        let t = full_ring_table(1);
        assert_eq!(parent_basic(&t, Id(0)), ParentDecision::Parent(nr(9)));
        // Root recognises itself.
        let t = full_ring_table(0);
        assert_eq!(parent_basic(&t, Id(0)), ParentDecision::IAmRoot);
    }

    #[test]
    fn balanced_parent_matches_fig5() {
        // Fig. 5: with balanced routing N8's parent becomes N12 (the paper's
        // text says "N1", a typo for N12 — see DESIGN.md).
        let t = full_ring_table(8);
        assert_eq!(
            parent_balanced(&t, Id(0), 1),
            ParentDecision::Parent(nr(12))
        );
        // All other nodes keep their Fig. 2 parents; spot-check N12 and N14.
        let t = full_ring_table(12);
        assert_eq!(
            parent_balanced(&t, Id(0), 1),
            ParentDecision::Parent(nr(14))
        );
        let t = full_ring_table(14);
        assert_eq!(parent_balanced(&t, Id(0), 1), ParentDecision::Parent(nr(0)));
    }

    #[test]
    fn balanced_whole_16_ring_branching_at_most_2() {
        let mut children = vec![0usize; 16];
        for me in 1..16u64 {
            let t = full_ring_table(me);
            match parent_balanced(&t, Id(0), 1) {
                ParentDecision::Parent(p) => children[p.id.raw() as usize] += 1,
                other => panic!("node {me}: unexpected {other:?}"),
            }
        }
        assert_eq!(children.iter().sum::<usize>(), 15);
        assert!(children.iter().all(|&c| c <= 2), "{children:?}");
    }

    #[test]
    fn singleton_ring_is_root() {
        let t = FingerTable::new(IdSpace::new(8), nr(42), 3);
        assert_eq!(parent_basic(&t, Id(7)), ParentDecision::IAmRoot);
        assert_eq!(parent_balanced(&t, Id(7), 1), ParentDecision::IAmRoot);
    }

    #[test]
    fn final_hop_goes_to_successor() {
        let space = IdSpace::new(8);
        let mut t = FingerTable::new(space, nr(10), 3);
        t.set_predecessor(Some(nr(5)));
        t.set_successor(nr(20));
        t.set_finger(5, FingerInfo::bare(nr(30)));
        // Key 15 ∈ (10, 20]: successor 20 is the root.
        assert_eq!(parent_basic(&t, Id(15)), ParentDecision::Parent(nr(20)));
        assert_eq!(
            parent_balanced(&t, Id(15), 1),
            ParentDecision::Parent(nr(20))
        );
        // Key 8 ∈ (5, 10]: we are the root.
        assert_eq!(parent_basic(&t, Id(8)), ParentDecision::IAmRoot);
    }

    #[test]
    fn ideal_helpers_agree_with_table_versions_on_even_ring() {
        let space = IdSpace::new(4);
        let succ_of = |x: Id| x; // every id is a node on the full ring
        for me in 0..16u64 {
            let t = full_ring_table(me);
            let via_table = parent_basic(&t, Id(0)).parent().map(|p| p.id);
            let via_ideal = ideal_parent_basic(space, Id(me), Id(0), &succ_of);
            assert_eq!(via_table, via_ideal, "basic N{me}");
            let via_table = parent_balanced(&t, Id(0), 1).parent().map(|p| p.id);
            let via_ideal = ideal_parent_balanced(space, Id(me), Id(0), 1, &succ_of);
            assert_eq!(via_table, via_ideal, "balanced N{me}");
        }
    }

    #[test]
    fn estimate_d0_from_neighbors() {
        let t = full_ring_table(8);
        assert_eq!(estimate_d0(&t), 1);
        // Lonely node: the whole space.
        let t = FingerTable::new(IdSpace::new(8), nr(0), 3);
        assert_eq!(estimate_d0(&t), 255);
    }

    #[test]
    fn ring_size_from_neighbors() {
        // Even 16-node ring: d0 = 1 over a 4-bit space → 16 nodes.
        let t = full_ring_table(8);
        assert_eq!(estimate_ring_size(&t), 16);
        // Lonely node: one occupant.
        let t = FingerTable::new(IdSpace::new(8), nr(0), 3);
        assert_eq!(estimate_ring_size(&t), 1);
        assert_eq!(ring_size_for_d0(IdSpace::new(32), 1 << 24), 256);
    }

    #[test]
    fn progress_invariant_balanced() {
        // Every balanced hop strictly decreases distance to the key.
        let space = IdSpace::new(4);
        for me in 1..16u64 {
            let t = full_ring_table(me);
            if let ParentDecision::Parent(p) = parent_balanced(&t, Id(0), 1) {
                assert!(
                    space.dist_cw(p.id, Id(0)) < space.dist_cw(Id(me), Id(0)),
                    "hop {me} -> {} does not progress",
                    p.id
                );
            }
        }
    }
}
