//! Identifier-probing support (Adler et al., STOC'03; paper §3.5).
//!
//! With plain random identifiers the ratio between the largest and smallest
//! inter-node gap grows as `O(log n)`, which makes even the balanced DAT's
//! branching factor grow logarithmically (paper Fig. 7). Probing fixes the
//! distribution at join time: the joining node contacts the successor of a
//! random identifier, that node inspects itself plus its `O(log n)` fingers
//! and designates the midpoint of the largest gap it can see. This module
//! holds the shared gap-selection logic and ring-quality statistics used by
//! both the live protocol ([`crate::node::ChordNode`]) and the static ring
//! builder ([`crate::ring::StaticRing`]).

use crate::id::{Id, IdSpace};

/// A candidate gap `(start, end]` owned by node `end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapCandidate {
    /// Predecessor of the owning node — the gap starts just after it.
    pub start: Id,
    /// The owning node — the gap ends at it (inclusive).
    pub end: Id,
}

impl GapCandidate {
    /// Gap length in identifier units.
    pub fn len(&self, space: IdSpace) -> u64 {
        space.dist_cw(self.start, self.end)
    }

    /// `true` when the gap has zero length (adjacent equal ids — cannot be
    /// split).
    pub fn is_empty(&self, space: IdSpace) -> bool {
        self.len(space) == 0
    }

    /// The identifier a joiner should adopt to split this gap evenly.
    pub fn split_point(&self, space: IdSpace) -> Id {
        space.add(self.start, self.len(space) / 2)
    }
}

/// Pick the largest gap among `candidates`; ties are broken toward the
/// earliest candidate, so callers control priority by ordering (the live
/// protocol lists the probed node first, then its fingers — matching the
/// paper's "probes O(log n) neighbors" description).
pub fn select_largest_gap(space: IdSpace, candidates: &[GapCandidate]) -> Option<GapCandidate> {
    candidates
        .iter()
        .copied()
        .max_by_key(|c| (c.len(space), std::cmp::Reverse(c.start)))
        .filter(|c| !c.is_empty(space))
}

/// Summary statistics of the gap distribution of a sorted id set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GapStats {
    /// Smallest inter-node gap.
    pub min: u64,
    /// Largest inter-node gap.
    pub max: u64,
    /// Mean gap (`2^b / n`).
    pub mean: f64,
    /// max / min, the quantity Adler et al. bound by a constant.
    pub ratio: f64,
}

/// Compute [`GapStats`] for sorted, deduplicated `ids`.
pub fn gap_stats(space: IdSpace, ids: &[Id]) -> GapStats {
    assert!(!ids.is_empty());
    if ids.len() == 1 {
        let whole = u64::try_from(space.size() - 1).unwrap_or(u64::MAX);
        return GapStats {
            min: whole,
            max: whole,
            mean: whole as f64,
            ratio: 1.0,
        };
    }
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut sum = 0u128;
    for (i, &id) in ids.iter().enumerate() {
        let prev = if i == 0 {
            ids[ids.len() - 1]
        } else {
            ids[i - 1]
        };
        let g = space.dist_cw(prev, id);
        min = min.min(g);
        max = max.max(g);
        sum += g as u128;
    }
    GapStats {
        min,
        max,
        mean: sum as f64 / ids.len() as f64,
        ratio: max as f64 / min.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{IdPolicy, StaticRing};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn split_point_is_midpoint() {
        let s = IdSpace::new(8);
        let g = GapCandidate {
            start: Id(10),
            end: Id(30),
        };
        assert_eq!(g.len(s), 20);
        assert_eq!(g.split_point(s), Id(20));
        // Wrapping gap.
        let g = GapCandidate {
            start: Id(250),
            end: Id(6),
        };
        assert_eq!(g.len(s), 12);
        assert_eq!(g.split_point(s), Id(0));
    }

    #[test]
    fn largest_gap_selection() {
        let s = IdSpace::new(8);
        let cands = [
            GapCandidate {
                start: Id(0),
                end: Id(10),
            },
            GapCandidate {
                start: Id(10),
                end: Id(40),
            },
            GapCandidate {
                start: Id(40),
                end: Id(50),
            },
        ];
        assert_eq!(select_largest_gap(s, &cands).unwrap().end, Id(40));
    }

    #[test]
    fn empty_gaps_filtered() {
        let s = IdSpace::new(8);
        let cands = [GapCandidate {
            start: Id(5),
            end: Id(5),
        }];
        assert!(select_largest_gap(s, &cands).is_none());
        assert!(select_largest_gap(s, &[]).is_none());
    }

    #[test]
    fn stats_on_even_ring() {
        let s = IdSpace::new(6);
        let ids: Vec<Id> = (0..16u64).map(|i| Id(i * 4)).collect();
        let st = gap_stats(s, &ids);
        assert_eq!(st.min, 4);
        assert_eq!(st.max, 4);
        assert_eq!(st.ratio, 1.0);
        assert!((st.mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stats_singleton() {
        let s = IdSpace::new(8);
        let st = gap_stats(s, &[Id(7)]);
        assert_eq!(st.max, 255);
        assert_eq!(st.ratio, 1.0);
    }

    #[test]
    fn probing_beats_random_on_ratio_many_seeds() {
        let space = IdSpace::new(32);
        let mut probed_worst = 0.0f64;
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let ring = StaticRing::build(space, 256, IdPolicy::Probed, &mut rng);
            let st = gap_stats(space, ring.ids());
            probed_worst = probed_worst.max(st.ratio);
        }
        // Adler et al.: constant-factor bound. Our probe uses b fingers,
        // giving ratios well under 8 in practice.
        assert!(probed_worst <= 8.0, "worst probed ratio {probed_worst}");
    }
}
