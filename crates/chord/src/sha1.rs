//! A from-scratch SHA-1 implementation (FIPS 180-1).
//!
//! Chord and the DAT paper derive rendezvous keys as "the SHA1 hash value of
//! the attribute name" (§2.3) and node identifiers as hashes of network
//! addresses. We implement SHA-1 in-tree rather than pulling a crypto
//! dependency: the overlay needs it only for *key derivation* — uniform
//! spreading over the identifier space — not for any security property, so
//! SHA-1's known collision weaknesses are irrelevant here.

/// Output size of SHA-1 in bytes.
pub const DIGEST_LEN: usize = 20;

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finish the hash and return the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual length append (update would change self.len, harmless but
        // we bypass it for clarity).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Hash arbitrary bytes into an identifier of the given space: the top 64
/// bits of SHA-1(data), truncated to the space's width. This is how
/// rendezvous keys ("the SHA1 hash value of the attribute name", §2.3) and
/// address-derived node ids are produced.
pub fn hash_to_id(space: crate::IdSpace, data: &[u8]) -> crate::Id {
    let d = sha1(data);
    let hi = u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
    // Use the top bits so small spaces still see the most-mixed output.
    space.id(hi >> (64 - space.bits()) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_vector() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn long_repeated_vector() {
        // FIPS 180-1 vector: one million 'a'.
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 5000, 9999, 10_000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths straddling the 55/56-byte padding boundary.
        for len in 50..70usize {
            let data = vec![0xAB; len];
            let d = sha1(&data);
            // Re-hash via awkward 1-byte streaming and compare.
            let mut h = Sha1::new();
            for b in &data {
                h.update(core::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d, "len {len}");
        }
    }

    #[test]
    fn hash_to_id_respects_space() {
        let s4 = crate::IdSpace::new(4);
        for name in ["cpu-usage", "memory-size", "disk-free"] {
            assert!(hash_to_id(s4, name.as_bytes()).raw() < 16);
        }
        let s64 = crate::IdSpace::new(64);
        let a = hash_to_id(s64, b"cpu-usage");
        let b = hash_to_id(s64, b"cpu-usagf");
        assert_ne!(a, b);
    }
}
