//! Chord wire messages and the sans-io input/output vocabulary.
//!
//! The protocol core ([`crate::node::ChordNode`]) is a pure state machine:
//! it consumes [`Input`]s and emits [`Output`]s. Hosts — the discrete-event
//! simulator (`dat-sim`) or the UDP reactor (`dat-rpc`) — interpret the
//! outputs. This mirrors the paper's prototype, where the same Chord/DAT
//! layers run over either an RPC manager or a simulation engine (§4).

use crate::finger::{NodeAddr, NodeRef};
use crate::id::Id;
use crate::payload::Payload;

/// Request identifiers are locally unique per issuing node; replies echo
/// them so the issuer can match its pending table.
pub type ReqId = u64;

/// Messages exchanged between Chord layers.
#[derive(Clone, Debug, PartialEq)]
pub enum ChordMsg {
    /// Find the owner (successor) of `key`. Forwarded recursively along
    /// greedy finger routes; the owner replies to `origin` directly.
    FindSuccessor {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The key being resolved / routed to.
        key: Id,
        /// The node that initiated the request and receives the reply/upcall.
        origin: NodeRef,
        /// Hops traversed so far.
        hops: u32,
    },
    /// Reply to [`ChordMsg::FindSuccessor`], sent by the key's owner. The
    /// owner includes its own neighborhood so the issuer can populate FOF
    /// state in one round trip.
    FoundSuccessor {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The node owning the requested key.
        owner: NodeRef,
        /// The owner's predecessor (FOF data).
        owner_pred: Option<NodeRef>,
        /// The owner's first successor (FOF data).
        owner_succ: Option<NodeRef>,
        /// Hops traversed so far.
        hops: u32,
    },
    /// Ask a node for its predecessor and successor list (stabilization and
    /// FOF refresh).
    GetNeighbors {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The requesting node (reply target).
        sender: NodeRef,
    },
    /// Reply to [`ChordMsg::GetNeighbors`].
    Neighbors {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The responding node.
        me: NodeRef,
        /// The responder's / leaver's predecessor.
        pred: Option<NodeRef>,
        /// Successor list, nearest first.
        succ_list: Vec<NodeRef>,
    },
    /// Chord `notify`: the sender believes it may be the receiver's
    /// predecessor.
    Notify {
        /// The node claiming to be a predecessor candidate.
        sender: NodeRef,
    },
    /// Liveness probe.
    Ping {
        /// Request id echoed by the pong.
        req: ReqId,
        /// The pinging node (reply target).
        sender: NodeRef,
    },
    /// Liveness reply.
    Pong {
        /// Request id of the answered ping.
        req: ReqId,
        /// The responding node.
        sender: NodeRef,
    },
    /// Identifier-probing join (§3.5): ask the receiver to designate an
    /// identifier by splitting the largest gap among itself and its fingers.
    ProbeJoin {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The joining node (reply target).
        origin: NodeRef,
    },
    /// Reply to [`ChordMsg::ProbeJoin`] carrying the designated identifier.
    ProbeJoinReply {
        /// Request id of the probe.
        req: ReqId,
        /// Identifier designated by gap splitting.
        designated: Id,
    },
    /// Graceful departure: sent to the predecessor with the leaver's
    /// successor list so it can bridge the gap immediately.
    LeaveToPred {
        /// The departing node.
        leaver: NodeRef,
        /// Successor list, nearest first.
        succ_list: Vec<NodeRef>,
    },
    /// Graceful departure: sent to the successor with the leaver's
    /// predecessor so it can re-link immediately.
    LeaveToSucc {
        /// The departing node.
        leaver: NodeRef,
        /// The responder's / leaver's predecessor.
        pred: Option<NodeRef>,
    },
    /// Application payload routed toward the owner of `key`; the owner's
    /// host receives [`Upcall::Routed`].
    Route {
        /// The key being resolved / routed to.
        key: Id,
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
        /// The node that initiated the request and receives the reply/upcall.
        origin: NodeRef,
        /// Hops traversed so far.
        hops: u32,
    },
    /// Direct (single-hop) application-layer message. The Chord layer
    /// delivers it to the embedding layer as [`Upcall::AppMessage`] without
    /// interpreting the payload — this is how DAT aggregation updates travel
    /// from child to parent.
    App {
        /// Application protocol discriminator (e.g. `dat_core::DAT_PROTO`).
        proto: u8,
        /// The sending node.
        from: NodeRef,
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
    },
    /// Ring broadcast (El-Ansary style, the `broadcast` primitive of §4):
    /// the receiver owns responsibility for `(receiver, limit)` and
    /// re-broadcasts to its fingers inside that range.
    Broadcast {
        /// End of the identifier range this branch must cover (exclusive).
        limit: Id,
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
        /// The node that initiated the request and receives the reply/upcall.
        origin: NodeRef,
        /// Broadcast tree depth so far (diagnostics).
        depth: u32,
    },
    /// Ask a node for its observability snapshot. The receiving host
    /// serves it via [`Upcall::StatsRequested`] (a protocol stack replies
    /// with its merged Prometheus text dump); a host that does not serve
    /// stats simply never answers.
    StatsRequest {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The requesting node (reply target).
        sender: NodeRef,
    },
    /// Reply to [`ChordMsg::StatsRequest`] carrying a Prometheus-style
    /// text exposition.
    StatsReply {
        /// Request id of the answered request.
        req: ReqId,
        /// The responding node.
        sender: NodeRef,
        /// UTF-8 metrics text (Prometheus exposition format).
        text: Payload,
    },
}

impl ChordMsg {
    /// Short message-type label for metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ChordMsg::FindSuccessor { .. } => "find_successor",
            ChordMsg::FoundSuccessor { .. } => "found_successor",
            ChordMsg::GetNeighbors { .. } => "get_neighbors",
            ChordMsg::Neighbors { .. } => "neighbors",
            ChordMsg::Notify { .. } => "notify",
            ChordMsg::Ping { .. } => "ping",
            ChordMsg::Pong { .. } => "pong",
            ChordMsg::ProbeJoin { .. } => "probe_join",
            ChordMsg::ProbeJoinReply { .. } => "probe_join_reply",
            ChordMsg::LeaveToPred { .. } => "leave_to_pred",
            ChordMsg::LeaveToSucc { .. } => "leave_to_succ",
            ChordMsg::Route { .. } => "route",
            ChordMsg::App { .. } => "app",
            ChordMsg::Broadcast { .. } => "broadcast",
            ChordMsg::StatsRequest { .. } => "stats_request",
            ChordMsg::StatsReply { .. } => "stats_reply",
        }
    }

    /// `true` for messages that belong to ring maintenance rather than
    /// application traffic — used by the churn-overhead experiment.
    pub fn is_maintenance(&self) -> bool {
        !matches!(
            self,
            ChordMsg::Route { .. } | ChordMsg::Broadcast { .. } | ChordMsg::App { .. }
        )
    }
}

/// Timers a node may arm. Hosts must deliver [`Input::Timer`] with the same
/// kind after the requested delay (timers are one-shot; the node re-arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Periodic successor-list stabilization.
    Stabilize,
    /// Periodic finger fixing (round-robin over finger indices).
    FixFingers,
    /// Periodic predecessor liveness check.
    CheckPredecessor,
    /// Per-request timeout for the pending table.
    ReqTimeout(ReqId),
    /// Timer owned by the layer above Chord (the DAT layer), with its own
    /// sub-kind.
    App(u64),
}

/// Everything a protocol node can ask its host to do.
#[derive(Clone, Debug, PartialEq)]
pub enum Output {
    /// Send `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeRef,
        /// The message to deliver.
        msg: ChordMsg,
    },
    /// Arm a one-shot timer for `delay_ms` virtual milliseconds.
    SetTimer {
        /// Which timer to arm.
        kind: TimerKind,
        /// Delay in (virtual) milliseconds.
        delay_ms: u64,
    },
    /// Notify the layer above of a protocol event.
    Upcall(Upcall),
}

/// Events surfaced to the embedding layer (the DAT node or the host).
#[derive(Clone, Debug, PartialEq)]
pub enum Upcall {
    /// The node completed its join (or created the ring) and is active.
    /// Carries the final identifier — identifier probing may have replaced
    /// the initially drawn one.
    Joined {
        /// The identifier finally adopted.
        id: Id,
    },
    /// A [`ChordMsg::FindSuccessor`] lookup issued via
    /// [`crate::node::ChordNode::lookup`] finished.
    LookupDone {
        /// Request id echoed by the reply.
        req: ReqId,
        /// The node owning the requested key.
        owner: NodeRef,
        /// The owner's predecessor (FOF data).
        owner_pred: Option<NodeRef>,
        /// Hops traversed so far.
        hops: u32,
    },
    /// A lookup timed out without an answer.
    LookupFailed {
        /// Request id of the failed lookup.
        req: ReqId,
    },
    /// Joining the ring failed after exhausting retries.
    JoinFailed,
    /// An application payload routed to a key we own arrived.
    Routed {
        /// The key being resolved / routed to.
        key: Id,
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
        /// The node that initiated the request and receives the reply/upcall.
        origin: NodeRef,
        /// Hops traversed so far.
        hops: u32,
    },
    /// A broadcast payload arrived (each node receives it exactly once per
    /// broadcast when the ring is stable).
    Broadcast {
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
        /// The node that initiated the request and receives the reply/upcall.
        origin: NodeRef,
        /// Broadcast tree depth.
        depth: u32,
        /// The range `(me, limit)` this node is responsible for forwarding
        /// into.
        limit: Id,
    },
    /// A direct application-layer message arrived (see [`ChordMsg::App`]).
    AppMessage {
        /// Application protocol discriminator.
        proto: u8,
        /// The sending node.
        from: NodeRef,
        /// Opaque application payload (shared buffer; clones are cheap).
        payload: Payload,
    },
    /// The local neighborhood (successor/predecessor) changed; upper layers
    /// may need to recompute DAT parents.
    NeighborhoodChanged,
    /// An application-owned timer fired (see [`TimerKind::App`]).
    AppTimer(u64),
    /// A [`ChordMsg::StatsRequest`] arrived; the host decides what (if
    /// anything) to reply via [`crate::node::ChordNode::reply_stats`].
    StatsRequested {
        /// Request id to echo in the reply.
        req: ReqId,
        /// The requesting node (reply target).
        from: NodeRef,
    },
    /// A [`ChordMsg::StatsReply`] arrived for a stats request this node
    /// issued via [`crate::node::ChordNode::request_stats`].
    StatsReceived {
        /// Request id of the answered request.
        req: ReqId,
        /// The responding node.
        from: NodeRef,
        /// UTF-8 metrics text (Prometheus exposition format).
        text: Payload,
    },
}

/// Inputs driven into the node by its host.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// A timer previously armed with [`Output::SetTimer`] fired.
    Timer(TimerKind),
    /// A message arrived from the network.
    Message {
        /// Transport endpoint the message came from.
        from: NodeAddr,
        /// The delivered message.
        msg: ChordMsg,
    },
    /// The transport received a frame that failed to decode (bad
    /// checksum, truncation, unknown tag …). The frame carried no trusted
    /// content, so only its provenance and the error kind are surfaced;
    /// hosts use this to score and eventually quarantine poisoned peers.
    BadFrame {
        /// Transport endpoint the frame came from, when the transport can
        /// attribute it (UDP keeps a socket→address reverse map; an
        /// unattributable datagram reports `None`).
        from: Option<NodeAddr>,
        /// Why the frame was rejected.
        error: crate::wire::CodecError,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_classification() {
        let route = ChordMsg::Route {
            key: Id(1),
            payload: vec![].into(),
            origin: NodeRef::new(Id(0), NodeAddr(0)),
            hops: 0,
        };
        assert!(!route.is_maintenance());
        assert_eq!(route.kind(), "route");
        let ping = ChordMsg::Ping {
            req: 1,
            sender: NodeRef::new(Id(0), NodeAddr(0)),
        };
        assert!(ping.is_maintenance());
    }
}
