//! Shared, cheaply-cloneable message payloads.
//!
//! Application payloads travel through several fan-out points — broadcast
//! re-transmission to every covering finger, DAT multicast to a child set,
//! duplication faults in the simulator — and each used to deep-copy its
//! `Vec<u8>`. [`Payload`] wraps the bytes in an `Arc<[u8]>` plus a window,
//! so cloning is a reference-count bump and sub-slicing (e.g. stripping a
//! protocol tag byte) shares the same allocation. The type dereferences to
//! `&[u8]`, so decoding code is unaffected; producers keep passing
//! `Vec<u8>`s through `impl Into<Payload>` APIs.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// An immutable byte payload backed by a shared, atomically reference
/// counted buffer. Cloning never copies the bytes.
#[derive(Clone)]
pub struct Payload {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// An empty payload (no allocation is shared; still cheap).
    pub fn empty() -> Self {
        Payload {
            buf: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the visible window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-window relative to this payload's window. The returned
    /// payload shares the same backing buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds (mirrors slice indexing).
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "payload slice {}..{} out of bounds (len {})",
            range.start,
            range.end,
            self.len()
        );
        Payload {
            buf: Arc::clone(&self.buf),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the visible bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Payload {
            buf: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload {
            buf: Arc::from(v),
            start: 0,
            end: v.len(),
        }
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Self {
        Payload::from(&v[..])
    }
}

impl From<&str> for Payload {
    fn from(v: &str) -> Self {
        Payload::from(v.as_bytes())
    }
}

impl core::fmt::Debug for Payload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Payload({:?})", self.as_slice())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_backing_buffer() {
        let p = Payload::from(vec![1u8, 2, 3, 4]);
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.buf, &q.buf));
        assert_eq!(p, q);
    }

    #[test]
    fn slice_is_zero_copy_and_windowed() {
        let p = Payload::from(vec![9u8, 1, 2, 3]);
        let body = p.slice(1..4);
        assert!(Arc::ptr_eq(&p.buf, &body.buf));
        assert_eq!(body, vec![1, 2, 3]);
        let inner = body.slice(1..3);
        assert_eq!(inner, [2u8, 3]);
        assert_eq!(inner.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Payload::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn equality_and_deref() {
        let p = Payload::from(&b"abc"[..]);
        assert_eq!(p, vec![b'a', b'b', b'c']);
        assert_eq!(&p[..2], b"ab");
        assert_eq!(p.first(), Some(&b'a'));
        assert!(Payload::empty().is_empty());
        assert_eq!(Payload::default().len(), 0);
    }
}
