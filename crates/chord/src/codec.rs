//! Wire codec for [`ChordMsg`] frames.
//!
//! The paper's prototype implements "a RPC manager module … at the
//! socket-level to send and receive UDP packets" (§4). Every frame carries
//! one [`ChordMsg`]: a magic byte, a format version, a message tag and
//! fixed-order little-endian fields, built on the [`crate::wire`]
//! primitives (and the same [`CodecError`] vocabulary) every protocol codec
//! in the workspace uses. Application payloads (already encoded by their
//! protocol's codec) ride opaquely inside `App`, `Route` and `Broadcast`
//! frames.
//!
//! The codec lives next to the message type so every host can reach it:
//! `dat-rpc` uses it to frame UDP datagrams, and the simulator's codec
//! parity mode round-trips each delivered message through it to prove that
//! zero-copy in-memory delivery and wire delivery agree byte for byte.

use crate::msg::ChordMsg;
use crate::wire::{crc32c, Reader, Writer};

pub use crate::wire::CodecError;

/// First byte of every valid frame.
pub const MAGIC: u8 = 0xD7;
/// Wire-format version. v2 appended the CRC32C trailer; v1 frames are
/// rejected as [`CodecError::BadVersion`].
pub const VERSION: u8 = 2;
/// Maximum accepted frame payload (defensive bound).
pub const MAX_FRAME: usize = 64 * 1024;
/// Bytes of CRC32C trailer at the end of every frame (little-endian,
/// computed over everything before it, magic and version included).
pub const CRC_TRAILER: usize = 4;
/// Shortest well-formed frame: magic + version + tag + trailer.
const MIN_FRAME: usize = 3 + CRC_TRAILER;

/// Encode one message into a frame payload.
pub fn encode(msg: &ChordMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(MAGIC).u8(VERSION);
    match msg {
        ChordMsg::FindSuccessor {
            req,
            key,
            origin,
            hops,
        } => {
            w.u8(1).u64(*req).id(*key).node_ref(*origin).u32(*hops);
        }
        ChordMsg::FoundSuccessor {
            req,
            owner,
            owner_pred,
            owner_succ,
            hops,
        } => {
            w.u8(2)
                .u64(*req)
                .node_ref(*owner)
                .opt_node_ref(*owner_pred)
                .opt_node_ref(*owner_succ)
                .u32(*hops);
        }
        ChordMsg::GetNeighbors { req, sender } => {
            w.u8(3).u64(*req).node_ref(*sender);
        }
        ChordMsg::Neighbors {
            req,
            me,
            pred,
            succ_list,
        } => {
            w.u8(4)
                .u64(*req)
                .node_ref(*me)
                .opt_node_ref(*pred)
                .node_list(succ_list);
        }
        ChordMsg::Notify { sender } => {
            w.u8(5).node_ref(*sender);
        }
        ChordMsg::Ping { req, sender } => {
            w.u8(6).u64(*req).node_ref(*sender);
        }
        ChordMsg::Pong { req, sender } => {
            w.u8(7).u64(*req).node_ref(*sender);
        }
        ChordMsg::ProbeJoin { req, origin } => {
            w.u8(8).u64(*req).node_ref(*origin);
        }
        ChordMsg::ProbeJoinReply { req, designated } => {
            w.u8(9).u64(*req).id(*designated);
        }
        ChordMsg::LeaveToPred { leaver, succ_list } => {
            w.u8(10).node_ref(*leaver).node_list(succ_list);
        }
        ChordMsg::LeaveToSucc { leaver, pred } => {
            w.u8(11).node_ref(*leaver).opt_node_ref(*pred);
        }
        ChordMsg::Route {
            key,
            payload,
            origin,
            hops,
        } => {
            w.u8(12)
                .id(*key)
                .bytes(payload)
                .node_ref(*origin)
                .u32(*hops);
        }
        ChordMsg::App {
            proto,
            from,
            payload,
        } => {
            w.u8(13).u8(*proto).node_ref(*from).bytes(payload);
        }
        ChordMsg::Broadcast {
            limit,
            payload,
            origin,
            depth,
        } => {
            w.u8(14)
                .id(*limit)
                .bytes(payload)
                .node_ref(*origin)
                .u32(*depth);
        }
        ChordMsg::StatsRequest { req, sender } => {
            w.u8(15).u64(*req).node_ref(*sender);
        }
        ChordMsg::StatsReply { req, sender, text } => {
            w.u8(16).u64(*req).node_ref(*sender).bytes(text);
        }
    }
    let mut frame = w.finish();
    let crc = crc32c(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Decode a frame payload into a message.
///
/// Order of defenses: size bound, magic, version (so probes and old-format
/// frames get their precise error), then the CRC32C trailer over the whole
/// body, and only then field parsing — a corrupted frame is rejected by
/// the checksum before any of its lengths or tags are believed.
pub fn decode(data: &[u8]) -> Result<ChordMsg, CodecError> {
    if data.len() > MAX_FRAME {
        return Err(CodecError::BadLength(data.len() as u64));
    }
    let mut r = Reader::new(data);
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let ver = r.u8()?;
    if ver != VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    if data.len() < MIN_FRAME {
        return Err(CodecError::Truncated);
    }
    let body = &data[..data.len() - CRC_TRAILER];
    let mut trailer = [0u8; CRC_TRAILER];
    trailer.copy_from_slice(&data[data.len() - CRC_TRAILER..]);
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32c(body);
    if stored != computed {
        return Err(CodecError::BadChecksum { computed, stored });
    }
    // Re-read the verified body past magic + version.
    let mut r = Reader::new(&body[2..]);
    let tag = r.u8()?;
    let msg = match tag {
        1 => ChordMsg::FindSuccessor {
            req: r.u64()?,
            key: r.id()?,
            origin: r.node_ref()?,
            hops: r.u32()?,
        },
        2 => ChordMsg::FoundSuccessor {
            req: r.u64()?,
            owner: r.node_ref()?,
            owner_pred: r.opt_node_ref()?,
            owner_succ: r.opt_node_ref()?,
            hops: r.u32()?,
        },
        3 => ChordMsg::GetNeighbors {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        4 => ChordMsg::Neighbors {
            req: r.u64()?,
            me: r.node_ref()?,
            pred: r.opt_node_ref()?,
            succ_list: r.node_list()?,
        },
        5 => ChordMsg::Notify {
            sender: r.node_ref()?,
        },
        6 => ChordMsg::Ping {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        7 => ChordMsg::Pong {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        8 => ChordMsg::ProbeJoin {
            req: r.u64()?,
            origin: r.node_ref()?,
        },
        9 => ChordMsg::ProbeJoinReply {
            req: r.u64()?,
            designated: r.id()?,
        },
        10 => ChordMsg::LeaveToPred {
            leaver: r.node_ref()?,
            succ_list: r.node_list()?,
        },
        11 => ChordMsg::LeaveToSucc {
            leaver: r.node_ref()?,
            pred: r.opt_node_ref()?,
        },
        12 => ChordMsg::Route {
            key: r.id()?,
            payload: r.bytes()?.into(),
            origin: r.node_ref()?,
            hops: r.u32()?,
        },
        13 => ChordMsg::App {
            proto: r.u8()?,
            from: r.node_ref()?,
            payload: r.bytes()?.into(),
        },
        14 => ChordMsg::Broadcast {
            limit: r.id()?,
            payload: r.bytes()?.into(),
            origin: r.node_ref()?,
            depth: r.u32()?,
        },
        15 => ChordMsg::StatsRequest {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        16 => ChordMsg::StatsReply {
            req: r.u64()?,
            sender: r.node_ref()?,
            text: r.bytes()?.into(),
        },
        t => return Err(CodecError::BadTag(t)),
    };
    r.expect_end()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Id, NodeAddr, NodeRef};

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id * 3))
    }

    fn all_messages() -> Vec<ChordMsg> {
        vec![
            ChordMsg::FindSuccessor {
                req: 1,
                key: Id(u64::MAX),
                origin: nr(2),
                hops: 3,
            },
            ChordMsg::FoundSuccessor {
                req: 4,
                owner: nr(5),
                owner_pred: Some(nr(6)),
                owner_succ: None,
                hops: 7,
            },
            ChordMsg::GetNeighbors {
                req: 8,
                sender: nr(9),
            },
            ChordMsg::Neighbors {
                req: 10,
                me: nr(11),
                pred: None,
                succ_list: vec![nr(12), nr(13), nr(14)],
            },
            ChordMsg::Notify { sender: nr(15) },
            ChordMsg::Ping {
                req: 16,
                sender: nr(17),
            },
            ChordMsg::Pong {
                req: 18,
                sender: nr(19),
            },
            ChordMsg::ProbeJoin {
                req: 20,
                origin: nr(21),
            },
            ChordMsg::ProbeJoinReply {
                req: 22,
                designated: Id(23),
            },
            ChordMsg::LeaveToPred {
                leaver: nr(24),
                succ_list: vec![],
            },
            ChordMsg::LeaveToSucc {
                leaver: nr(25),
                pred: Some(nr(26)),
            },
            ChordMsg::Route {
                key: Id(27),
                payload: vec![1, 2, 3, 4, 5].into(),
                origin: nr(28),
                hops: 29,
            },
            ChordMsg::App {
                proto: 1,
                from: nr(30),
                payload: vec![0; 1000].into(),
            },
            ChordMsg::Broadcast {
                limit: Id(31),
                payload: vec![9, 9].into(),
                origin: nr(32),
                depth: 33,
            },
            ChordMsg::StatsRequest {
                req: 34,
                sender: nr(35),
            },
            ChordMsg::StatsReply {
                req: 36,
                sender: nr(37),
                text: b"# TYPE sent_total counter\nsent_total 1\n".to_vec().into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for m in all_messages() {
            let bytes = encode(&m);
            assert_eq!(decode(&bytes).unwrap(), m, "{:?}", m.kind());
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for m in all_messages() {
            let bytes = encode(&m);
            for cut in 0..bytes.len() {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "{} decoded from {cut}-byte prefix",
                    m.kind()
                );
            }
        }
    }

    /// Append a valid CRC32C trailer to a hand-built body, producing a
    /// frame that reaches the field parser.
    fn sealed(body: &[u8]) -> Vec<u8> {
        let mut v = body.to_vec();
        v.extend_from_slice(&crc32c(body).to_le_bytes());
        v
    }

    #[test]
    fn bad_magic_version_tag() {
        assert_eq!(decode(&[0x00, VERSION, 1]), Err(CodecError::BadMagic(0)));
        assert_eq!(decode(&[MAGIC, 99, 1]), Err(CodecError::BadVersion(99)));
        assert_eq!(
            decode(&sealed(&[MAGIC, VERSION, 200])),
            Err(CodecError::BadTag(200))
        );
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
        // Too short to even carry a trailer.
        assert_eq!(decode(&[MAGIC, VERSION, 1]), Err(CodecError::Truncated));
        // A v1 frame (no trailer) from an old peer is rejected by version,
        // not misread as truncated garbage.
        assert_eq!(decode(&[MAGIC, 1, 5, 0]), Err(CodecError::BadVersion(1)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Bytes appended after the trailer shift the CRC window: checksum
        // catches it.
        let mut bytes = encode(&ChordMsg::Notify { sender: nr(1) });
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        assert!(matches!(
            decode(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
        // Garbage *inside* the checksummed body still reaches the field
        // parser and is rejected as trailing bytes.
        let good = encode(&ChordMsg::Notify { sender: nr(1) });
        let mut body = good[..good.len() - CRC_TRAILER].to_vec();
        body.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(decode(&sealed(&body)), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn hostile_lengths_rejected() {
        // Neighbors with an absurd successor-list length.
        let mut w = Writer::new();
        w.u8(MAGIC)
            .u8(VERSION)
            .u8(4)
            .u64(1)
            .node_ref(nr(1))
            .u8(0)
            .u16(u16::MAX);
        assert_eq!(
            decode(&sealed(&w.finish())),
            Err(CodecError::BadLength(u16::MAX as u64))
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(decode(&huge), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn checksum_catches_every_single_bit_flip() {
        // Flip each bit of each encoded variant: no flipped frame may
        // decode (most die on BadChecksum; flips in magic/version die on
        // their own checks — either way, never Ok).
        for m in all_messages() {
            let bytes = encode(&m);
            for byte in 0..bytes.len() {
                for bit in 0..8 {
                    let mut evil = bytes.clone();
                    evil[byte] ^= 1 << bit;
                    assert!(
                        decode(&evil).is_err(),
                        "{} survived flipping bit {bit} of byte {byte}",
                        m.kind()
                    );
                }
            }
        }
    }

    #[test]
    fn frame_layout_is_pinned() {
        // Golden bytes for the simplest variant: any accidental format
        // change (field order, endianness, trailer) breaks this first.
        let frame = encode(&ChordMsg::Notify { sender: nr(1) });
        let body = [
            MAGIC, VERSION, 5, // tag
            1, 0, 0, 0, 0, 0, 0, 0, // id = 1, LE
            3, 0, 0, 0, 0, 0, 0, 0, // addr = 3, LE
        ];
        assert_eq!(&frame[..body.len()], &body);
        assert_eq!(frame.len(), body.len() + CRC_TRAILER);
        assert_eq!(
            &frame[body.len()..],
            crc32c(&body).to_le_bytes(),
            "CRC trailer is little-endian CRC32C over magic..body"
        );
    }
}
