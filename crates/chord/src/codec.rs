//! Wire codec for [`ChordMsg`] frames.
//!
//! The paper's prototype implements "a RPC manager module … at the
//! socket-level to send and receive UDP packets" (§4). Every frame carries
//! one [`ChordMsg`]: a magic byte, a format version, a message tag and
//! fixed-order little-endian fields, built on the [`crate::wire`]
//! primitives (and the same [`CodecError`] vocabulary) every protocol codec
//! in the workspace uses. Application payloads (already encoded by their
//! protocol's codec) ride opaquely inside `App`, `Route` and `Broadcast`
//! frames.
//!
//! The codec lives next to the message type so every host can reach it:
//! `dat-rpc` uses it to frame UDP datagrams, and the simulator's codec
//! parity mode round-trips each delivered message through it to prove that
//! zero-copy in-memory delivery and wire delivery agree byte for byte.

use crate::msg::ChordMsg;
use crate::wire::{Reader, Writer};

pub use crate::wire::CodecError;

/// First byte of every valid frame.
pub const MAGIC: u8 = 0xD7;
/// Wire-format version.
pub const VERSION: u8 = 1;
/// Maximum accepted frame payload (defensive bound).
pub const MAX_FRAME: usize = 64 * 1024;

/// Encode one message into a frame payload.
pub fn encode(msg: &ChordMsg) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(MAGIC).u8(VERSION);
    match msg {
        ChordMsg::FindSuccessor {
            req,
            key,
            origin,
            hops,
        } => {
            w.u8(1).u64(*req).id(*key).node_ref(*origin).u32(*hops);
        }
        ChordMsg::FoundSuccessor {
            req,
            owner,
            owner_pred,
            owner_succ,
            hops,
        } => {
            w.u8(2)
                .u64(*req)
                .node_ref(*owner)
                .opt_node_ref(*owner_pred)
                .opt_node_ref(*owner_succ)
                .u32(*hops);
        }
        ChordMsg::GetNeighbors { req, sender } => {
            w.u8(3).u64(*req).node_ref(*sender);
        }
        ChordMsg::Neighbors {
            req,
            me,
            pred,
            succ_list,
        } => {
            w.u8(4)
                .u64(*req)
                .node_ref(*me)
                .opt_node_ref(*pred)
                .node_list(succ_list);
        }
        ChordMsg::Notify { sender } => {
            w.u8(5).node_ref(*sender);
        }
        ChordMsg::Ping { req, sender } => {
            w.u8(6).u64(*req).node_ref(*sender);
        }
        ChordMsg::Pong { req, sender } => {
            w.u8(7).u64(*req).node_ref(*sender);
        }
        ChordMsg::ProbeJoin { req, origin } => {
            w.u8(8).u64(*req).node_ref(*origin);
        }
        ChordMsg::ProbeJoinReply { req, designated } => {
            w.u8(9).u64(*req).id(*designated);
        }
        ChordMsg::LeaveToPred { leaver, succ_list } => {
            w.u8(10).node_ref(*leaver).node_list(succ_list);
        }
        ChordMsg::LeaveToSucc { leaver, pred } => {
            w.u8(11).node_ref(*leaver).opt_node_ref(*pred);
        }
        ChordMsg::Route {
            key,
            payload,
            origin,
            hops,
        } => {
            w.u8(12)
                .id(*key)
                .bytes(payload)
                .node_ref(*origin)
                .u32(*hops);
        }
        ChordMsg::App {
            proto,
            from,
            payload,
        } => {
            w.u8(13).u8(*proto).node_ref(*from).bytes(payload);
        }
        ChordMsg::Broadcast {
            limit,
            payload,
            origin,
            depth,
        } => {
            w.u8(14)
                .id(*limit)
                .bytes(payload)
                .node_ref(*origin)
                .u32(*depth);
        }
        ChordMsg::StatsRequest { req, sender } => {
            w.u8(15).u64(*req).node_ref(*sender);
        }
        ChordMsg::StatsReply { req, sender, text } => {
            w.u8(16).u64(*req).node_ref(*sender).bytes(text);
        }
    }
    w.finish()
}

/// Decode a frame payload into a message.
pub fn decode(data: &[u8]) -> Result<ChordMsg, CodecError> {
    if data.len() > MAX_FRAME {
        return Err(CodecError::BadLength(data.len() as u64));
    }
    let mut r = Reader::new(data);
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let ver = r.u8()?;
    if ver != VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let tag = r.u8()?;
    let msg = match tag {
        1 => ChordMsg::FindSuccessor {
            req: r.u64()?,
            key: r.id()?,
            origin: r.node_ref()?,
            hops: r.u32()?,
        },
        2 => ChordMsg::FoundSuccessor {
            req: r.u64()?,
            owner: r.node_ref()?,
            owner_pred: r.opt_node_ref()?,
            owner_succ: r.opt_node_ref()?,
            hops: r.u32()?,
        },
        3 => ChordMsg::GetNeighbors {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        4 => ChordMsg::Neighbors {
            req: r.u64()?,
            me: r.node_ref()?,
            pred: r.opt_node_ref()?,
            succ_list: r.node_list()?,
        },
        5 => ChordMsg::Notify {
            sender: r.node_ref()?,
        },
        6 => ChordMsg::Ping {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        7 => ChordMsg::Pong {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        8 => ChordMsg::ProbeJoin {
            req: r.u64()?,
            origin: r.node_ref()?,
        },
        9 => ChordMsg::ProbeJoinReply {
            req: r.u64()?,
            designated: r.id()?,
        },
        10 => ChordMsg::LeaveToPred {
            leaver: r.node_ref()?,
            succ_list: r.node_list()?,
        },
        11 => ChordMsg::LeaveToSucc {
            leaver: r.node_ref()?,
            pred: r.opt_node_ref()?,
        },
        12 => ChordMsg::Route {
            key: r.id()?,
            payload: r.bytes()?.into(),
            origin: r.node_ref()?,
            hops: r.u32()?,
        },
        13 => ChordMsg::App {
            proto: r.u8()?,
            from: r.node_ref()?,
            payload: r.bytes()?.into(),
        },
        14 => ChordMsg::Broadcast {
            limit: r.id()?,
            payload: r.bytes()?.into(),
            origin: r.node_ref()?,
            depth: r.u32()?,
        },
        15 => ChordMsg::StatsRequest {
            req: r.u64()?,
            sender: r.node_ref()?,
        },
        16 => ChordMsg::StatsReply {
            req: r.u64()?,
            sender: r.node_ref()?,
            text: r.bytes()?.into(),
        },
        t => return Err(CodecError::BadTag(t)),
    };
    r.expect_end()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Id, NodeAddr, NodeRef};

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id * 3))
    }

    fn all_messages() -> Vec<ChordMsg> {
        vec![
            ChordMsg::FindSuccessor {
                req: 1,
                key: Id(u64::MAX),
                origin: nr(2),
                hops: 3,
            },
            ChordMsg::FoundSuccessor {
                req: 4,
                owner: nr(5),
                owner_pred: Some(nr(6)),
                owner_succ: None,
                hops: 7,
            },
            ChordMsg::GetNeighbors {
                req: 8,
                sender: nr(9),
            },
            ChordMsg::Neighbors {
                req: 10,
                me: nr(11),
                pred: None,
                succ_list: vec![nr(12), nr(13), nr(14)],
            },
            ChordMsg::Notify { sender: nr(15) },
            ChordMsg::Ping {
                req: 16,
                sender: nr(17),
            },
            ChordMsg::Pong {
                req: 18,
                sender: nr(19),
            },
            ChordMsg::ProbeJoin {
                req: 20,
                origin: nr(21),
            },
            ChordMsg::ProbeJoinReply {
                req: 22,
                designated: Id(23),
            },
            ChordMsg::LeaveToPred {
                leaver: nr(24),
                succ_list: vec![],
            },
            ChordMsg::LeaveToSucc {
                leaver: nr(25),
                pred: Some(nr(26)),
            },
            ChordMsg::Route {
                key: Id(27),
                payload: vec![1, 2, 3, 4, 5].into(),
                origin: nr(28),
                hops: 29,
            },
            ChordMsg::App {
                proto: 1,
                from: nr(30),
                payload: vec![0; 1000].into(),
            },
            ChordMsg::Broadcast {
                limit: Id(31),
                payload: vec![9, 9].into(),
                origin: nr(32),
                depth: 33,
            },
            ChordMsg::StatsRequest {
                req: 34,
                sender: nr(35),
            },
            ChordMsg::StatsReply {
                req: 36,
                sender: nr(37),
                text: b"# TYPE sent_total counter\nsent_total 1\n".to_vec().into(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for m in all_messages() {
            let bytes = encode(&m);
            assert_eq!(decode(&bytes).unwrap(), m, "{:?}", m.kind());
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for m in all_messages() {
            let bytes = encode(&m);
            for cut in 0..bytes.len() {
                assert!(
                    decode(&bytes[..cut]).is_err(),
                    "{} decoded from {cut}-byte prefix",
                    m.kind()
                );
            }
        }
    }

    #[test]
    fn bad_magic_version_tag() {
        assert_eq!(decode(&[0x00, VERSION, 1]), Err(CodecError::BadMagic(0)));
        assert_eq!(decode(&[MAGIC, 99, 1]), Err(CodecError::BadVersion(99)));
        assert_eq!(decode(&[MAGIC, VERSION, 200]), Err(CodecError::BadTag(200)));
        assert_eq!(decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&ChordMsg::Notify { sender: nr(1) });
        bytes.extend_from_slice(&[0xAA, 0xBB]);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(2)));
    }

    #[test]
    fn hostile_lengths_rejected() {
        // Neighbors with an absurd successor-list length.
        let mut w = Writer::new();
        w.u8(MAGIC)
            .u8(VERSION)
            .u8(4)
            .u64(1)
            .node_ref(nr(1))
            .u8(0)
            .u16(u16::MAX);
        assert_eq!(
            decode(&w.finish()),
            Err(CodecError::BadLength(u16::MAX as u64))
        );
    }

    #[test]
    fn oversized_frame_rejected() {
        let huge = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(decode(&huge), Err(CodecError::BadLength(_))));
    }
}
