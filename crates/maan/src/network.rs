//! The MAAN network: registration and query resolution over a Chord ring.
//!
//! Implements the algorithms of paper §2.2 over a [`StaticRing`] global
//! view with exact hop accounting:
//!
//! * **registration** — a resource with `m` attribute-value pairs is stored
//!   on the successor of each hashed value, costing `O(m log n)` routing
//!   hops;
//! * **single-attribute range query** `[l, u]` — route to
//!   `successor(H(l))` (`O(log n)` hops), then walk successors until
//!   `successor(H(u))` (`k` hops for `k` responsible nodes);
//! * **multi-attribute query** — the *single-attribute dominated* strategy:
//!   resolve only the sub-query with minimal selectivity and filter the
//!   full attribute lists (stored with every registration) locally,
//!   costing `O(log n + n × s_min)`.

use std::collections::HashMap;

use dat_chord::{Id, StaticRing};

use crate::lph::{hash_value, selectivity};
use crate::store::NodeStore;
use crate::types::{AttrKind, AttrSchema, Constraint, Predicate, Resource};

/// Hop/visit accounting for one operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Chord routing hops spent reaching the first responsible node(s).
    pub routing_hops: u64,
    /// Nodes visited walking responsibility ranges (the `k` of
    /// `O(log n + k)`).
    pub visited_nodes: u64,
}

impl OpStats {
    /// Total messages implied by the operation.
    pub fn total(&self) -> u64 {
        self.routing_hops + self.visited_nodes
    }
}

/// A MAAN deployment over a ring membership.
pub struct MaanNetwork {
    ring: StaticRing,
    schemas: HashMap<String, AttrSchema>,
    stores: HashMap<Id, NodeStore>,
}

impl MaanNetwork {
    /// Create a MAAN over `ring` with the given attribute schemas.
    pub fn new(ring: StaticRing, schemas: Vec<AttrSchema>) -> Self {
        let stores = ring
            .ids()
            .iter()
            .map(|&id| (id, NodeStore::new()))
            .collect();
        MaanNetwork {
            ring,
            schemas: schemas.into_iter().map(|s| (s.name.clone(), s)).collect(),
            stores,
        }
    }

    /// The underlying ring.
    pub fn ring(&self) -> &StaticRing {
        &self.ring
    }

    /// Schema of `attr`, if registered.
    pub fn schema(&self, attr: &str) -> Option<&AttrSchema> {
        self.schemas.get(attr)
    }

    /// The store of node `id` (for load inspection).
    pub fn store_of(&self, id: Id) -> Option<&NodeStore> {
        self.stores.get(&id)
    }

    /// Entries stored per node, in ring order — the index-load distribution.
    pub fn load_distribution(&self) -> Vec<(Id, usize)> {
        self.ring
            .ids()
            .iter()
            .map(|&id| (id, self.stores[&id].len()))
            .collect()
    }

    /// Register `resource` from `origin`: one Chord routing per attribute
    /// value (paper: `O(m log n)` hops).
    pub fn register(&mut self, origin: Id, resource: &Resource) -> OpStats {
        assert!(self.ring.contains(origin), "origin not a ring member");
        let mut stats = OpStats::default();
        let space = self.ring.space();
        for (attr, value) in &resource.attrs {
            let Some(schema) = self.schemas.get(attr) else {
                continue; // unregistered attribute: not indexed
            };
            let vid = hash_value(space, schema, value);
            let route = self.ring.finger_route(origin, vid);
            stats.routing_hops += (route.len() - 1) as u64;
            let target = *route.last().unwrap();
            self.stores.get_mut(&target).unwrap().insert(
                attr,
                vid,
                value.as_num(),
                resource.clone(),
            );
        }
        stats
    }

    /// Deregister every attribute entry of `uri` (walks the same targets a
    /// registration would).
    pub fn deregister(&mut self, origin: Id, resource: &Resource) -> OpStats {
        let mut stats = OpStats::default();
        let space = self.ring.space();
        for (attr, value) in &resource.attrs {
            let Some(schema) = self.schemas.get(attr) else {
                continue;
            };
            let vid = hash_value(space, schema, value);
            let route = self.ring.finger_route(origin, vid);
            stats.routing_hops += (route.len() - 1) as u64;
            let target = *route.last().unwrap();
            self.stores
                .get_mut(&target)
                .unwrap()
                .remove(attr, &resource.uri);
        }
        stats
    }

    /// Single-attribute range query `attr ∈ [l, u]` issued at `origin`.
    /// Returns matching resources (deduplicated by URI) and the hop stats
    /// (`O(log n + k)`).
    pub fn range_query(&self, origin: Id, attr: &str, l: f64, u: f64) -> (Vec<Resource>, OpStats) {
        let pred = Predicate::range(attr, l, u);
        self.resolve_dominated(origin, &pred, &[])
    }

    /// Exact keyword query `attr == value`.
    pub fn exact_query(&self, origin: Id, attr: &str, value: &str) -> (Vec<Resource>, OpStats) {
        let pred = Predicate::exact(attr, value);
        self.resolve_dominated(origin, &pred, &[])
    }

    /// Multi-attribute range query: resolves the predicate with minimal
    /// selectivity and filters the rest locally (paper's single-attribute
    /// dominated strategy, §2.2).
    pub fn multi_query(&self, origin: Id, preds: &[Predicate]) -> (Vec<Resource>, OpStats) {
        assert!(!preds.is_empty(), "empty query");
        // Pick the dominating (most selective) predicate.
        let (dom_idx, _) = preds
            .iter()
            .enumerate()
            .map(|(i, p)| (i, self.pred_selectivity(p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let rest: Vec<Predicate> = preds
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != dom_idx)
            .map(|(_, p)| p.clone())
            .collect();
        self.resolve_dominated(origin, &preds[dom_idx], &rest)
    }

    /// Fraction of the identifier space a predicate's image covers.
    fn pred_selectivity(&self, p: &Predicate) -> f64 {
        match (&p.constraint, self.schemas.get(&p.attr).map(|s| &s.kind)) {
            (Constraint::Exact(_), _) => 0.0, // point query
            (Constraint::Range { lo: l, hi: u }, Some(AttrKind::Numeric { lo, hi })) => {
                selectivity(*lo, *hi, *l, *u)
            }
            // Unknown schema: pessimistic.
            _ => 1.0,
        }
    }

    fn resolve_dominated(
        &self,
        origin: Id,
        dom: &Predicate,
        rest: &[Predicate],
    ) -> (Vec<Resource>, OpStats) {
        assert!(self.ring.contains(origin), "origin not a ring member");
        let space = self.ring.space();
        let Some(schema) = self.schemas.get(&dom.attr) else {
            return (Vec::new(), OpStats::default());
        };
        // Image of the dominating constraint in the id space.
        let (lo_id, hi_id) = match (&dom.constraint, &schema.kind) {
            (Constraint::Range { lo: l, hi: u }, AttrKind::Numeric { .. }) => {
                let lo_id = hash_value(space, schema, &crate::types::AttrValue::Num(*l));
                let hi_id = hash_value(space, schema, &crate::types::AttrValue::Num(*u));
                (lo_id, hi_id)
            }
            (Constraint::Exact(s), _) => {
                let vid = hash_value(space, schema, &crate::types::AttrValue::Str(s.clone()));
                (vid, vid)
            }
            (Constraint::Range { .. }, AttrKind::Keyword) => {
                return (Vec::new(), OpStats::default()); // ranges need numeric LPH
            }
        };
        let mut stats = OpStats::default();
        // Route to successor(H(l)): O(log n).
        let route = self.ring.finger_route(origin, lo_id);
        stats.routing_hops = (route.len() - 1) as u64;
        let first = *route.last().unwrap();
        let last = self.ring.successor(hi_id);
        // When both endpoints resolve to the same owner, the range either
        // fits inside that node's arc (visit one node) or spans the whole
        // ring wrapping back to it (visit everyone) — e.g. a full-domain
        // query whose `successor(H(hi))` wraps past the largest member.
        let walk_all = first == last && {
            let pred = self.ring.predecessor(first);
            let gap = self.ring.gap_of(first) as u128;
            let span = (hi_id.raw() - lo_id.raw()) as u128 + 1;
            !(span <= gap
                && space.in_open_closed(lo_id, pred, first)
                && space.in_open_closed(hi_id, pred, first))
        };
        // Walk successors from `first` to `last` inclusive.
        let mut out: Vec<Resource> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut cur = first;
        loop {
            stats.visited_nodes += 1;
            let store = &self.stores[&cur];
            for e in store.scan(&dom.attr, lo_id, hi_id, Some(dom)) {
                if rest.iter().all(|p| e.resource.matches(p)) && seen.insert(e.resource.uri.clone())
                {
                    out.push(e.resource.clone());
                }
            }
            if !walk_all && cur == last {
                break;
            }
            cur = self.ring.successor(space.add(cur, 1));
            if cur == first {
                break; // full circle completed
            }
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AttrValue;
    use dat_chord::{IdPolicy, IdSpace};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn schemas() -> Vec<AttrSchema> {
        vec![
            AttrSchema::numeric("cpu-speed", 0.0, 8.0),
            AttrSchema::numeric("cpu-usage", 0.0, 100.0),
            AttrSchema::numeric("memory-size", 0.0, 64.0),
            AttrSchema::keyword("os"),
        ]
    }

    fn maan(n: usize, seed: u64) -> MaanNetwork {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ring = StaticRing::build(IdSpace::new(32), n, IdPolicy::Probed, &mut rng);
        MaanNetwork::new(ring, schemas())
    }

    fn machine(i: u64, cpu: f64, usage: f64, os: &str) -> Resource {
        Resource::new(&format!("grid://m{i}"))
            .with("cpu-speed", cpu)
            .with("cpu-usage", usage)
            .with("memory-size", 16.0)
            .with("os", os)
    }

    #[test]
    fn register_costs_m_log_n_hops() {
        let mut net = maan(128, 1);
        let origin = net.ring().ids()[0];
        let r = machine(1, 2.8, 95.0, "linux");
        let stats = net.register(origin, &r);
        // 4 attributes, log2(128) = 7: hops bounded by m * O(log n).
        assert!(stats.routing_hops <= 4 * (7 + 2), "{stats:?}");
        assert!(stats.routing_hops >= 1);
        // Stored once per attribute somewhere.
        let total: usize = net.load_distribution().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn range_query_finds_exactly_matching_resources() {
        let mut net = maan(64, 2);
        let origin = net.ring().ids()[5];
        for i in 0..50u64 {
            let cpu = 0.5 + (i as f64) * 0.15; // 0.5 .. 7.85
            net.register(origin, &machine(i, cpu, 50.0, "linux"));
        }
        let (hits, stats) = net.range_query(origin, "cpu-speed", 2.0, 3.0);
        let expect: Vec<u64> = (0..50)
            .filter(|&i| {
                let cpu = 0.5 + (i as f64) * 0.15;
                (2.0..=3.0).contains(&cpu)
            })
            .collect();
        assert_eq!(hits.len(), expect.len(), "{stats:?}");
        for r in &hits {
            let cpu = r.get("cpu-speed").unwrap().as_num().unwrap();
            assert!((2.0..=3.0).contains(&cpu));
        }
        assert!(stats.routing_hops <= 8, "routing {stats:?}");
    }

    #[test]
    fn exact_query_keyword() {
        let mut net = maan(64, 3);
        let origin = net.ring().ids()[0];
        net.register(origin, &machine(1, 2.0, 10.0, "linux"));
        net.register(origin, &machine(2, 2.0, 10.0, "freebsd"));
        let (hits, stats) = net.exact_query(origin, "os", "freebsd");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri, "grid://m2");
        assert_eq!(stats.visited_nodes, 1, "point query visits one node");
    }

    #[test]
    fn multi_attribute_dominated_query() {
        let mut net = maan(64, 4);
        let origin = net.ring().ids()[1];
        net.register(origin, &machine(1, 2.8, 95.0, "linux"));
        net.register(origin, &machine(2, 2.8, 20.0, "linux"));
        net.register(origin, &machine(3, 1.0, 95.0, "linux"));
        net.register(origin, &machine(4, 2.8, 95.0, "freebsd"));
        let preds = vec![
            Predicate::range("cpu-speed", 2.5, 3.0),
            Predicate::range("cpu-usage", 90.0, 100.0),
            Predicate::exact("os", "linux"),
        ];
        let (hits, _) = net.multi_query(origin, &preds);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].uri, "grid://m1");
    }

    #[test]
    fn dominated_choice_prefers_exact_predicate() {
        let net = maan(32, 5);
        // Exact predicates have selectivity 0 — they dominate.
        let s_exact = net.pred_selectivity(&Predicate::exact("os", "linux"));
        let s_wide = net.pred_selectivity(&Predicate::range("cpu-usage", 0.0, 100.0));
        let s_narrow = net.pred_selectivity(&Predicate::range("cpu-usage", 10.0, 15.0));
        assert!(s_exact < s_narrow && s_narrow < s_wide);
        assert_eq!(s_wide, 1.0);
    }

    #[test]
    fn deregister_removes_everywhere() {
        let mut net = maan(32, 6);
        let origin = net.ring().ids()[0];
        let r = machine(1, 2.8, 95.0, "linux");
        net.register(origin, &r);
        assert_eq!(
            net.load_distribution()
                .iter()
                .map(|&(_, c)| c)
                .sum::<usize>(),
            4
        );
        net.deregister(origin, &r);
        assert_eq!(
            net.load_distribution()
                .iter()
                .map(|&(_, c)| c)
                .sum::<usize>(),
            0
        );
        let (hits, _) = net.range_query(origin, "cpu-speed", 0.0, 8.0);
        assert!(hits.is_empty());
    }

    #[test]
    fn visited_nodes_scale_with_selectivity() {
        let mut net = maan(256, 7);
        let origin = net.ring().ids()[0];
        for i in 0..100u64 {
            net.register(origin, &machine(i, (i as f64) * 0.08, 50.0, "linux"));
        }
        let (_, narrow) = net.range_query(origin, "cpu-usage", 49.0, 51.0);
        let (_, wide) = net.range_query(origin, "cpu-speed", 0.0, 8.0);
        // cpu-usage values are all 50 => narrow range still visits its arc,
        // but a full-domain query must visit ~all 256 nodes.
        assert!(wide.visited_nodes > narrow.visited_nodes);
        assert!(wide.visited_nodes as usize >= 200, "{wide:?}");
    }

    #[test]
    fn unknown_attribute_yields_empty() {
        let net = maan(16, 8);
        let origin = net.ring().ids()[0];
        let (hits, stats) = net.range_query(origin, "nonexistent", 0.0, 1.0);
        assert!(hits.is_empty());
        assert_eq!(stats, OpStats::default());
    }

    #[test]
    fn values_land_on_ordered_nodes() {
        // Locality preservation: increasing values map to non-decreasing
        // ring positions (the arc walk of a range query).
        let net = maan(64, 9);
        let space = net.ring().space();
        let schema = net.schema("cpu-usage").unwrap().clone();
        let mut prev = Id(0);
        for i in 0..=100 {
            let vid = hash_value(space, &schema, &AttrValue::Num(i as f64));
            assert!(vid >= prev);
            prev = vid;
        }
    }
}
