//! Resource and attribute types for the MAAN indexing layer.
//!
//! MAAN (paper §2.2) represents each Grid resource as "a list of
//! attribute-value pairs, such as (<cpu-speed, 2.8GHz>, <memory-size, 1GB>,
//! <cpu-usage, 95%>, …)". Numeric attributes are registered under a
//! locality-preserving hash so range queries hit contiguous ring arcs;
//! string attributes under SHA-1 for exact-match lookup.

use std::collections::BTreeMap;

/// An attribute value.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttrValue {
    /// Numeric (range-queryable) value.
    Num(f64),
    /// Keyword (exact-match) value.
    Str(String),
}

impl AttrValue {
    /// Numeric view, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            AttrValue::Num(v) => Some(*v),
            AttrValue::Str(_) => None,
        }
    }

    /// String view, if keyword.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            AttrValue::Num(_) => None,
        }
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Num(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

/// Attribute kind, fixing how values hash onto the ring.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttrKind {
    /// Numeric with a known domain `[lo, hi]` — uses the locality-
    /// preserving hash, values outside the domain clamp to its ends.
    Numeric {
        /// Domain lower bound.
        lo: f64,
        /// Domain upper bound.
        hi: f64,
    },
    /// Free-form keyword — uses SHA-1 (uniform, not order-preserving).
    Keyword,
}

/// A registered attribute schema.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttrSchema {
    /// Attribute name, e.g. `"cpu-speed"`.
    pub name: String,
    /// How values map onto the identifier space.
    pub kind: AttrKind,
}

impl AttrSchema {
    /// A numeric attribute over `[lo, hi]`.
    pub fn numeric(name: &str, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "empty numeric domain for {name}");
        AttrSchema {
            name: name.to_string(),
            kind: AttrKind::Numeric { lo, hi },
        }
    }

    /// A keyword attribute.
    pub fn keyword(name: &str) -> Self {
        AttrSchema {
            name: name.to_string(),
            kind: AttrKind::Keyword,
        }
    }
}

/// A Grid resource: a URI plus its attribute-value pairs.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Resource {
    /// Unique resource identifier (e.g. a contact URI).
    pub uri: String,
    /// Attribute-value pairs, keyed by attribute name.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl Resource {
    /// Create a resource with no attributes yet.
    pub fn new(uri: &str) -> Self {
        Resource {
            uri: uri.to_string(),
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute insertion.
    pub fn with(mut self, name: &str, value: impl Into<AttrValue>) -> Self {
        self.attrs.insert(name.to_string(), value.into());
        self
    }

    /// Value of attribute `name`, if present.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// Does this resource satisfy `pred`?
    pub fn matches(&self, pred: &Predicate) -> bool {
        match self.attrs.get(&pred.attr) {
            None => false,
            Some(v) => pred.matches_value(v),
        }
    }
}

/// A single-attribute predicate of a multi-attribute range query.
#[derive(Clone, Debug, PartialEq)]
pub struct Predicate {
    /// Attribute name.
    pub attr: String,
    /// Constraint on the value.
    pub constraint: Constraint,
}

/// Value constraint kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Constraint {
    /// Numeric range `[lo, hi]` (inclusive).
    Range {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exact keyword match.
    Exact(String),
}

impl Predicate {
    /// `attr ∈ [lo, hi]`.
    pub fn range(attr: &str, lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "inverted range on {attr}");
        Predicate {
            attr: attr.to_string(),
            constraint: Constraint::Range { lo, hi },
        }
    }

    /// `attr == value`.
    pub fn exact(attr: &str, value: &str) -> Self {
        Predicate {
            attr: attr.to_string(),
            constraint: Constraint::Exact(value.to_string()),
        }
    }

    /// Does `v` satisfy this predicate?
    pub fn matches_value(&self, v: &AttrValue) -> bool {
        match (&self.constraint, v) {
            (Constraint::Range { lo, hi }, AttrValue::Num(x)) => *lo <= *x && *x <= *hi,
            (Constraint::Exact(s), AttrValue::Str(t)) => s == t,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_builder_and_access() {
        let r = Resource::new("grid://node1")
            .with("cpu-speed", 2.8)
            .with("os", "linux");
        assert_eq!(r.get("cpu-speed").unwrap().as_num(), Some(2.8));
        assert_eq!(r.get("os").unwrap().as_str(), Some("linux"));
        assert!(r.get("missing").is_none());
        assert_eq!(r.get("os").unwrap().as_num(), None);
    }

    #[test]
    fn predicates() {
        let r = Resource::new("grid://node1")
            .with("cpu-usage", 95.0)
            .with("os", "linux");
        assert!(r.matches(&Predicate::range("cpu-usage", 90.0, 100.0)));
        assert!(!r.matches(&Predicate::range("cpu-usage", 0.0, 50.0)));
        assert!(r.matches(&Predicate::exact("os", "linux")));
        assert!(!r.matches(&Predicate::exact("os", "freebsd")));
        assert!(!r.matches(&Predicate::range("missing", 0.0, 1.0)));
        // Type mismatches never match.
        assert!(!r.matches(&Predicate::exact("cpu-usage", "95")));
        assert!(!r.matches(&Predicate::range("os", 0.0, 1.0)));
    }

    #[test]
    fn range_bounds_inclusive() {
        let p = Predicate::range("x", 1.0, 2.0);
        assert!(p.matches_value(&AttrValue::Num(1.0)));
        assert!(p.matches_value(&AttrValue::Num(2.0)));
        assert!(!p.matches_value(&AttrValue::Num(2.0000001)));
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        Predicate::range("x", 2.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        AttrSchema::numeric("x", 5.0, 5.0);
    }
}
