//! Per-node resource store.
//!
//! Each MAAN node indexes, for every attribute, the resources whose hashed
//! attribute value it owns. The index is value-ordered (`BTreeMap` keyed by
//! the hashed identifier) so a node answers its slice of a range query
//! with one ordered scan.

use std::collections::BTreeMap;

use dat_chord::Id;

use crate::types::{Predicate, Resource};

/// One stored registration: a resource filed under one attribute value.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredEntry {
    /// The hashed attribute value the entry is filed under.
    pub value_id: Id,
    /// The raw (unhashed) numeric value, when numeric — lets a node filter
    /// exactly instead of by hash bucket.
    pub raw_num: Option<f64>,
    /// The full resource (MAAN stores the complete attribute list with
    /// every registration so multi-attribute queries can filter locally).
    pub resource: Resource,
}

/// A node's local index: attribute name → value-ordered entries.
#[derive(Clone, Debug, Default)]
pub struct NodeStore {
    by_attr: BTreeMap<String, BTreeMap<Id, Vec<StoredEntry>>>,
}

impl NodeStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// File `resource` under `(attr, value_id)`.
    pub fn insert(&mut self, attr: &str, value_id: Id, raw_num: Option<f64>, resource: Resource) {
        let entry = StoredEntry {
            value_id,
            raw_num,
            resource,
        };
        self.by_attr
            .entry(attr.to_string())
            .or_default()
            .entry(value_id)
            .or_default()
            .push(entry);
    }

    /// Remove every registration of `uri` under `attr`. Returns how many
    /// entries were dropped.
    pub fn remove(&mut self, attr: &str, uri: &str) -> usize {
        let Some(values) = self.by_attr.get_mut(attr) else {
            return 0;
        };
        let mut dropped = 0;
        values.retain(|_, entries| {
            let before = entries.len();
            entries.retain(|e| e.resource.uri != uri);
            dropped += before - entries.len();
            !entries.is_empty()
        });
        dropped
    }

    /// Total entries across all attributes.
    pub fn len(&self) -> usize {
        self.by_attr
            .values()
            .flat_map(|m| m.values())
            .map(Vec::len)
            .sum()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries of `attr` whose hashed value lies in `[lo_id, hi_id]`
    /// (plain integer interval — the caller maps ring arcs to at most two
    /// such intervals), further filtered by `pred` when given.
    pub fn scan(
        &self,
        attr: &str,
        lo_id: Id,
        hi_id: Id,
        pred: Option<&Predicate>,
    ) -> Vec<&StoredEntry> {
        let Some(values) = self.by_attr.get(attr) else {
            return Vec::new();
        };
        values
            .range(lo_id..=hi_id)
            .flat_map(|(_, v)| v.iter())
            .filter(|e| pred.is_none_or(|p| e.resource.matches(p)))
            .collect()
    }

    /// All entries of `attr`.
    pub fn all(&self, attr: &str) -> Vec<&StoredEntry> {
        self.by_attr
            .get(attr)
            .map(|m| m.values().flatten().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(uri: &str, cpu: f64) -> Resource {
        Resource::new(uri)
            .with("cpu-speed", cpu)
            .with("os", "linux")
    }

    #[test]
    fn insert_scan_filter() {
        let mut s = NodeStore::new();
        s.insert("cpu-speed", Id(100), Some(1.0), res("a", 1.0));
        s.insert("cpu-speed", Id(200), Some(2.0), res("b", 2.0));
        s.insert("cpu-speed", Id(300), Some(3.0), res("c", 3.0));
        assert_eq!(s.len(), 3);
        let hits = s.scan("cpu-speed", Id(150), Id(400), None);
        assert_eq!(hits.len(), 2);
        // Exact filtering by predicate.
        let p = Predicate::range("cpu-speed", 2.5, 3.5);
        let hits = s.scan("cpu-speed", Id(0), Id(u64::MAX), Some(&p));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].resource.uri, "c");
    }

    #[test]
    fn duplicate_value_ids_coexist() {
        let mut s = NodeStore::new();
        s.insert("os", Id(7), None, res("a", 1.0));
        s.insert("os", Id(7), None, res("b", 2.0));
        assert_eq!(s.scan("os", Id(7), Id(7), None).len(), 2);
    }

    #[test]
    fn remove_by_uri() {
        let mut s = NodeStore::new();
        s.insert("os", Id(7), None, res("a", 1.0));
        s.insert("os", Id(7), None, res("b", 2.0));
        s.insert("os", Id(9), None, res("a", 1.0));
        assert_eq!(s.remove("os", "a"), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove("os", "zzz"), 0);
        assert_eq!(s.remove("missing", "a"), 0);
    }

    #[test]
    fn unknown_attribute_scans_empty() {
        let s = NodeStore::new();
        assert!(s.scan("nope", Id(0), Id(10), None).is_empty());
        assert!(s.all("nope").is_empty());
        assert!(s.is_empty());
    }
}
