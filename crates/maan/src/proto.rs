//! MAAN as a live protocol on the stack engine.
//!
//! The [`crate::network::MaanNetwork`] is a global-view analytic model; this
//! module is the *protocol* version — a [`MaanProtocol`] handler hosted on a
//! [`StackNode`], so one overlay node can serve MAAN resource discovery
//! alongside DAT aggregation over the same finger table (the paper's P-GMA
//! layering, §2.2/§4):
//!
//! * **registration** routes each attribute value to the Chord successor of
//!   its (locality-preserving) hash;
//! * **range queries** route to `successor(H(l))` and walk the ring arc to
//!   `successor(H(u))` node by node; every arc node streams its hits
//!   straight back to the query origin and the last one signals completion.
//!
//! Wire messages are hand-rolled on the shared [`dat_chord::wire`]
//! primitives, same as every other codec in the workspace.

use std::collections::HashMap;

use dat_chord::wire::{CodecError, Reader, Writer};
use dat_chord::{Id, Metrics, NodeRef, Output};
use dat_core::engine::{AppProtocol, Ctx, StackNode};

use crate::lph::hash_value;
use crate::store::NodeStore;
use crate::types::{AttrSchema, AttrValue, Constraint, Predicate, Resource};

/// Application-protocol discriminator for MAAN messages.
pub const MAAN_PROTO: u8 = 4;

/// MAAN wire-format version.
pub const MAAN_WIRE_VERSION: u8 = 1;

/// Safety valve for arc walks: a range query dies after this many
/// successor hops even if it never reaches `successor(H(u))`.
const MAX_WALK_HOPS: u32 = 4096;

fn write_resource(w: &mut Writer, r: &Resource) {
    w.str(&r.uri);
    w.u16(r.attrs.len() as u16);
    for (name, v) in &r.attrs {
        w.str(name);
        match v {
            AttrValue::Num(x) => {
                w.u8(0).f64(*x);
            }
            AttrValue::Str(s) => {
                w.u8(1).str(s);
            }
        }
    }
}

fn read_resource(r: &mut Reader<'_>) -> Result<Resource, CodecError> {
    let uri = r.str()?;
    let n = r.u16()? as usize;
    if n > 1024 {
        return Err(CodecError::BadLength(n as u64));
    }
    let mut res = Resource::new(&uri);
    for _ in 0..n {
        let name = r.str()?;
        let v = match r.u8()? {
            0 => AttrValue::Num(r.f64()?),
            1 => AttrValue::Str(r.str()?),
            t => return Err(CodecError::BadTag(t)),
        };
        res.attrs.insert(name, v);
    }
    Ok(res)
}

fn write_predicate(w: &mut Writer, p: &Predicate) {
    w.str(&p.attr);
    match &p.constraint {
        Constraint::Range { lo, hi } => {
            w.u8(0).f64(*lo).f64(*hi);
        }
        Constraint::Exact(s) => {
            w.u8(1).str(s);
        }
    }
}

fn read_predicate(r: &mut Reader<'_>) -> Result<Predicate, CodecError> {
    let attr = r.str()?;
    let constraint = match r.u8()? {
        0 => {
            let lo = r.f64()?;
            let hi = r.f64()?;
            Constraint::Range { lo, hi }
        }
        1 => Constraint::Exact(r.str()?),
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(Predicate { attr, constraint })
}

/// MAAN wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum MaanMsg {
    /// Routed to `successor(value_id)`: file `resource` under
    /// `(attr, value_id)`.
    Register {
        /// Attribute name the registration is filed under.
        attr: String,
        /// Hashed attribute value (the rendezvous key).
        value_id: Id,
        /// Raw numeric value, when numeric (exact local filtering).
        raw_num: Option<f64>,
        /// The full resource.
        resource: Resource,
    },
    /// A range (or exact) query walking the arc `[lo_id, hi_id]`.
    RangeQuery {
        /// Query id, unique at the origin.
        qid: u64,
        /// Low end of the hashed-value interval.
        lo_id: Id,
        /// High end of the hashed-value interval.
        hi_id: Id,
        /// The predicate for exact local filtering.
        pred: Predicate,
        /// Who collects the hits.
        origin: NodeRef,
        /// Remaining successor hops before the walk is cut off.
        hops_left: u32,
    },
    /// An arc node's local hits, streamed straight back to the origin.
    Hits {
        /// Query id the hits belong to.
        qid: u64,
        /// Matching resources stored on the sending node.
        resources: Vec<Resource>,
    },
    /// The arc walk finished (sent by the node owning `hi_id`, or on hop
    /// exhaustion).
    Done {
        /// Query id that completed.
        qid: u64,
    },
}

impl MaanMsg {
    /// Metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            MaanMsg::Register { .. } => "maan_register",
            MaanMsg::RangeQuery { .. } => "maan_range_query",
            MaanMsg::Hits { .. } => "maan_hits",
            MaanMsg::Done { .. } => "maan_done",
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(MAAN_WIRE_VERSION);
        match self {
            MaanMsg::Register {
                attr,
                value_id,
                raw_num,
                resource,
            } => {
                w.u8(1).str(attr).id(*value_id);
                match raw_num {
                    Some(x) => {
                        w.u8(1).f64(*x);
                    }
                    None => {
                        w.u8(0);
                    }
                }
                write_resource(&mut w, resource);
            }
            MaanMsg::RangeQuery {
                qid,
                lo_id,
                hi_id,
                pred,
                origin,
                hops_left,
            } => {
                w.u8(2).u64(*qid).id(*lo_id).id(*hi_id);
                write_predicate(&mut w, pred);
                w.node_ref(*origin).u32(*hops_left);
            }
            MaanMsg::Hits { qid, resources } => {
                w.u8(3).u64(*qid).u16(resources.len() as u16);
                for r in resources {
                    write_resource(&mut w, r);
                }
            }
            MaanMsg::Done { qid } => {
                w.u8(4).u64(*qid);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes (must consume the whole input).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != MAAN_WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let tag = r.u8()?;
        let m = match tag {
            1 => {
                let attr = r.str()?;
                let value_id = r.id()?;
                let raw_num = match r.u8()? {
                    0 => None,
                    _ => Some(r.f64()?),
                };
                let resource = read_resource(&mut r)?;
                MaanMsg::Register {
                    attr,
                    value_id,
                    raw_num,
                    resource,
                }
            }
            2 => {
                let qid = r.u64()?;
                let lo_id = r.id()?;
                let hi_id = r.id()?;
                let pred = read_predicate(&mut r)?;
                let origin = r.node_ref()?;
                let hops_left = r.u32()?;
                MaanMsg::RangeQuery {
                    qid,
                    lo_id,
                    hi_id,
                    pred,
                    origin,
                    hops_left,
                }
            }
            3 => {
                let qid = r.u64()?;
                let n = r.u16()? as usize;
                if n > 4096 {
                    return Err(CodecError::BadLength(n as u64));
                }
                let mut resources = Vec::with_capacity(n);
                for _ in 0..n {
                    resources.push(read_resource(&mut r)?);
                }
                MaanMsg::Hits { qid, resources }
            }
            4 => MaanMsg::Done { qid: r.u64()? },
            t => return Err(CodecError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(m)
    }
}

/// Results surfaced to the host application.
#[derive(Clone, Debug, PartialEq)]
pub enum MaanEvent {
    /// A range query completed (the arc walk signalled `Done`).
    QueryDone {
        /// Query id returned by [`MaanStack::maan_range_query`].
        qid: u64,
        /// Every matching resource collected from the arc.
        hits: Vec<Resource>,
    },
}

#[derive(Debug)]
struct QueryCollect {
    hits: Vec<Resource>,
}

/// The MAAN handler: per-node resource index + range-query arc walking,
/// hosted on the shared Chord substrate by a [`StackNode`].
pub struct MaanProtocol {
    schemas: Vec<AttrSchema>,
    store: NodeStore,
    pending: HashMap<u64, QueryCollect>,
    next_qid: u64,
    metrics: Metrics,
    events: Vec<MaanEvent>,
}

impl MaanProtocol {
    /// A fresh MAAN handler with the given attribute schemas.
    pub fn new(schemas: Vec<AttrSchema>) -> Self {
        MaanProtocol {
            schemas,
            store: NodeStore::new(),
            pending: HashMap::new(),
            next_qid: 0,
            metrics: Metrics::default(),
            events: Vec::new(),
        }
    }

    /// MAAN-layer message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The local resource index.
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// The registered attribute schemas.
    pub fn schemas(&self) -> &[AttrSchema] {
        &self.schemas
    }

    /// Drain application events produced since the last call.
    pub fn take_events(&mut self) -> Vec<MaanEvent> {
        std::mem::take(&mut self.events)
    }

    fn schema(&self, attr: &str) -> Option<&AttrSchema> {
        self.schemas.iter().find(|s| s.name == attr)
    }

    /// Register every attribute of `resource`: values this node owns are
    /// filed locally, the rest are routed to their hashed owners.
    fn register(&mut self, cx: &mut Ctx<'_>, resource: &Resource) {
        let space = cx.space();
        for (name, value) in resource.attrs.clone() {
            let Some(schema) = self.schema(&name) else {
                continue;
            };
            let value_id = hash_value(space, schema, &value);
            let raw_num = value.as_num();
            if cx.owns(value_id) {
                self.store
                    .insert(&name, value_id, raw_num, resource.clone());
            } else {
                let m = MaanMsg::Register {
                    attr: name.clone(),
                    value_id,
                    raw_num,
                    resource: resource.clone(),
                };
                self.metrics.count_sent_kind(m.kind());
                cx.route(value_id, m.encode());
            }
        }
    }

    /// Start a query for `pred`; the answer arrives as
    /// [`MaanEvent::QueryDone`] with the returned query id.
    fn query(&mut self, cx: &mut Ctx<'_>, pred: Predicate) -> u64 {
        let me = cx.me();
        if self.next_qid == 0 {
            self.next_qid = me.addr.0 << 24;
        }
        self.next_qid += 1;
        let qid = self.next_qid;
        let space = cx.space();
        let Some(schema) = self.schema(&pred.attr) else {
            // Unknown attribute: trivially empty.
            self.events.push(MaanEvent::QueryDone {
                qid,
                hits: Vec::new(),
            });
            return qid;
        };
        let (lo_id, hi_id) = match &pred.constraint {
            Constraint::Range { lo, hi } => (
                hash_value(space, schema, &AttrValue::Num(*lo)),
                hash_value(space, schema, &AttrValue::Num(*hi)),
            ),
            Constraint::Exact(s) => {
                let id = hash_value(space, schema, &AttrValue::Str(s.clone()));
                (id, id)
            }
        };
        self.pending.insert(qid, QueryCollect { hits: Vec::new() });
        let m = MaanMsg::RangeQuery {
            qid,
            lo_id,
            hi_id,
            pred,
            origin: me,
            hops_left: MAX_WALK_HOPS,
        };
        if cx.owns(lo_id) {
            self.on_msg(cx, m);
        } else {
            self.metrics.count_sent_kind(m.kind());
            cx.route(lo_id, m.encode());
        }
        qid
    }

    fn on_msg(&mut self, cx: &mut Ctx<'_>, m: MaanMsg) {
        match m {
            MaanMsg::Register {
                attr,
                value_id,
                raw_num,
                resource,
            } => {
                self.store.insert(&attr, value_id, raw_num, resource);
            }
            MaanMsg::RangeQuery {
                qid,
                lo_id,
                hi_id,
                pred,
                origin,
                hops_left,
            } => {
                let me = cx.me();
                // This node's slice of the arc.
                let local: Vec<Resource> = self
                    .store
                    .scan(&pred.attr, lo_id, hi_id, Some(&pred))
                    .into_iter()
                    .map(|e| e.resource.clone())
                    .collect();
                if !local.is_empty() {
                    if origin.id == me.id {
                        self.collect_hits(qid, local);
                    } else {
                        let hits = MaanMsg::Hits {
                            qid,
                            resources: local,
                        };
                        self.metrics.count_sent_kind(hits.kind());
                        cx.send(origin, hits.encode());
                    }
                }
                // Walk on unless this node already covers the arc's end.
                let walk_done = cx.owns(hi_id) || hops_left == 0;
                if walk_done {
                    if origin.id == me.id {
                        self.finish_query(qid);
                    } else {
                        let done = MaanMsg::Done { qid };
                        self.metrics.count_sent_kind(done.kind());
                        cx.send(origin, done.encode());
                    }
                } else if let Some(succ) = cx.table().successor() {
                    let fwd = MaanMsg::RangeQuery {
                        qid,
                        lo_id,
                        hi_id,
                        pred,
                        origin,
                        hops_left: hops_left - 1,
                    };
                    self.metrics.count_sent_kind(fwd.kind());
                    cx.send(succ, fwd.encode());
                } else if origin.id == me.id {
                    // No successor (singleton): the arc is just us.
                    self.finish_query(qid);
                } else {
                    let done = MaanMsg::Done { qid };
                    self.metrics.count_sent_kind(done.kind());
                    cx.send(origin, done.encode());
                }
            }
            MaanMsg::Hits { qid, resources } => {
                self.collect_hits(qid, resources);
            }
            MaanMsg::Done { qid } => {
                self.finish_query(qid);
            }
        }
    }

    fn collect_hits(&mut self, qid: u64, resources: Vec<Resource>) {
        if let Some(q) = self.pending.get_mut(&qid) {
            for r in resources {
                if !q.hits.iter().any(|h| h.uri == r.uri) {
                    q.hits.push(r);
                }
            }
        }
    }

    fn finish_query(&mut self, qid: u64) {
        if let Some(q) = self.pending.remove(&qid) {
            self.events.push(MaanEvent::QueryDone { qid, hits: q.hits });
        }
    }
}

impl AppProtocol for MaanProtocol {
    fn proto(&self) -> u8 {
        MAAN_PROTO
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _from: NodeRef, payload: &[u8]) {
        match MaanMsg::decode(payload) {
            Ok(m) => {
                self.metrics.count_received_kind(m.kind());
                self.on_msg(cx, m);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn on_routed(&mut self, cx: &mut Ctx<'_>, _key: Id, _origin: NodeRef, payload: &[u8]) {
        match MaanMsg::decode(payload) {
            Ok(m) => {
                self.metrics.count_received_kind(m.kind());
                self.on_msg(cx, m);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        Some(&mut self.metrics)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// MAAN conveniences on the stack engine (extension trait — `StackNode`
/// lives in `dat-core`, so cross-crate conveniences can't be inherent
/// methods). All of these panic if no [`MaanProtocol`] is registered.
pub trait MaanStack {
    /// The MAAN handler (read-only).
    fn maan(&self) -> &MaanProtocol;

    /// The MAAN handler (mutable).
    fn maan_mut(&mut self) -> &mut MaanProtocol;

    /// Register every attribute of `resource` onto the overlay.
    fn maan_register(&mut self, resource: &Resource) -> Vec<Output>;

    /// Issue a query for `pred`; the answer arrives as
    /// [`MaanEvent::QueryDone`] with the returned query id.
    fn maan_query(&mut self, pred: Predicate) -> (u64, Vec<Output>);

    /// Issue a numeric range query `attr ∈ [lo, hi]`.
    fn maan_range_query(&mut self, attr: &str, lo: f64, hi: f64) -> (u64, Vec<Output>);

    /// Drain MAAN application events produced since the last call.
    fn take_maan_events(&mut self) -> Vec<MaanEvent>;
}

impl MaanStack for StackNode {
    fn maan(&self) -> &MaanProtocol {
        self.app::<MaanProtocol>()
    }

    fn maan_mut(&mut self) -> &mut MaanProtocol {
        self.app_mut::<MaanProtocol>()
    }

    fn maan_register(&mut self, resource: &Resource) -> Vec<Output> {
        let resource = resource.clone();
        self.drive::<MaanProtocol, _>(move |m, cx| m.register(cx, &resource))
            .1
    }

    fn maan_query(&mut self, pred: Predicate) -> (u64, Vec<Output>) {
        self.drive::<MaanProtocol, _>(move |m, cx| m.query(cx, pred))
    }

    fn maan_range_query(&mut self, attr: &str, lo: f64, hi: f64) -> (u64, Vec<Output>) {
        self.maan_query(Predicate::range(attr, lo, hi))
    }

    fn take_maan_events(&mut self) -> Vec<MaanEvent> {
        self.maan_mut().take_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, IdSpace, NodeAddr};

    fn schemas() -> Vec<AttrSchema> {
        vec![
            AttrSchema::numeric("cpu-speed", 0.0, 8.0),
            AttrSchema::keyword("os"),
        ]
    }

    fn mk(id: u64) -> StackNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(16),
            ..ChordConfig::default()
        };
        StackNode::new(ccfg, Id(id), NodeAddr(id)).with_app(MaanProtocol::new(schemas()))
    }

    #[test]
    fn maan_msg_roundtrip() {
        let res = Resource::new("grid://m1")
            .with("cpu-speed", 2.8)
            .with("os", "linux");
        let msgs = vec![
            MaanMsg::Register {
                attr: "cpu-speed".into(),
                value_id: Id(77),
                raw_num: Some(2.8),
                resource: res.clone(),
            },
            MaanMsg::RangeQuery {
                qid: 9,
                lo_id: Id(10),
                hi_id: Id(20),
                pred: Predicate::range("cpu-speed", 1.0, 2.0),
                origin: NodeRef::new(Id(3), NodeAddr(3)),
                hops_left: 64,
            },
            MaanMsg::RangeQuery {
                qid: 10,
                lo_id: Id(5),
                hi_id: Id(5),
                pred: Predicate::exact("os", "linux"),
                origin: NodeRef::new(Id(3), NodeAddr(3)),
                hops_left: 64,
            },
            MaanMsg::Hits {
                qid: 9,
                resources: vec![res.clone(), Resource::new("grid://m2")],
            },
            MaanMsg::Done { qid: 9 },
        ];
        for m in msgs {
            assert_eq!(MaanMsg::decode(&m.encode()).unwrap(), m);
        }
        assert!(MaanMsg::decode(&[]).is_err());
        assert!(MaanMsg::decode(&[MAAN_WIRE_VERSION, 99]).is_err());
    }

    #[test]
    fn singleton_registers_locally_and_answers_range_query() {
        let mut n = mk(1);
        let _ = n.start_create();
        let res = Resource::new("grid://m1")
            .with("cpu-speed", 2.8)
            .with("os", "linux");
        let outs = n.maan_register(&res);
        // Singleton owns everything: no traffic, both attrs filed locally.
        assert!(outs.iter().all(|o| !matches!(o, Output::Send { .. })));
        assert_eq!(n.maan().store().len(), 2);
        let (qid, _) = n.maan_range_query("cpu-speed", 2.0, 3.0);
        let evs = n.take_maan_events();
        assert_eq!(
            evs,
            vec![MaanEvent::QueryDone {
                qid,
                hits: vec![res]
            }]
        );
    }

    #[test]
    fn range_query_misses_outside_interval() {
        let mut n = mk(1);
        let _ = n.start_create();
        let res = Resource::new("grid://m1").with("cpu-speed", 6.5);
        let _ = n.maan_register(&res);
        let (qid, _) = n.maan_range_query("cpu-speed", 0.0, 2.0);
        assert_eq!(
            n.take_maan_events(),
            vec![MaanEvent::QueryDone {
                qid,
                hits: Vec::new()
            }]
        );
    }

    #[test]
    fn exact_keyword_query() {
        let mut n = mk(1);
        let _ = n.start_create();
        let _ = n.maan_register(&Resource::new("grid://m1").with("os", "linux"));
        let _ = n.maan_register(&Resource::new("grid://m2").with("os", "plan9"));
        let (qid, _) = n.maan_query(Predicate::exact("os", "linux"));
        let evs = n.take_maan_events();
        match &evs[..] {
            [MaanEvent::QueryDone { qid: q, hits }] => {
                assert_eq!(*q, qid);
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].uri, "grid://m1");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_attribute_completes_empty() {
        let mut n = mk(1);
        let _ = n.start_create();
        let (qid, _) = n.maan_range_query("no-such-attr", 0.0, 1.0);
        assert_eq!(
            n.take_maan_events(),
            vec![MaanEvent::QueryDone {
                qid,
                hits: Vec::new()
            }]
        );
    }
}
