//! # dat-maan — Multi-Attribute Addressable Network
//!
//! The indexing layer of the P-GMA architecture (paper §2.2): Grid
//! resources are attribute-value lists; each value is stored on the Chord
//! successor of its hash. Numeric attributes use a **locality-preserving
//! hash**, so a range query `[l, u]` resolves by routing to
//! `successor(H(l))` (`O(log n)` hops) and walking the arc to
//! `successor(H(u))` (`k` more hops). Multi-attribute queries use the
//! **single-attribute dominated** strategy — resolve only the most
//! selective sub-query and filter the rest locally — for
//! `O(log n + n × s_min)` total hops.
//!
//! ```
//! use dat_chord::{IdSpace, IdPolicy, StaticRing};
//! use dat_maan::{AttrSchema, MaanNetwork, Predicate, Resource};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let ring = StaticRing::build(IdSpace::new(32), 64, IdPolicy::Probed, &mut rng);
//! let mut net = MaanNetwork::new(ring, vec![
//!     AttrSchema::numeric("cpu-speed", 0.0, 8.0),
//!     AttrSchema::keyword("os"),
//! ]);
//! let origin = net.ring().ids()[0];
//! net.register(origin, &Resource::new("grid://m1").with("cpu-speed", 2.8).with("os", "linux"));
//! let (hits, stats) = net.multi_query(origin, &[
//!     Predicate::range("cpu-speed", 2.0, 3.0),
//!     Predicate::exact("os", "linux"),
//! ]);
//! assert_eq!(hits.len(), 1);
//! assert!(stats.total() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lph;
pub mod network;
pub mod proto;
pub mod store;
pub mod types;

pub use lph::{hash_value, lph_numeric, selectivity};
pub use network::{MaanNetwork, OpStats};
pub use proto::{MaanEvent, MaanMsg, MaanProtocol, MaanStack, MAAN_PROTO};
pub use store::{NodeStore, StoredEntry};
pub use types::{AttrKind, AttrSchema, AttrValue, Constraint, Predicate, Resource};
