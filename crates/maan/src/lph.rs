//! Locality-preserving hashing onto the Chord identifier space.
//!
//! MAAN's key trick (paper §2.2): "numeric attribute values … are mapped to
//! the Chord identifier space by using a locality preserving hash function
//! H, \[so\] numerically close values for the same attribute are stored on
//! nearby nodes", which turns a range query into one contiguous walk along
//! the ring. We implement `H` as the affine map of the attribute domain
//! `[lo, hi]` onto `[0, 2^b)`, monotone by construction, and SHA-1 for
//! keyword attributes (exact match only).

use dat_chord::{hash_to_id, Id, IdSpace};

use crate::types::{AttrKind, AttrSchema, AttrValue};

/// Hash a numeric value in `[lo, hi]` onto the identifier space,
/// preserving order: `a <= b  ⇒  H(a) <= H(b)` (as plain integers, not
/// ring positions). Values outside the domain clamp to its ends.
pub fn lph_numeric(space: IdSpace, lo: f64, hi: f64, v: f64) -> Id {
    assert!(hi > lo, "empty domain");
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    // Scale into [0, 2^b - 1]; use u128 to stay exact at b = 64.
    let max = (space.size() - 1) as f64;
    space.id((t * max) as u64)
}

/// Hash any attribute value under its schema.
pub fn hash_value(space: IdSpace, schema: &AttrSchema, v: &AttrValue) -> Id {
    match (&schema.kind, v) {
        (AttrKind::Numeric { lo, hi }, AttrValue::Num(x)) => lph_numeric(space, *lo, *hi, *x),
        (AttrKind::Keyword, AttrValue::Str(s)) => {
            // Salt with the attribute name so equal keywords of different
            // attributes spread independently.
            let salted = format!("{}={}", schema.name, s);
            hash_to_id(space, salted.as_bytes())
        }
        (AttrKind::Numeric { lo, hi }, AttrValue::Str(s)) => {
            // Tolerate numeric-looking strings.
            let x = s.parse::<f64>().unwrap_or(*lo);
            lph_numeric(space, *lo, *hi, x)
        }
        (AttrKind::Keyword, AttrValue::Num(x)) => {
            let salted = format!("{}={}", schema.name, x);
            hash_to_id(space, salted.as_bytes())
        }
    }
}

/// Selectivity of a numeric range `[l, u]` under a schema: the fraction of
/// the identifier space its image covers — the `s_min` of the paper's
/// multi-attribute complexity bound `O(log n + n × s_min)`.
pub fn selectivity(lo: f64, hi: f64, l: f64, u: f64) -> f64 {
    if u < l {
        return 0.0;
    }
    let l = l.clamp(lo, hi);
    let u = u.clamp(lo, hi);
    ((u - l) / (hi - lo)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_over_domain() {
        let s = IdSpace::new(32);
        let mut prev = lph_numeric(s, 0.0, 100.0, 0.0);
        for i in 1..=1000 {
            let v = i as f64 / 10.0;
            let h = lph_numeric(s, 0.0, 100.0, v);
            assert!(h >= prev, "H not monotone at {v}");
            prev = h;
        }
    }

    #[test]
    fn endpoints_map_to_extremes() {
        let s = IdSpace::new(16);
        assert_eq!(lph_numeric(s, 0.0, 1.0, 0.0), Id(0));
        assert_eq!(lph_numeric(s, 0.0, 1.0, 1.0), Id(65535));
        // Clamping.
        assert_eq!(lph_numeric(s, 0.0, 1.0, -5.0), Id(0));
        assert_eq!(lph_numeric(s, 0.0, 1.0, 7.0), Id(65535));
    }

    #[test]
    fn keyword_hashing_salted_by_attribute() {
        let s = IdSpace::new(64);
        let os = AttrSchema::keyword("os");
        let arch = AttrSchema::keyword("arch");
        let v = AttrValue::Str("linux".into());
        assert_ne!(hash_value(s, &os, &v), hash_value(s, &arch, &v));
        // Deterministic.
        assert_eq!(hash_value(s, &os, &v), hash_value(s, &os, &v));
    }

    #[test]
    fn numeric_schema_tolerates_string_values() {
        let s = IdSpace::new(32);
        let sch = AttrSchema::numeric("mem", 0.0, 64.0);
        let a = hash_value(s, &sch, &AttrValue::Num(16.0));
        let b = hash_value(s, &sch, &AttrValue::Str("16".into()));
        assert_eq!(a, b);
    }

    #[test]
    fn selectivity_fractions() {
        assert_eq!(selectivity(0.0, 100.0, 0.0, 100.0), 1.0);
        assert_eq!(selectivity(0.0, 100.0, 25.0, 75.0), 0.5);
        assert_eq!(selectivity(0.0, 100.0, 90.0, 80.0), 0.0);
        // Out-of-domain clamps.
        assert_eq!(selectivity(0.0, 100.0, -50.0, 50.0), 0.5);
    }
}
