//! The DAT protocol layer: a sans-io node wrapping [`ChordNode`].
//!
//! Implements both aggregate modes of the paper's prototype (§4):
//!
//! * **continuous** — epoch-based push along the implicit DAT tree. Every
//!   epoch each node merges its local value with the freshest partial of
//!   every (soft-state) child and pushes the result to its *current* parent,
//!   recomputed from the live finger table — so the tree adapts to churn
//!   with zero membership-repair messages, the paper's central claim.
//! * **on-demand** — a query is routed to the rendezvous root, which fans
//!   out over disjoint finger ranges (the `broadcast` primitive) and
//!   convergecasts exact partials back up with per-node completion
//!   tracking and a timeout window for lost branches.
//!
//! A third mode, **centralized**, reproduces the baseline of Fig. 8: every
//! node routes its raw value to the root with no in-network merging.
//!
//! Like the Chord layer, `DatNode` performs no I/O: it consumes
//! [`Input`]s, emits [`Output`]s, and surfaces application-level results as
//! [`DatEvent`]s drained via [`DatNode::take_events`].

use std::collections::HashMap;

use dat_chord::{
    estimate_d0, hash_to_id, parent_for, ChordConfig, ChordNode, Id, Input, Metrics, NodeAddr,
    NodeRef, NodeStatus, Output, ParentDecision, RoutingScheme, Upcall,
};

use crate::aggregate::AggPartial;
use crate::codec::{DatMsg, DAT_PROTO};

/// How the global value of one aggregation is computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggregationMode {
    /// Epoch-based push along the implicit DAT tree (the paper's scheme).
    Continuous,
    /// Baseline: raw values routed to the root, no in-network merging.
    Centralized,
}

/// DAT-layer tunables.
#[derive(Clone, Copy, Debug)]
pub struct DatConfig {
    /// Which routing scheme defines parents (basic vs balanced DAT).
    pub scheme: RoutingScheme,
    /// Epoch (time-slot) length for continuous aggregation, ms.
    pub epoch_ms: u64,
    /// A child's partial is kept for this many epochs before expiring
    /// (soft-state churn adaptation).
    pub child_ttl_epochs: u64,
    /// How long an on-demand query waits for missing branches, ms.
    pub query_window_ms: u64,
    /// Continuous mode: after an epoch tick, wait at most this long for the
    /// children's updates of the new epoch before pushing our merged
    /// partial up (the "aggregation synchronization" of §4). Updates
    /// cascade bottom-up within one slot, so the root's report reflects the
    /// *current* epoch's values instead of lagging by the tree height.
    pub hold_ms: u64,
    /// Exact average inter-node gap, when globally known (experiments set
    /// `2^b / n`); `None` means estimate from the local neighborhood.
    pub d0_hint: Option<u64>,
}

impl Default for DatConfig {
    fn default() -> Self {
        DatConfig {
            scheme: RoutingScheme::Balanced,
            epoch_ms: 1_000,
            child_ttl_epochs: 3,
            query_window_ms: 500,
            hold_ms: 250,
            d0_hint: None,
        }
    }
}

/// Results surfaced to the host application.
#[derive(Clone, Debug, PartialEq)]
pub enum DatEvent {
    /// (Root only, continuous/centralized mode) the global partial computed
    /// for one epoch.
    Report {
        /// Rendezvous key of the aggregation.
        key: Id,
        /// Epoch index the report belongs to.
        epoch: u64,
        /// The merged global partial.
        partial: AggPartial,
    },
    /// (Requester side) an on-demand query completed.
    QueryDone {
        /// Request id returned by [`DatNode::query`].
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// The merged global partial.
        partial: AggPartial,
    },
}

/// One registered aggregation (an entry of the §4 "aggregation table").
#[derive(Clone, Debug)]
pub struct AggregationEntry {
    /// Rendezvous key (SHA-1 of the attribute name).
    pub key: Id,
    /// Attribute name, e.g. `"cpu-usage"`.
    pub name: String,
    /// Aggregation mode.
    pub mode: AggregationMode,
    /// Latest local observation, if any.
    pub local: Option<f64>,
    /// Histogram shape `(lo, hi, buckets)` to attach to partials, if any.
    pub histogram: Option<(f64, f64, usize)>,
    /// Distinct-count sketch precision to attach to partials, if any.
    pub distinct_p: Option<u8>,
    /// Identity items this node contributes to the distinct sketch
    /// (e.g. its site name).
    local_items: Vec<Vec<u8>>,
    /// Freshest partial per child id, with the *local* epoch it arrived in.
    children: HashMap<Id, (AggPartial, u64)>,
    /// Last epoch whose partial has been pushed up / reported.
    flushed_epoch: u64,
    /// Root stickiness: we keep acting as the root through this epoch while
    /// the predecessor link is unknown (transient evictions on lossy links
    /// must not silence reports or push partials down-tree, which would
    /// create counting cycles).
    root_until: u64,
    /// The parent the previous flush went to; a switch triggers a prune
    /// notice so the old parent drops our cached partial at once.
    last_parent: Option<NodeRef>,
    /// Old parent still owed prune notices (sent on consecutive flushes —
    /// prunes travel over the same lossy links as everything else).
    prune_old: Option<(NodeRef, u8)>,
    /// (Root, centralized mode) freshest raw sample per node id.
    raw: HashMap<Id, (f64, u64)>,
}

impl AggregationEntry {
    /// Children that delivered an update this epoch or the previous one —
    /// the set an interior node waits on before cascading its own update.
    pub fn active_children(&self, now_epoch: u64) -> Vec<Id> {
        self.children
            .iter()
            .filter(|(_, (_, e))| now_epoch.saturating_sub(*e) <= 1)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of live (unexpired) children currently known.
    pub fn live_children(&self, now_epoch: u64, ttl: u64) -> usize {
        self.children
            .values()
            .filter(|(_, e)| now_epoch.saturating_sub(*e) <= ttl)
            .count()
    }

    fn base_partial(&self) -> AggPartial {
        let mut p = match self.histogram {
            Some((lo, hi, n)) => AggPartial::identity_with_histogram(lo, hi, n),
            None => AggPartial::identity(),
        };
        if let Some(prec) = self.distinct_p {
            p.distinct = Some(crate::sketch::Hll::new(prec));
            for item in &self.local_items {
                p.observe_item(item);
            }
        }
        p
    }

    /// Merge local value + fresh child partials (continuous mode).
    /// `exclude` drops one cached child — the node we are about to push to.
    /// Under heavy loss, parent decisions can flap so that two nodes
    /// transiently treat each other as parent; reflecting a node's own
    /// partial back at it creates an exponential counting cycle.
    fn merged_partial(&self, now_epoch: u64, ttl: u64, exclude: Option<Id>) -> AggPartial {
        let mut acc = self.base_partial();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        for (child, (p, e)) in self.children.iter() {
            if Some(*child) == exclude {
                continue;
            }
            if now_epoch.saturating_sub(*e) <= ttl {
                acc.merge(p);
            }
        }
        acc
    }

    /// Merge local value + fresh raw samples (centralized root).
    fn merged_raw(&self, now_epoch: u64, ttl: u64) -> AggPartial {
        let mut acc = self.base_partial();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        for (v, e) in self.raw.values() {
            if now_epoch.saturating_sub(*e) <= ttl {
                acc.absorb(*v);
            }
        }
        acc
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DatTimer {
    EpochTick,
    QueryWindow(u64),
    /// Flush the continuous partial of one aggregation for the current
    /// epoch (armed at each tick; may be preempted by an early flush when
    /// every recently-active child has already delivered).
    HoldFlush(Id),
}

#[derive(Debug)]
struct QueryState {
    key: Id,
    /// Who awaits our response (`None`: we are the fan-out origin).
    parent: Option<NodeRef>,
    /// (Origin only) who gets the final result.
    requester: Option<NodeRef>,
    awaiting: usize,
    acc: AggPartial,
    done: bool,
}

/// The DAT node: Chord + aggregation table + both aggregate modes.
pub struct DatNode {
    chord: ChordNode,
    cfg: DatConfig,
    aggs: HashMap<Id, AggregationEntry>,
    epoch: u64,
    queries: HashMap<u64, QueryState>,
    timers: HashMap<u64, DatTimer>,
    next_token: u64,
    next_reqid: u64,
    metrics: Metrics,
    events: Vec<DatEvent>,
    epoch_timer_armed: bool,
    /// Last epoch in which the DAT parent was liveness-pinged.
    parent_ping_epoch: u64,
}

impl DatNode {
    /// Create a DAT node with the given Chord and DAT configurations.
    pub fn new(chord_cfg: ChordConfig, dat_cfg: DatConfig, id: Id, addr: NodeAddr) -> Self {
        DatNode {
            chord: ChordNode::new(chord_cfg, id, addr),
            cfg: dat_cfg,
            aggs: HashMap::new(),
            epoch: 0,
            queries: HashMap::new(),
            timers: HashMap::new(),
            next_token: 1,
            next_reqid: (addr.0 << 24) + 1,
            metrics: Metrics::default(),
            events: Vec::new(),
            epoch_timer_armed: false,
            parent_ping_epoch: 0,
        }
    }

    /// Wrap an existing Chord node (e.g. one pre-loaded with a stabilized
    /// table by an experiment harness).
    pub fn from_chord(chord: ChordNode, dat_cfg: DatConfig) -> Self {
        let addr = chord.me().addr;
        DatNode {
            chord,
            cfg: dat_cfg,
            aggs: HashMap::new(),
            epoch: 0,
            queries: HashMap::new(),
            timers: HashMap::new(),
            next_token: 1,
            next_reqid: (addr.0 << 24) + 1,
            metrics: Metrics::default(),
            events: Vec::new(),
            epoch_timer_armed: false,
            parent_ping_epoch: 0,
        }
    }

    /// This node's reference.
    pub fn me(&self) -> NodeRef {
        self.chord.me()
    }

    /// Lifecycle status of the underlying Chord node.
    pub fn status(&self) -> NodeStatus {
        self.chord.status()
    }

    /// The underlying Chord node (read-only).
    pub fn chord(&self) -> &ChordNode {
        &self.chord
    }

    /// Report the host clock (monotonic ms) to the Chord layer's RTT
    /// estimator. Hosts call this before every input.
    pub fn set_now(&mut self, now_ms: u64) {
        self.chord.set_now(now_ms);
    }

    /// DAT-layer message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Reset both DAT-layer and Chord-layer counters (e.g. after a warm-up
    /// phase, so experiments measure steady state only).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.chord.metrics_mut().reset();
    }

    /// The DAT configuration.
    pub fn config(&self) -> &DatConfig {
        &self.cfg
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered aggregations.
    pub fn aggregations(&self) -> impl Iterator<Item = &AggregationEntry> {
        self.aggs.values()
    }

    /// Look up one aggregation entry.
    pub fn aggregation(&self, key: Id) -> Option<&AggregationEntry> {
        self.aggs.get(&key)
    }

    /// Drain application events produced since the last call.
    pub fn take_events(&mut self) -> Vec<DatEvent> {
        std::mem::take(&mut self.events)
    }

    /// Start as the first ring member.
    pub fn start_create(&mut self) -> Vec<Output> {
        let outs = self.chord.start_create();
        self.process(outs)
    }

    /// Join through `bootstrap`.
    pub fn start_join(&mut self, bootstrap: NodeRef) -> Vec<Output> {
        let outs = self.chord.start_join(bootstrap);
        self.process(outs)
    }

    /// Start with a pre-materialised routing table (see
    /// [`ChordNode::start_with_table`]); used by experiment harnesses.
    pub fn start_with_table(&mut self, table: dat_chord::FingerTable) -> Vec<Output> {
        let outs = self.chord.start_with_table(table);
        self.process(outs)
    }

    /// Gracefully leave the ring.
    pub fn leave(&mut self) -> Vec<Output> {
        let outs = self.chord.leave();
        self.process(outs)
    }

    /// Register an aggregation for attribute `name`. The rendezvous key is
    /// the SHA-1 hash of the name (paper §2.3). Returns the key.
    pub fn register(&mut self, name: &str, mode: AggregationMode) -> Id {
        self.register_with_histogram(name, mode, None)
    }

    /// Register an aggregation whose partials carry a histogram digest.
    pub fn register_with_histogram(
        &mut self,
        name: &str,
        mode: AggregationMode,
        histogram: Option<(f64, f64, usize)>,
    ) -> Id {
        let key = hash_to_id(self.chord.space(), name.as_bytes());
        self.aggs.entry(key).or_insert_with(|| AggregationEntry {
            key,
            name: name.to_string(),
            mode,
            local: None,
            histogram,
            distinct_p: None,
            local_items: Vec::new(),
            children: HashMap::new(),
            flushed_epoch: 0,
            root_until: 0,
            last_parent: None,
            prune_old: None,
            raw: HashMap::new(),
        });
        key
    }

    /// Update this node's local value for an aggregation (sensor input).
    pub fn set_local(&mut self, key: Id, value: f64) {
        if let Some(e) = self.aggs.get_mut(&key) {
            e.local = Some(value);
        }
    }

    /// Register an aggregation whose partials carry a distinct-count
    /// sketch of the given precision (see [`crate::sketch::Hll`]).
    pub fn register_with_distinct(&mut self, name: &str, mode: AggregationMode, p: u8) -> Id {
        let key = self.register(name, mode);
        if let Some(e) = self.aggs.get_mut(&key) {
            e.distinct_p = Some(p);
        }
        key
    }

    /// Record an identity-bearing item (site, user, job id …) this node
    /// contributes to the aggregation's distinct-count sketch.
    pub fn observe_local_item(&mut self, key: Id, item: &[u8]) {
        if let Some(e) = self.aggs.get_mut(&key) {
            if !e.local_items.iter().any(|i| i == item) {
                e.local_items.push(item.to_vec());
            }
        }
    }

    /// The DAT parent this node currently computes for `key`.
    pub fn parent_decision(&self, key: Id) -> ParentDecision {
        parent_for(self.cfg.scheme, self.chord.table(), key, self.d0())
    }

    /// Issue an on-demand aggregate query for `key`. The answer arrives as
    /// [`DatEvent::QueryDone`] with the returned request id.
    pub fn query(&mut self, key: Id) -> (u64, Vec<Output>) {
        self.next_reqid += 1;
        let reqid = self.next_reqid;
        let me = self.me();
        let mut outs = Vec::new();
        if self.chord.owns(key) {
            // We are the root: fan out directly.
            let mut q = std::collections::VecDeque::new();
            self.begin_fanout(reqid, key, None, Some(me), &mut q);
            outs.extend(q);
        } else {
            let req = DatMsg::Request {
                reqid,
                key,
                requester: me,
            };
            self.metrics.count_sent_kind(req.kind());
            let routed = self.chord.route(key, req.encode());
            outs.extend(self.process(routed));
        }
        (reqid, outs)
    }

    /// Drive one input through the stack.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        let outs = self.chord.handle(input);
        self.process(outs)
    }

    /// Intercept chord upcalls, dispatch DAT logic, pass the rest through.
    fn process(&mut self, outs: Vec<Output>) -> Vec<Output> {
        let mut pass = Vec::with_capacity(outs.len());
        let mut scan: std::collections::VecDeque<Output> = outs.into();
        while let Some(o) = scan.pop_front() {
            match o {
                Output::Upcall(Upcall::Joined { id }) => {
                    self.ensure_epoch_timer(&mut scan);
                    pass.push(Output::Upcall(Upcall::Joined { id }));
                }
                Output::Upcall(Upcall::AppTimer(token)) => {
                    #[cfg(feature = "trace-flush")]
                    eprintln!(
                        "[{:?}] AppTimer token={token} known={}",
                        self.me().addr,
                        self.timers.contains_key(&token)
                    );
                    let Some(t) = self.timers.remove(&token) else {
                        continue;
                    };
                    match t {
                        DatTimer::EpochTick => {
                            self.epoch_timer_armed = false;
                            self.on_epoch(&mut scan);
                            self.ensure_epoch_timer(&mut scan);
                        }
                        DatTimer::QueryWindow(reqid) => self.on_query_window(reqid, &mut scan),
                        DatTimer::HoldFlush(key) => self.flush_continuous(key, &mut scan),
                    }
                }
                Output::Upcall(Upcall::AppMessage {
                    proto,
                    from,
                    payload,
                }) if proto == DAT_PROTO => match DatMsg::decode(&payload) {
                    Ok(msg) => {
                        self.metrics.count_received_kind(msg.kind());
                        self.on_dat_msg(from.addr, msg, &mut scan);
                    }
                    Err(_) => self.metrics.dropped += 1,
                },
                Output::Upcall(Upcall::Routed {
                    key,
                    payload,
                    origin,
                    ..
                }) => match DatMsg::decode(&payload) {
                    Ok(msg) => {
                        self.metrics.count_received_kind(msg.kind());
                        self.on_dat_msg(origin.addr, msg, &mut scan);
                    }
                    Err(_) => {
                        // Not a DAT payload: surface to the host.
                        pass.push(Output::Upcall(Upcall::Routed {
                            key,
                            payload,
                            origin,
                            hops: 0,
                        }));
                    }
                },
                other => pass.push(other),
            }
        }
        pass
    }

    fn ensure_epoch_timer(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        if self.epoch_timer_armed || self.status() != NodeStatus::Active {
            return;
        }
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, DatTimer::EpochTick);
        outs.push_back(self.chord.app_timer(token, self.cfg.epoch_ms));
        self.epoch_timer_armed = true;
    }

    fn d0(&self) -> u64 {
        self.cfg
            .d0_hint
            .unwrap_or_else(|| estimate_d0(self.chord.table()))
    }

    /// One epoch tick: push every continuous aggregation to its parent,
    /// route centralized samples, emit root reports.
    fn on_epoch(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        self.epoch += 1;
        let epoch = self.epoch;
        let ttl = self.cfg.child_ttl_epochs;
        let me = self.me();
        let _ = me;
        let keys: Vec<Id> = self.aggs.keys().copied().collect();
        for key in keys {
            let entry = &self.aggs[&key];
            match entry.mode {
                AggregationMode::Continuous => {
                    // Aggregation synchronization (§4): schedule this
                    // node's push within the slot by its estimated distance
                    // to the root — leaves flush first, the root's children
                    // last — so updates cascade bottom-up inside one epoch.
                    // Nodes whose children have all delivered flush early
                    // (see the Update handler); the timer is the bound.
                    if entry.active_children(epoch).is_empty() {
                        self.flush_continuous(key, outs);
                    } else {
                        let delay = self.flush_delay(key);
                        #[cfg(feature = "trace-flush")]
                        eprintln!("[{:?}] arm hold epoch={epoch} delay={delay}", me.addr);
                        self.next_token += 1;
                        let token = self.next_token;
                        self.timers.insert(token, DatTimer::HoldFlush(key));
                        outs.push_back(self.chord.app_timer(token, delay));
                    }
                }
                AggregationMode::Centralized => {
                    if self.chord.owns(key) {
                        let partial = entry.merged_raw(epoch, ttl);
                        self.events.push(DatEvent::Report {
                            key,
                            epoch,
                            partial,
                        });
                    } else if let Some(v) = entry.local {
                        let msg = DatMsg::RawSample {
                            key,
                            epoch,
                            value: v,
                            sender: me,
                        };
                        self.metrics.count_sent_kind(msg.kind());
                        let routed = self.chord.route(key, msg.encode());
                        for o in self.process(routed) {
                            outs.push_back(o);
                        }
                    }
                }
            }
        }
    }

    /// When, within the hold window, this node should push its partial.
    ///
    /// Both routing schemes strictly shrink the clockwise distance `x` to
    /// the rendezvous key on every hop (by at least half), so scheduling
    /// flushes by `log2(x)` — large `x` (deep in the tree) first, small `x`
    /// (near the root) last — guarantees every child's delay is strictly
    /// smaller than its parent's by at least `hold_ms / b` milliseconds.
    /// With the default 250 ms window over a 32-bit space that is ~8 ms per
    /// level, comfortably above LAN latencies, so an epoch's updates
    /// cascade all the way to the root within one slot (the paper's
    /// "aggregation synchronization", §4).
    fn flush_delay(&self, key: Id) -> u64 {
        if self.chord.owns(key) {
            // The root sits just past the key, so its clockwise distance to
            // the key wraps the whole ring — special-case it to flush last.
            return self.cfg.hold_ms;
        }
        let space = self.chord.space();
        let x = space.dist_cw(self.me().id, key);
        let b = space.bits() as f64;
        // Spread the window over the ~log2(n) levels that actually exist
        // (identifiers below d0 apart collapse into one level), so the gap
        // between adjacent levels is hold/log2(n) rather than hold/b —
        // comfortably above one-way latency even on WANs.
        let d0_log = (self.d0().max(1) as f64).log2();
        let span = (b - d0_log).max(1.0);
        // frac = 1 just behind the key (the root's children), 0 at the far
        // side of the ring (the deepest leaves).
        let frac = 1.0 - ((((x as f64) + 1.0).log2() - d0_log).max(0.0) / span).clamp(0.0, 1.0);
        // Children stay strictly below the root's full-hold flush.
        (self.cfg.hold_ms as f64 * frac * span / (span + 1.0)).round() as u64
    }

    /// Push (or report, at the root) the merged continuous partial of
    /// `key` for the current epoch. Idempotent per epoch.
    fn flush_continuous(&mut self, key: Id, outs: &mut std::collections::VecDeque<Output>) {
        let epoch = self.epoch;
        let ttl = self.cfg.child_ttl_epochs;
        let me = self.me();
        let Some(entry) = self.aggs.get_mut(&key) else {
            return;
        };
        if entry.mode != AggregationMode::Continuous || entry.flushed_epoch >= epoch {
            #[cfg(feature = "trace-flush")]
            eprintln!(
                "[{:?}] flush skipped epoch={epoch} flushed={}",
                self.chord.me().addr,
                entry.flushed_epoch
            );
            return;
        }
        #[cfg(feature = "trace-flush")]
        {
            let stamps: Vec<(u64, u64, f64)> = entry
                .children
                .iter()
                .map(|(id, (p, e))| (id.raw() % 1000, *e, p.sum))
                .collect();
            eprintln!(
                "[{:?}] flush epoch={epoch} local={:?} children={stamps:?}",
                self.chord.me().addr,
                entry.local
            );
        }
        entry.flushed_epoch = epoch;
        let mut decision = self.parent_decision(key);
        // Root stickiness: a transiently evicted predecessor makes the ring
        // position uncertain; a recent root keeps reporting rather than
        // pushing its partial *down* the tree (which would both silence the
        // report and create a counting cycle).
        match decision {
            ParentDecision::IAmRoot => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.root_until = epoch + 2;
                }
            }
            _ => {
                let pred_unknown = self.chord.table().predecessor().is_none();
                let sticky = self
                    .aggs
                    .get(&key)
                    .map(|e| e.root_until >= epoch)
                    .unwrap_or(false);
                if pred_unknown && sticky {
                    decision = ParentDecision::IAmRoot;
                }
            }
        }
        let partial = {
            let entry = self.aggs.get(&key).expect("entry exists");
            entry.merged_partial(epoch, ttl, decision.parent().map(|p| p.id))
        };
        // Parent switch: tell the old parent to forget our partial so the
        // subtree is never counted along two paths at once. Prunes ride the
        // same lossy links as updates, so each switch schedules two.
        let new_parent = decision.parent();
        if let Some(e) = self.aggs.get_mut(&key) {
            if let Some(old) = e
                .last_parent
                .filter(|old| Some(old.id) != new_parent.map(|p| p.id))
            {
                e.prune_old = Some((old, 2));
            }
            e.last_parent = new_parent;
            // Never prune the node we are about to push to.
            if e.prune_old.map(|(o, _)| Some(o.id)) == Some(new_parent.map(|p| p.id)) {
                e.prune_old = None;
            }
        }
        let prune_to = self.aggs.get_mut(&key).and_then(|e| {
            let (old, n) = e.prune_old?;
            e.prune_old = (n > 1).then_some((old, n - 1));
            Some(old)
        });
        if let Some(old) = prune_to {
            let msg = DatMsg::Prune { key, sender: me };
            self.metrics.count_sent_kind(msg.kind());
            outs.push_back(self.chord.send_app(old, DAT_PROTO, msg.encode()));
        }
        match decision {
            ParentDecision::IAmRoot => {
                self.events.push(DatEvent::Report {
                    key,
                    epoch,
                    partial,
                });
            }
            ParentDecision::Parent(p) => {
                let msg = DatMsg::Update {
                    key,
                    epoch,
                    partial,
                    sender: me,
                };
                self.metrics.count_sent_kind(msg.kind());
                outs.push_back(self.chord.send_app(p, DAT_PROTO, msg.encode()));
                // Updates are fire-and-forget; probe the parent's liveness
                // once per epoch so a crashed or departed parent is evicted
                // (via the Chord timeout machinery) and next epoch's parent
                // computation routes around it.
                if self.parent_ping_epoch < epoch {
                    self.parent_ping_epoch = epoch;
                    self.metrics.count_sent_kind("dat_parent_ping");
                    for o in self.chord.ping_node(p) {
                        outs.push_back(o);
                    }
                }
            }
            ParentDecision::Unknown => {
                // Table still converging; try again next epoch.
                entry_unknown_rollback(self.aggs.get_mut(&key), epoch);
            }
        }
    }

    fn on_dat_msg(
        &mut self,
        _from: NodeAddr,
        msg: DatMsg,
        outs: &mut std::collections::VecDeque<Output>,
    ) {
        match msg {
            DatMsg::Update {
                key,
                epoch: _,
                partial,
                sender,
            } => {
                let now_epoch = self.epoch;
                let ready = match self.aggs.get_mut(&key) {
                    Some(e) => {
                        // Stamp with OUR epoch counter: nodes that joined at
                        // different times number epochs differently.
                        e.children.insert(sender.id, (partial, now_epoch));
                        e.flushed_epoch < now_epoch
                            && e.active_children(now_epoch)
                                .iter()
                                .all(|c| e.children[c].1 == now_epoch)
                    }
                    None => false,
                };
                if ready {
                    // Every recently-active child has delivered this
                    // epoch's partial: cascade up without waiting for the
                    // hold timer.
                    self.flush_continuous(key, outs);
                }
            }
            DatMsg::RawSample {
                key,
                epoch,
                value,
                sender,
            } => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.raw.insert(sender.id, (value, epoch.max(self.epoch)));
                }
            }
            DatMsg::Request {
                reqid,
                key,
                requester,
            } => {
                self.begin_fanout(reqid, key, None, Some(requester), outs);
            }
            DatMsg::Query {
                reqid,
                key,
                limit,
                parent,
                depth,
            } => {
                self.on_query(reqid, key, limit, parent, depth, outs);
            }
            DatMsg::Response {
                reqid,
                key: _,
                partial,
                sender: _,
            } => {
                let complete = match self.queries.get_mut(&reqid) {
                    Some(q) if !q.done => {
                        q.acc.merge(&partial);
                        q.awaiting = q.awaiting.saturating_sub(1);
                        q.awaiting == 0
                    }
                    _ => false,
                };
                if complete {
                    self.complete_query(reqid, outs);
                }
            }
            DatMsg::Prune { key, sender } => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.children.remove(&sender.id);
                }
            }
            DatMsg::Result {
                reqid,
                key,
                partial,
            } => {
                self.events.push(DatEvent::QueryDone {
                    reqid,
                    key,
                    partial,
                });
            }
        }
    }

    /// Root-side start of an on-demand aggregation: fan out over the whole
    /// ring.
    fn begin_fanout(
        &mut self,
        reqid: u64,
        key: Id,
        parent: Option<NodeRef>,
        requester: Option<NodeRef>,
        outs: &mut std::collections::VecDeque<Output>,
    ) {
        let me = self.me();
        let acc = self.local_partial(key);
        let sent = self.fan_out_query(reqid, key, me.id, 0, outs);
        let st = QueryState {
            key,
            parent,
            requester,
            awaiting: sent,
            acc,
            done: false,
        };
        self.queries.insert(reqid, st);
        if sent == 0 {
            self.complete_query(reqid, outs);
        } else {
            self.arm_query_window(reqid, 0, outs);
        }
    }

    /// Handle an incoming fan-out query for range `(me, limit)`.
    fn on_query(
        &mut self,
        reqid: u64,
        key: Id,
        limit: Id,
        parent: NodeRef,
        depth: u32,
        outs: &mut std::collections::VecDeque<Output>,
    ) {
        if self.queries.contains_key(&reqid) {
            // Duplicate delivery during churn: answer with identity so the
            // parent's counter still drains.
            let msg = DatMsg::Response {
                reqid,
                key,
                partial: AggPartial::identity(),
                sender: self.me(),
            };
            self.metrics.count_sent_kind(msg.kind());
            outs.push_back(self.chord.send_app(parent, DAT_PROTO, msg.encode()));
            return;
        }
        let acc = self.local_partial(key);
        let sent = self.fan_out_query(reqid, key, limit, depth + 1, outs);
        let st = QueryState {
            key,
            parent: Some(parent),
            requester: None,
            awaiting: sent,
            acc,
            done: false,
        };
        self.queries.insert(reqid, st);
        if sent == 0 {
            self.complete_query(reqid, outs);
        } else {
            self.arm_query_window(reqid, depth + 1, outs);
        }
    }

    fn local_partial(&self, key: Id) -> AggPartial {
        match self.aggs.get(&key) {
            Some(e) => {
                let mut p = e.base_partial();
                if let Some(x) = e.local {
                    p.absorb(x);
                }
                p
            }
            None => AggPartial::identity(),
        }
    }

    /// Send `Query` messages covering the disjoint finger sub-ranges of
    /// `(me, limit)`. Returns the number of children queried.
    fn fan_out_query(
        &mut self,
        reqid: u64,
        key: Id,
        limit: Id,
        depth: u32,
        outs: &mut std::collections::VecDeque<Output>,
    ) -> usize {
        let space = self.chord.space();
        let me = self.me();
        let mut targets: Vec<NodeRef> = Vec::new();
        for (_, fi) in self.chord.table().iter() {
            let n = fi.node;
            let inside = if limit == me.id {
                n.id != me.id
            } else {
                space.in_open_open(n.id, me.id, limit)
            };
            if inside && !targets.iter().any(|t| t.id == n.id) {
                targets.push(n);
            }
        }
        targets.sort_by_key(|t| space.dist_cw(me.id, t.id));
        let count = targets.len();
        for i in 0..count {
            let sub_limit = if i + 1 < count {
                targets[i + 1].id
            } else {
                limit
            };
            let msg = DatMsg::Query {
                reqid,
                key,
                limit: sub_limit,
                parent: me,
                depth,
            };
            self.metrics.count_sent_kind(msg.kind());
            outs.push_back(self.chord.send_app(targets[i], DAT_PROTO, msg.encode()));
        }
        count
    }

    /// Arm the lost-branch timeout for a query. Windows halve with fan-out
    /// depth so that a deep subtree's timeout still fits inside every
    /// ancestor's window — otherwise one lost message below would make the
    /// root close before the (late but complete) deep responses arrive.
    fn arm_query_window(
        &mut self,
        reqid: u64,
        depth: u32,
        outs: &mut std::collections::VecDeque<Output>,
    ) {
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, DatTimer::QueryWindow(reqid));
        let window = (self.cfg.query_window_ms >> depth.min(6)).max(40);
        outs.push_back(self.chord.app_timer(token, window));
    }

    fn on_query_window(&mut self, reqid: u64, outs: &mut std::collections::VecDeque<Output>) {
        let timed_out = matches!(self.queries.get(&reqid), Some(q) if !q.done);
        if timed_out {
            // Lost branches: answer with what we have.
            self.complete_query(reqid, outs);
        }
    }

    fn complete_query(&mut self, reqid: u64, outs: &mut std::collections::VecDeque<Output>) {
        let me = self.me();
        let Some(q) = self.queries.get_mut(&reqid) else {
            return;
        };
        if q.done {
            return;
        }
        q.done = true;
        let key = q.key;
        let partial = q.acc.clone();
        let parent = q.parent;
        let requester = q.requester;
        match parent {
            Some(p) => {
                let msg = DatMsg::Response {
                    reqid,
                    key,
                    partial,
                    sender: me,
                };
                self.metrics.count_sent_kind(msg.kind());
                outs.push_back(self.chord.send_app(p, DAT_PROTO, msg.encode()));
            }
            None => match requester {
                Some(r) if r.id == me.id => {
                    self.events.push(DatEvent::QueryDone {
                        reqid,
                        key,
                        partial,
                    });
                }
                Some(r) => {
                    let msg = DatMsg::Result {
                        reqid,
                        key,
                        partial,
                    };
                    self.metrics.count_sent_kind(msg.kind());
                    outs.push_back(self.chord.send_app(r, DAT_PROTO, msg.encode()));
                }
                None => {}
            },
        }
    }
}

/// Roll back a flush marker when the parent is still unknown, so the next
/// epoch retries instead of silently dropping a slot.
fn entry_unknown_rollback(entry: Option<&mut AggregationEntry>, epoch: u64) {
    if let Some(e) = entry {
        e.flushed_epoch = epoch.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::IdSpace;

    fn mk(id: u64) -> DatNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        DatNode::new(ccfg, DatConfig::default(), Id(id), NodeAddr(id))
    }

    fn timer_outputs(outs: &[Output]) -> Vec<dat_chord::TimerKind> {
        outs.iter()
            .filter_map(|o| match o {
                Output::SetTimer { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn register_derives_key_from_name() {
        let mut n = mk(1);
        let k1 = n.register("cpu-usage", AggregationMode::Continuous);
        let k2 = n.register("cpu-usage", AggregationMode::Continuous);
        assert_eq!(k1, k2);
        let k3 = n.register("memory-size", AggregationMode::Continuous);
        assert_ne!(k1, k3);
        assert_eq!(n.aggregations().count(), 2);
        assert_eq!(n.aggregation(k1).unwrap().name, "cpu-usage");
    }

    #[test]
    fn create_arms_epoch_timer() {
        let mut n = mk(1);
        n.register("cpu-usage", AggregationMode::Continuous);
        let outs = n.start_create();
        let timers = timer_outputs(&outs);
        assert!(
            timers
                .iter()
                .any(|t| matches!(t, dat_chord::TimerKind::App(_))),
            "epoch timer must be armed: {timers:?}"
        );
    }

    #[test]
    fn singleton_root_reports_own_value() {
        let mut n = mk(1);
        let key = n.register("cpu-usage", AggregationMode::Continuous);
        let outs = n.start_create();
        n.set_local(key, 55.0);
        // Fire the epoch timer.
        let app = timer_outputs(&outs)
            .into_iter()
            .find(|t| matches!(t, dat_chord::TimerKind::App(_)))
            .unwrap();
        let _ = n.handle(Input::Timer(app));
        let evs = n.take_events();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            DatEvent::Report {
                key: k,
                epoch,
                partial,
            } => {
                assert_eq!(*k, key);
                assert_eq!(*epoch, 1);
                assert_eq!(partial.finalize(crate::aggregate::AggFunc::Sum), 55.0);
                assert_eq!(partial.count, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn singleton_query_completes_instantly() {
        let mut n = mk(1);
        let key = n.register("cpu-usage", AggregationMode::Continuous);
        let _ = n.start_create();
        n.set_local(key, 7.0);
        let (reqid, _) = n.query(key);
        let evs = n.take_events();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            DatEvent::QueryDone {
                reqid: r, partial, ..
            } => {
                assert_eq!(*r, reqid);
                assert_eq!(partial.sum, 7.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_message_absorbed_into_children() {
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 10.0);
        // A fake child pushes a partial.
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(32.0),
            sender: child,
        };
        let _ = root.handle(Input::Message {
            from: NodeAddr(99),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: child,
                payload: upd.encode(),
            },
        });
        assert_eq!(root.aggregation(key).unwrap().live_children(1, 3), 1);
        // Next epoch the root report includes the child's value.
        let outs = root.start_join_epoch_for_tests();
        let _ = outs;
        let evs = root.take_events();
        let report = evs
            .iter()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(report.count, 2);
        assert_eq!(report.sum, 42.0);
    }

    #[test]
    fn duplicated_update_does_not_inflate_continuous_readout() {
        // Duplicate-delivery tolerance of the continuous path: a child's
        // Update lands in a per-sender slot, so replaying the identical
        // datagram (as a duplicating transport would) overwrites instead of
        // accumulating — Sum/Count stay exact even though
        // `AggPartial::merge` itself is not idempotent.
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 10.0);
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(32.0),
            sender: child,
        };
        for _ in 0..3 {
            let _ = root.handle(Input::Message {
                from: NodeAddr(99),
                msg: dat_chord::ChordMsg::App {
                    proto: DAT_PROTO,
                    from: child,
                    payload: upd.encode(),
                },
            });
        }
        assert_eq!(root.aggregation(key).unwrap().live_children(1, 3), 1);
        let _ = root.start_join_epoch_for_tests();
        let evs = root.take_events();
        let report = evs
            .iter()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(report.count, 2, "triple delivery must count the child once");
        assert_eq!(report.sum, 42.0);
    }

    #[test]
    fn stale_children_expire() {
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 1.0);
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(100.0),
            sender: child,
        };
        let _ = root.handle(Input::Message {
            from: NodeAddr(99),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: child,
                payload: upd.encode(),
            },
        });
        // Advance well past the TTL (ttl = 3): 6 epochs.
        for _ in 0..6 {
            let _ = root.start_join_epoch_for_tests();
        }
        let evs = root.take_events();
        let last = evs
            .iter()
            .rev()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        // Only the local value remains.
        assert_eq!(last.count, 1);
        assert_eq!(last.sum, 1.0);
    }

    #[test]
    fn bad_payload_counted_dropped() {
        let mut n = mk(1);
        let _ = n.start_create();
        let _ = n.handle(Input::Message {
            from: NodeAddr(5),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: NodeRef::new(Id(5), NodeAddr(5)),
                payload: vec![0xde, 0xad],
            },
        });
        assert_eq!(n.metrics().dropped, 1);
    }

    #[test]
    fn flush_delays_cascade_bottom_up() {
        // Child delays must be strictly below their parent's, and the key
        // owner (root) must flush last.
        use dat_chord::{IdPolicy, StaticRing};
        use rand::SeedableRng;
        let space = IdSpace::new(16);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
        let key = dat_chord::hash_to_id(space, b"cpu-usage");
        let tree = crate::tree::DatTree::build(&ring, key, RoutingScheme::Balanced);
        let delay_of = |id: Id| {
            let ccfg = ChordConfig {
                space,
                ..ChordConfig::default()
            };
            let chord = dat_chord::ChordNode::new(ccfg, id, NodeAddr(id.raw()));
            let mut node = DatNode::from_chord(chord, DatConfig::default());
            let table = ring.table_of(id, 4);
            let _ = node.start_with_table(table);
            node.flush_delay(key)
        };
        let root_delay = delay_of(tree.root());
        assert_eq!(
            root_delay,
            DatConfig::default().hold_ms,
            "root flushes last"
        );
        for (child, parent) in tree.edges() {
            let dc = delay_of(child);
            let dp = delay_of(parent);
            assert!(
                dc < dp || parent == tree.root(),
                "child {child} delay {dc} !< parent {parent} delay {dp}"
            );
            if parent == tree.root() {
                assert!(dc < root_delay, "child {child} !< root");
            }
        }
    }

    impl DatNode {
        /// Test helper: fire one epoch synchronously, including any hold
        /// flush the tick armed.
        fn start_join_epoch_for_tests(&mut self) -> Vec<Output> {
            let mut outs = std::collections::VecDeque::new();
            self.on_epoch(&mut outs);
            let keys: Vec<Id> = self.aggs.keys().copied().collect();
            for key in keys {
                self.flush_continuous(key, &mut outs);
            }
            outs.into_iter().collect()
        }
    }
}
