//! The DAT protocol layer, hosted on the [`StackNode`] engine.
//!
//! Implements both aggregate modes of the paper's prototype (§4):
//!
//! * **continuous** — epoch-based push along the implicit DAT tree. Every
//!   epoch each node merges its local value with the freshest partial of
//!   every (soft-state) child and pushes the result to its *current* parent,
//!   recomputed from the live finger table — so the tree adapts to churn
//!   with zero membership-repair messages, the paper's central claim.
//! * **on-demand** — a query is routed to the rendezvous root, which fans
//!   out over disjoint finger ranges (the `broadcast` primitive) and
//!   convergecasts exact partials back up with per-node completion
//!   tracking and a timeout window for lost branches.
//!
//! A third mode, **centralized**, reproduces the baseline of Fig. 8: every
//! node routes its raw value to the root with no in-network merging.
//!
//! [`DatProtocol`] is an [`AppProtocol`]: it holds only aggregation state
//! and acts on the overlay through the engine [`Ctx`]. Application-level
//! results surface as [`DatEvent`]s drained via [`StackNode::take_events`].
//! The `impl StackNode` block at the bottom is the host-facing surface —
//! register/set-local/query keep the same shape they had when DAT owned
//! the node, but now compose with any other stacked protocol.

use std::collections::HashMap;

use dat_chord::{
    estimate_d0, hash_to_id, parent_for, ring_size_for_d0, FingerTable, Id, Metrics, NodeAddr,
    NodeRef, NodeStatus, Output, ParentDecision, RoutingScheme, SuspicionLevel,
};
use dat_obs::{trace_id_for, EventKind};

use crate::aggregate::AggPartial;
use crate::codec::{DatMsg, DAT_PROTO};
use crate::engine::{AppProtocol, Ctx, StackNode};

/// How the global value of one aggregation is computed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggregationMode {
    /// Epoch-based push along the implicit DAT tree (the paper's scheme).
    Continuous,
    /// Baseline: raw values routed to the root, no in-network merging.
    Centralized,
}

/// DAT-layer tunables.
#[derive(Clone, Copy, Debug)]
pub struct DatConfig {
    /// Which routing scheme defines parents (basic vs balanced DAT).
    pub scheme: RoutingScheme,
    /// Epoch (time-slot) length for continuous aggregation, ms.
    pub epoch_ms: u64,
    /// A child's partial is kept for this many epochs before expiring
    /// (soft-state churn adaptation).
    pub child_ttl_epochs: u64,
    /// How long an on-demand query waits for missing branches, ms.
    pub query_window_ms: u64,
    /// Continuous mode: after an epoch tick, wait at most this long for the
    /// children's updates of the new epoch before pushing our merged
    /// partial up (the "aggregation synchronization" of §4). Updates
    /// cascade bottom-up within one slot, so the root's report reflects the
    /// *current* epoch's values instead of lagging by the tree height.
    pub hold_ms: u64,
    /// Exact average inter-node gap, when globally known (experiments set
    /// `2^b / n`); `None` means estimate from the local neighborhood.
    pub d0_hint: Option<u64>,
    /// Warm root failover: the acting root replicates its per-key soft
    /// state ([`DatMsg::RootState`]) to this many successors each epoch,
    /// so a root crash loses at most one epoch of reports. `0` disables
    /// replication (cold failover: the new root rebuilds over
    /// `child_ttl_epochs`).
    pub replication_k: usize,
}

impl Default for DatConfig {
    fn default() -> Self {
        DatConfig {
            scheme: RoutingScheme::Balanced,
            epoch_ms: 1_000,
            child_ttl_epochs: 3,
            query_window_ms: 500,
            hold_ms: 250,
            d0_hint: None,
            replication_k: 2,
        }
    }
}

/// Completeness accounting attached to every root report: how much of the
/// grid the report actually covers, and how stale its oldest input may be.
/// A partitioned-away subtree shows up as a measurable `ratio` drop
/// instead of a silent value shift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completeness {
    /// Number of distinct nodes folded into the report.
    pub contributors: u64,
    /// Estimated ring size (from finger/successor density, or the exact
    /// `d0` hint when the experiment provides one).
    pub expected: u64,
    /// `contributors / expected` — 1.0 means full coverage.
    pub ratio: f64,
    /// Upper bound on the age of the oldest constituent sample, ms.
    pub staleness_ms: u64,
    /// Per-key report fence sequence (monotone at the acting root;
    /// replicated to successors so a failed-over root continues it).
    pub seq: u64,
    /// The reporting root's id — `(seq, root)` identifies the fence.
    pub root: Id,
}

/// Results surfaced to the host application.
#[derive(Clone, Debug, PartialEq)]
pub enum DatEvent {
    /// (Root only, continuous/centralized mode) the global partial computed
    /// for one epoch.
    Report {
        /// Rendezvous key of the aggregation.
        key: Id,
        /// Epoch index the report belongs to.
        epoch: u64,
        /// The merged global partial.
        partial: AggPartial,
        /// How much of the grid the report covers (see [`Completeness`]).
        completeness: Completeness,
    },
    /// (Requester side) an on-demand query completed.
    QueryDone {
        /// Request id returned by [`StackNode::query`].
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// The merged global partial.
        partial: AggPartial,
    },
}

/// One registered aggregation (an entry of the §4 "aggregation table").
#[derive(Clone, Debug)]
pub struct AggregationEntry {
    /// Rendezvous key (SHA-1 of the attribute name).
    pub key: Id,
    /// Attribute name, e.g. `"cpu-usage"`.
    pub name: String,
    /// Aggregation mode.
    pub mode: AggregationMode,
    /// Latest local observation, if any.
    pub local: Option<f64>,
    /// Histogram shape `(lo, hi, buckets)` to attach to partials, if any.
    pub histogram: Option<(f64, f64, usize)>,
    /// Distinct-count sketch precision to attach to partials, if any.
    pub distinct_p: Option<u8>,
    /// Identity items this node contributes to the distinct sketch
    /// (e.g. its site name).
    local_items: Vec<Vec<u8>>,
    /// Freshest partial per child id, with the *local* epoch it arrived in.
    children: HashMap<Id, (AggPartial, u64)>,
    /// Last epoch whose partial has been pushed up / reported.
    flushed_epoch: u64,
    /// Root stickiness: we keep acting as the root through this epoch while
    /// the predecessor link is unknown (transient evictions on lossy links
    /// must not silence reports or push partials down-tree, which would
    /// create counting cycles).
    root_until: u64,
    /// The parent the previous flush went to; a switch triggers a prune
    /// notice so the old parent drops our cached partial at once.
    last_parent: Option<NodeRef>,
    /// Old parent still owed prune notices (sent on consecutive flushes —
    /// prunes travel over the same lossy links as everything else).
    prune_old: Option<(NodeRef, u8)>,
    /// (Root, centralized mode) freshest raw sample per node id.
    raw: HashMap<Id, (f64, u64)>,
    /// Highest report-fence sequence observed for this key, either emitted
    /// by this node as root or carried by a replicated
    /// [`DatMsg::RootState`].
    fence_seq: u64,
    /// Who set the fence last. `Some(other)` means another node is the
    /// live root — a sticky ex-root must stand down instead of reporting.
    fence_root: Option<Id>,
    /// Warm-failover replica of the acting root's soft state, adopted if
    /// the key ever remaps here.
    replica: Option<ReplicaState>,
}

/// The acting root's replicated per-key soft state, as received by one of
/// its `k` successors (see [`DatMsg::RootState`]).
#[derive(Clone, Debug)]
struct ReplicaState {
    /// The root that shipped the replica.
    root: Id,
    /// Its report fence sequence at shipping time.
    seq: u64,
    /// Cached child partials with their age (epochs) at shipping time.
    children: Vec<(Id, AggPartial, u64)>,
    /// Centralized-mode raw samples with their age at shipping time.
    raw: Vec<(Id, f64, u64)>,
    /// Local epoch at which the replica arrived (ages the snapshot).
    received_epoch: u64,
}

impl AggregationEntry {
    /// Children that delivered an update this epoch or the previous one —
    /// the set an interior node waits on before cascading its own update.
    pub fn active_children(&self, now_epoch: u64) -> Vec<Id> {
        self.children
            .iter()
            .filter(|(_, (_, e))| now_epoch.saturating_sub(*e) <= 1)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of live (unexpired) children currently known.
    pub fn live_children(&self, now_epoch: u64, ttl: u64) -> usize {
        self.children
            .values()
            .filter(|(_, e)| now_epoch.saturating_sub(*e) <= ttl)
            .count()
    }

    fn base_partial(&self) -> AggPartial {
        let mut p = match self.histogram {
            Some((lo, hi, n)) => AggPartial::identity_with_histogram(lo, hi, n),
            None => AggPartial::identity(),
        };
        if let Some(prec) = self.distinct_p {
            p.distinct = Some(crate::sketch::Hll::new(prec));
            for item in &self.local_items {
                p.observe_item(item);
            }
        }
        p
    }

    /// Merge local value + fresh child partials (continuous mode).
    /// `exclude` drops one cached child — the node we are about to push to.
    /// Under heavy loss, parent decisions can flap so that two nodes
    /// transiently treat each other as parent; reflecting a node's own
    /// partial back at it creates an exponential counting cycle.
    fn merged_partial(&self, now_epoch: u64, ttl: u64, exclude: Option<Id>) -> AggPartial {
        let mut acc = self.base_partial();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        // This node contributes itself exactly once (completeness
        // accounting) — even with no local sensor value it is a live
        // participant relaying its subtree.
        acc.contributors = 1;
        for (child, (p, e)) in self.children.iter() {
            if Some(*child) == exclude {
                continue;
            }
            let age = now_epoch.saturating_sub(*e);
            if age <= ttl {
                // A partial cached for `age` epochs is that much staler
                // than it claims.
                acc.merge_aged(p, age);
            }
        }
        acc
    }

    /// Merge local value + fresh raw samples (centralized root).
    fn merged_raw(&self, now_epoch: u64, ttl: u64) -> AggPartial {
        let mut acc = self.base_partial();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        acc.contributors = 1;
        for (v, e) in self.raw.values() {
            let age = now_epoch.saturating_sub(*e);
            if age <= ttl {
                acc.absorb(*v);
                acc.contributors += 1;
                acc.age_epochs = acc.age_epochs.max(age);
            }
        }
        acc
    }

    /// Fold a warm-failover replica from a previous root into live soft
    /// state. Called when this node finds itself the acting root: the
    /// replicated children/samples (re-aged relative to the local epoch
    /// counter) let the very first report after a root crash cover the
    /// whole grid instead of rebuilding over `child_ttl_epochs`.
    fn adopt_replica(&mut self, me: Id, epoch: u64) {
        if self.replica.as_ref().is_none_or(|r| r.root == me) {
            return;
        }
        let Some(rep) = self.replica.take() else {
            return;
        };
        let lag = epoch.saturating_sub(rep.received_epoch);
        for (id, p, age) in rep.children {
            if id == me {
                continue;
            }
            let stamp = epoch.saturating_sub(age.saturating_add(lag));
            let have_fresher = self.children.get(&id).is_some_and(|(_, e)| *e >= stamp);
            if !have_fresher {
                self.children.insert(id, (p, stamp));
            }
        }
        for (id, v, age) in rep.raw {
            if id == me {
                continue;
            }
            let stamp = epoch.saturating_sub(age.saturating_add(lag));
            let have_fresher = self.raw.get(&id).is_some_and(|(_, e)| *e >= stamp);
            if !have_fresher {
                self.raw.insert(id, (v, stamp));
            }
        }
        // Continue the crashed root's fence so our next report supersedes
        // anything a restarted old root could replay.
        self.fence_seq = self.fence_seq.max(rep.seq);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DatTimer {
    EpochTick,
    QueryWindow(u64),
    /// Flush the continuous partial of one aggregation for the current
    /// epoch (armed at each tick; may be preempted by an early flush when
    /// every recently-active child has already delivered).
    HoldFlush(Id),
}

#[derive(Debug)]
struct QueryState {
    key: Id,
    /// Who awaits our response (`None`: we are the fan-out origin).
    parent: Option<NodeRef>,
    /// (Origin only) who gets the final result.
    requester: Option<NodeRef>,
    awaiting: usize,
    acc: AggPartial,
    done: bool,
}

/// The DAT handler: aggregation table + both aggregate modes, hosted on
/// the shared Chord substrate by a [`StackNode`].
pub struct DatProtocol {
    cfg: DatConfig,
    aggs: HashMap<Id, AggregationEntry>,
    epoch: u64,
    queries: HashMap<u64, QueryState>,
    timers: HashMap<u64, DatTimer>,
    next_token: u64,
    next_reqid: u64,
    metrics: Metrics,
    events: Vec<DatEvent>,
    epoch_timer_armed: bool,
    /// Last epoch in which the DAT parent was liveness-pinged.
    parent_ping_epoch: u64,
    /// Engine clock at the latest epoch tick; the root's report latency
    /// (`epoch_completion_ms` histogram) is measured from here.
    epoch_started_ms: u64,
}

impl DatProtocol {
    /// A fresh DAT handler with the given configuration.
    pub fn new(cfg: DatConfig) -> Self {
        DatProtocol {
            cfg,
            aggs: HashMap::new(),
            epoch: 0,
            queries: HashMap::new(),
            timers: HashMap::new(),
            next_token: 1,
            next_reqid: 0,
            metrics: Metrics::default(),
            events: Vec::new(),
            epoch_timer_armed: false,
            parent_ping_epoch: 0,
            epoch_started_ms: 0,
        }
    }

    /// DAT-layer message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable DAT-layer metrics (e.g. to resize or disable the event
    /// tracer before a long run).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The DAT configuration.
    pub fn config(&self) -> &DatConfig {
        &self.cfg
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered aggregations.
    pub fn aggregations(&self) -> impl Iterator<Item = &AggregationEntry> {
        self.aggs.values()
    }

    /// Look up one aggregation entry.
    pub fn aggregation(&self, key: Id) -> Option<&AggregationEntry> {
        self.aggs.get(&key)
    }

    /// Drain application events produced since the last call.
    pub fn take_events(&mut self) -> Vec<DatEvent> {
        std::mem::take(&mut self.events)
    }

    /// Insert an aggregation entry under a precomputed rendezvous key (the
    /// host-facing name→key hashing lives on [`StackNode::register`]).
    fn register_entry(
        &mut self,
        key: Id,
        name: &str,
        mode: AggregationMode,
        histogram: Option<(f64, f64, usize)>,
    ) {
        self.aggs.entry(key).or_insert_with(|| AggregationEntry {
            key,
            name: name.to_string(),
            mode,
            local: None,
            histogram,
            distinct_p: None,
            local_items: Vec::new(),
            children: HashMap::new(),
            flushed_epoch: 0,
            root_until: 0,
            last_parent: None,
            prune_old: None,
            raw: HashMap::new(),
            fence_seq: 0,
            fence_root: None,
            replica: None,
        });
    }

    /// Update this node's local value for an aggregation (sensor input).
    pub fn set_local(&mut self, key: Id, value: f64) {
        if let Some(e) = self.aggs.get_mut(&key) {
            e.local = Some(value);
        }
    }

    /// Record an identity-bearing item (site, user, job id …) this node
    /// contributes to the aggregation's distinct-count sketch.
    pub fn observe_local_item(&mut self, key: Id, item: &[u8]) {
        if let Some(e) = self.aggs.get_mut(&key) {
            if !e.local_items.iter().any(|i| i == item) {
                e.local_items.push(item.to_vec());
            }
        }
    }

    /// The DAT parent computed for `key` against the given finger table.
    fn decide_parent(&self, table: &FingerTable, key: Id) -> ParentDecision {
        parent_for(self.cfg.scheme, table, key, self.d0(table))
    }

    fn d0(&self, table: &FingerTable) -> u64 {
        self.cfg.d0_hint.unwrap_or_else(|| estimate_d0(table))
    }

    /// Issue an on-demand aggregate query for `key`. The answer arrives as
    /// [`DatEvent::QueryDone`] with the returned request id.
    fn query(&mut self, cx: &mut Ctx<'_>, key: Id) -> u64 {
        let me = cx.me();
        // Seed the reqid namespace from our transport address so ids from
        // different initiators never collide.
        if self.next_reqid == 0 {
            self.next_reqid = me.addr.0 << 24;
        }
        self.next_reqid += 1;
        let reqid = self.next_reqid;
        if cx.owns(key) {
            // We are the root: fan out directly.
            self.begin_fanout(cx, reqid, key, None, Some(me));
        } else {
            let req = DatMsg::Request {
                reqid,
                key,
                requester: me,
            };
            // Query traffic is traced under the request id (routed send:
            // the "peer" is the rendezvous key, not a node).
            self.metrics.on_send(cx.now_ms(), reqid, req.kind(), key.0);
            cx.route(key, req.encode());
        }
        reqid
    }

    fn ensure_epoch_timer(&mut self, cx: &mut Ctx<'_>) {
        if self.epoch_timer_armed || cx.status() != NodeStatus::Active {
            return;
        }
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, DatTimer::EpochTick);
        cx.set_timer(token, self.cfg.epoch_ms);
        self.epoch_timer_armed = true;
    }

    /// One epoch tick: push every continuous aggregation to its parent,
    /// route centralized samples, emit root reports.
    fn on_epoch(&mut self, cx: &mut Ctx<'_>) {
        self.epoch += 1;
        self.epoch_started_ms = cx.now_ms();
        let epoch = self.epoch;
        let ttl = self.cfg.child_ttl_epochs;
        let me = cx.me();
        let keys: Vec<Id> = self.aggs.keys().copied().collect();
        for key in keys {
            // Every epoch of every aggregation gets a causal trace id
            // (identical on every node in a lockstep ring), anchoring the
            // leaf→root event tree for this slot.
            self.metrics.trace(
                cx.now_ms(),
                trace_id_for(key.0, epoch),
                EventKind::EpochStart { key: key.0, epoch },
            );
            let Some(entry) = self.aggs.get(&key) else {
                continue;
            };
            let local = entry.local;
            match entry.mode {
                AggregationMode::Continuous => {
                    // Aggregation synchronization (§4): schedule this
                    // node's push within the slot by its estimated distance
                    // to the root — leaves flush first, the root's children
                    // last — so updates cascade bottom-up inside one epoch.
                    // Nodes whose children have all delivered flush early
                    // (see the Update handler); the timer is the bound.
                    if entry.active_children(epoch).is_empty() {
                        self.flush_continuous(cx, key);
                    } else {
                        let delay = self.flush_delay(cx, key);
                        #[cfg(feature = "trace-flush")]
                        eprintln!("[{:?}] arm hold epoch={epoch} delay={delay}", me.addr);
                        self.next_token += 1;
                        let token = self.next_token;
                        self.timers.insert(token, DatTimer::HoldFlush(key));
                        cx.set_timer(token, delay);
                    }
                }
                AggregationMode::Centralized => {
                    if cx.owns(key) {
                        let (partial, seq) = match self.aggs.get_mut(&key) {
                            Some(e) => {
                                e.adopt_replica(me.id, epoch);
                                e.fence_seq += 1;
                                e.fence_root = Some(me.id);
                                (e.merged_raw(epoch, ttl), e.fence_seq)
                            }
                            None => continue,
                        };
                        let completeness = self.completeness_for(cx, &partial, seq);
                        let tid = trace_id_for(key.0, epoch);
                        self.metrics.trace(
                            cx.now_ms(),
                            tid,
                            EventKind::Report {
                                key: key.0,
                                epoch,
                                contributors: partial.contributors,
                                seq,
                            },
                        );
                        self.metrics.observe(
                            "epoch_completion_ms",
                            cx.now_ms().saturating_sub(self.epoch_started_ms),
                        );
                        self.events.push(DatEvent::Report {
                            key,
                            epoch,
                            partial,
                            completeness,
                        });
                        self.replicate_root_state(cx, key, seq);
                    } else if let Some(v) = local {
                        let msg = DatMsg::RawSample {
                            key,
                            epoch,
                            value: v,
                            sender: me,
                        };
                        self.metrics.on_send(
                            cx.now_ms(),
                            trace_id_for(key.0, epoch),
                            msg.kind(),
                            key.0,
                        );
                        cx.route(key, msg.encode());
                    }
                }
            }
        }
    }

    /// When, within the hold window, this node should push its partial.
    ///
    /// Both routing schemes strictly shrink the clockwise distance `x` to
    /// the rendezvous key on every hop (by at least half), so scheduling
    /// flushes by `log2(x)` — large `x` (deep in the tree) first, small `x`
    /// (near the root) last — guarantees every child's delay is strictly
    /// smaller than its parent's by at least `hold_ms / b` milliseconds.
    /// With the default 250 ms window over a 32-bit space that is ~8 ms per
    /// level, comfortably above LAN latencies, so an epoch's updates
    /// cascade all the way to the root within one slot (the paper's
    /// "aggregation synchronization", §4).
    fn flush_delay(&self, cx: &Ctx<'_>, key: Id) -> u64 {
        if cx.owns(key) {
            // The root sits just past the key, so its clockwise distance to
            // the key wraps the whole ring — special-case it to flush last.
            return self.cfg.hold_ms;
        }
        let space = cx.space();
        let x = space.dist_cw(cx.me().id, key);
        let b = space.bits() as f64;
        // Spread the window over the ~log2(n) levels that actually exist
        // (identifiers below d0 apart collapse into one level), so the gap
        // between adjacent levels is hold/log2(n) rather than hold/b —
        // comfortably above one-way latency even on WANs.
        let d0_log = (self.d0(cx.table()).max(1) as f64).log2();
        let span = (b - d0_log).max(1.0);
        // frac = 1 just behind the key (the root's children), 0 at the far
        // side of the ring (the deepest leaves).
        let frac = 1.0 - ((((x as f64) + 1.0).log2() - d0_log).max(0.0) / span).clamp(0.0, 1.0);
        // Children stay strictly below the root's full-hold flush.
        (self.cfg.hold_ms as f64 * frac * span / (span + 1.0)).round() as u64
    }

    /// Push (or report, at the root) the merged continuous partial of
    /// `key` for the current epoch. Idempotent per epoch.
    fn flush_continuous(&mut self, cx: &mut Ctx<'_>, key: Id) {
        let epoch = self.epoch;
        let ttl = self.cfg.child_ttl_epochs;
        let me = cx.me();
        let Some(entry) = self.aggs.get_mut(&key) else {
            return;
        };
        if entry.mode != AggregationMode::Continuous || entry.flushed_epoch >= epoch {
            #[cfg(feature = "trace-flush")]
            eprintln!(
                "[{:?}] flush skipped epoch={epoch} flushed={}",
                me.addr, entry.flushed_epoch
            );
            return;
        }
        #[cfg(feature = "trace-flush")]
        {
            let stamps: Vec<(u64, u64, f64)> = entry
                .children
                .iter()
                .map(|(id, (p, e))| (id.raw() % 1000, *e, p.sum))
                .collect();
            eprintln!(
                "[{:?}] flush epoch={epoch} local={:?} children={stamps:?}",
                me.addr, entry.local
            );
        }
        entry.flushed_epoch = epoch;
        // Branching factor of the implicit DAT: how many recently-active
        // children fold into this node's push (the paper's Fig. 6 metric).
        let branching = entry.active_children(epoch).len() as u64;
        self.metrics.observe("branching", branching);
        let tid = trace_id_for(key.0, epoch);
        let mut decision = self.decide_parent(cx.table(), key);
        // Proactive failover: a parent the phi-accrual detector suspects is
        // routed around *now*, before any RTO fires — evict it from the
        // routing table (it lands in the fallen queue, so a false positive
        // unifies back) and recompute the parent against what remains.
        // Bounded by the successor-list length so a wholly-suspect table
        // cannot spin; if everything is suspect we push to the last
        // candidate and let the timeout machinery sort it out.
        let mut hops = cx.table().successor_list().len().max(1);
        while let ParentDecision::Parent(p) = decision {
            if hops == 0 || cx.suspicion(p.id) == SuspicionLevel::Healthy {
                break;
            }
            hops -= 1;
            self.metrics.inc("proactive_reparents_total");
            self.metrics
                .trace(cx.now_ms(), tid, EventKind::Suspect { node: p.id.0 });
            cx.evict_suspect(p);
            decision = self.decide_parent(cx.table(), key);
        }
        // Root stickiness: a transiently evicted predecessor makes the ring
        // position uncertain; a recent root keeps reporting rather than
        // pushing its partial *down* the tree (which would both silence the
        // report and create a counting cycle).
        match decision {
            ParentDecision::IAmRoot => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.root_until = epoch + 2;
                    // Warm failover: if a previous root replicated its soft
                    // state here, fold it in before computing this epoch's
                    // partial — the first report after a takeover already
                    // covers the whole grid.
                    let adopting = e.replica.as_ref().is_some_and(|r| r.root != me.id);
                    e.adopt_replica(me.id, epoch);
                    if adopting {
                        let seq = e.fence_seq;
                        self.metrics.trace(
                            cx.now_ms(),
                            tid,
                            EventKind::Failover { key: key.0, seq },
                        );
                    }
                }
            }
            _ => {
                let pred_unknown = cx.table().predecessor().is_none();
                let e = self.aggs.get(&key);
                let sticky = e.map(|e| e.root_until >= epoch).unwrap_or(false);
                // Fencing (at most one report per key per epoch): a sticky
                // ex-root stands down as soon as it has observed the live
                // root's fence — a RootState replica with a sequence at or
                // above its own. Without this, an evicted ex-root keeps
                // reporting for up to 2 epochs *alongside* the true root.
                let fenced_off = e
                    .and_then(|e| e.fence_root)
                    .is_some_and(|root| root != me.id);
                if pred_unknown && sticky {
                    if fenced_off {
                        // A sticky ex-root observed the live root's fence
                        // and stands down instead of double-reporting.
                        let seq = e.map(|e| e.fence_seq).unwrap_or(0);
                        self.metrics.trace(
                            cx.now_ms(),
                            tid,
                            EventKind::FenceReject { key: key.0, seq },
                        );
                    } else {
                        decision = ParentDecision::IAmRoot;
                    }
                }
            }
        }
        let partial = {
            let entry = self.aggs.get(&key).expect("entry exists");
            let mut p = entry.merged_partial(epoch, ttl, decision.parent().map(|p| p.id));
            // Thread the causal epoch id through the wire partial; merges
            // max-combine it, so the root sees the newest epoch's id.
            p.trace_id = p.trace_id.max(tid);
            p
        };
        // Parent switch: tell the old parent to forget our partial so the
        // subtree is never counted along two paths at once. Prunes ride the
        // same lossy links as updates, so each switch schedules two.
        let new_parent = decision.parent();
        if let Some(e) = self.aggs.get_mut(&key) {
            if let Some(old) = e
                .last_parent
                .filter(|old| Some(old.id) != new_parent.map(|p| p.id))
            {
                e.prune_old = Some((old, 2));
            }
            e.last_parent = new_parent;
            // Never prune the node we are about to push to.
            if e.prune_old.map(|(o, _)| Some(o.id)) == Some(new_parent.map(|p| p.id)) {
                e.prune_old = None;
            }
        }
        let prune_to = self.aggs.get_mut(&key).and_then(|e| {
            let (old, n) = e.prune_old?;
            e.prune_old = (n > 1).then_some((old, n - 1));
            Some(old)
        });
        if let Some(old) = prune_to {
            let msg = DatMsg::Prune { key, sender: me };
            self.metrics.on_send(cx.now_ms(), tid, msg.kind(), old.id.0);
            cx.send(old, msg.encode());
        }
        match decision {
            ParentDecision::IAmRoot => {
                let seq = match self.aggs.get_mut(&key) {
                    Some(e) => {
                        e.fence_seq += 1;
                        e.fence_root = Some(me.id);
                        e.fence_seq
                    }
                    None => return,
                };
                let completeness = self.completeness_for(cx, &partial, seq);
                self.metrics.trace(
                    cx.now_ms(),
                    tid,
                    EventKind::Report {
                        key: key.0,
                        epoch,
                        contributors: partial.contributors,
                        seq,
                    },
                );
                self.metrics.observe(
                    "epoch_completion_ms",
                    cx.now_ms().saturating_sub(self.epoch_started_ms),
                );
                self.events.push(DatEvent::Report {
                    key,
                    epoch,
                    partial,
                    completeness,
                });
                self.replicate_root_state(cx, key, seq);
            }
            ParentDecision::Parent(p) => {
                let msg = DatMsg::Update {
                    key,
                    epoch,
                    partial,
                    sender: me,
                };
                // The `dat_update` Send event is the edge record of the
                // causal epoch trace: child = this node, parent = `to`.
                self.metrics.on_send(cx.now_ms(), tid, msg.kind(), p.id.0);
                cx.send(p, msg.encode());
                // Updates are fire-and-forget; probe the parent's liveness
                // once per epoch so a crashed or departed parent is evicted
                // (via the Chord timeout machinery) and next epoch's parent
                // computation routes around it.
                if self.parent_ping_epoch < epoch {
                    self.parent_ping_epoch = epoch;
                    self.metrics.count_sent_kind("dat_parent_ping");
                    cx.ping(p);
                }
            }
            ParentDecision::Unknown => {
                // Table still converging; try again next epoch.
                entry_unknown_rollback(self.aggs.get_mut(&key), epoch);
            }
        }
    }

    /// Completeness accounting for a root report: contributors vs the
    /// ring-size estimate, plus the staleness bound in wall-clock terms.
    fn completeness_for(&self, cx: &Ctx<'_>, partial: &AggPartial, seq: u64) -> Completeness {
        let expected = ring_size_for_d0(cx.space(), self.d0(cx.table()));
        Completeness {
            contributors: partial.contributors,
            expected,
            ratio: if expected == 0 {
                0.0
            } else {
                partial.contributors as f64 / expected as f64
            },
            staleness_ms: partial.age_epochs.saturating_mul(self.cfg.epoch_ms),
            seq,
            root: cx.me().id,
        }
    }

    /// Warm root failover: ship this key's soft state (fresh child
    /// partials + centralized samples, each with its age) and the report
    /// fence to the first `replication_k` successors.
    fn replicate_root_state(&mut self, cx: &mut Ctx<'_>, key: Id, seq: u64) {
        if self.cfg.replication_k == 0 {
            return;
        }
        let targets = cx.successors(self.cfg.replication_k);
        if targets.is_empty() {
            return;
        }
        let epoch = self.epoch;
        let ttl = self.cfg.child_ttl_epochs;
        let Some(entry) = self.aggs.get(&key) else {
            return;
        };
        let children: Vec<(Id, AggPartial, u64)> = entry
            .children
            .iter()
            .filter_map(|(id, (p, e))| {
                let age = epoch.saturating_sub(*e);
                (age <= ttl).then(|| (*id, p.clone(), age))
            })
            .collect();
        let raw: Vec<(Id, f64, u64)> = entry
            .raw
            .iter()
            .filter_map(|(id, (v, e))| {
                let age = epoch.saturating_sub(*e);
                (age <= ttl).then_some((*id, *v, age))
            })
            .collect();
        let msg = DatMsg::RootState {
            key,
            seq,
            root: cx.me(),
            children,
            raw,
        };
        let bytes = msg.encode();
        let kind = msg.kind();
        let tid = trace_id_for(key.0, epoch);
        for t in targets {
            self.metrics.on_send(cx.now_ms(), tid, kind, t.id.0);
            cx.send(t, bytes.clone());
        }
    }

    /// The causal trace id carried by (or derivable from) a DAT message:
    /// query traffic is traced under its request id, epoch traffic under
    /// the partial's threaded [`AggPartial::trace_id`].
    fn msg_trace_id(msg: &DatMsg) -> u64 {
        match msg {
            DatMsg::Update { partial, .. } => partial.trace_id,
            DatMsg::Request { reqid, .. }
            | DatMsg::Query { reqid, .. }
            | DatMsg::Response { reqid, .. }
            | DatMsg::Result { reqid, .. } => *reqid,
            DatMsg::RawSample { key, epoch, .. } => trace_id_for(key.0, *epoch),
            DatMsg::Prune { .. } | DatMsg::RootState { .. } => 0,
        }
    }

    fn on_dat_msg(&mut self, cx: &mut Ctx<'_>, _from: NodeAddr, msg: DatMsg) {
        match msg {
            DatMsg::Update {
                key,
                epoch: _,
                partial,
                sender,
            } => {
                let now_epoch = self.epoch;
                // Stamp with OUR epoch counter: nodes that joined at
                // different times number epochs differently.
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.children.insert(sender.id, (partial, now_epoch));
                }
                // Readiness: every recently-active child has delivered this
                // epoch's partial. A child the failure detector suspects is
                // NOT waited for — its last-known partial still merges
                // (soft state), but the epoch cascades without it, so
                // Completeness degrades instead of the report stalling
                // behind a slow or gray-failed subtree.
                let ready = match self.aggs.get(&key) {
                    Some(e) => {
                        e.flushed_epoch < now_epoch
                            && e.active_children(now_epoch).iter().all(|c| {
                                e.children[c].1 == now_epoch
                                    || cx.suspicion(*c) != SuspicionLevel::Healthy
                            })
                    }
                    None => false,
                };
                if ready {
                    // Every recently-active child has delivered this
                    // epoch's partial: cascade up without waiting for the
                    // hold timer.
                    self.flush_continuous(cx, key);
                }
            }
            DatMsg::RawSample {
                key,
                epoch,
                value,
                sender,
            } => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.raw.insert(sender.id, (value, epoch.max(self.epoch)));
                }
            }
            DatMsg::Request {
                reqid,
                key,
                requester,
            } => {
                self.begin_fanout(cx, reqid, key, None, Some(requester));
            }
            DatMsg::Query {
                reqid,
                key,
                limit,
                parent,
                depth,
            } => {
                self.on_query(cx, reqid, key, limit, parent, depth);
            }
            DatMsg::Response {
                reqid,
                key: _,
                partial,
                sender: _,
            } => {
                let complete = match self.queries.get_mut(&reqid) {
                    Some(q) if !q.done => {
                        q.acc.merge(&partial);
                        q.awaiting = q.awaiting.saturating_sub(1);
                        q.awaiting == 0
                    }
                    _ => false,
                };
                if complete {
                    self.complete_query(cx, reqid);
                }
            }
            DatMsg::Prune { key, sender } => {
                if let Some(e) = self.aggs.get_mut(&key) {
                    e.children.remove(&sender.id);
                }
            }
            DatMsg::RootState {
                key,
                seq,
                root,
                children,
                raw,
            } => {
                let now_epoch = self.epoch;
                if let Some(e) = self.aggs.get_mut(&key) {
                    // Fences only move forward: a replica from a restarted
                    // ex-root replaying a stale sequence is ignored, so it
                    // can neither displace the live root's replica nor
                    // un-fence a stood-down node.
                    if seq >= e.fence_seq {
                        e.fence_seq = seq;
                        e.fence_root = Some(root.id);
                        e.replica = Some(ReplicaState {
                            root: root.id,
                            seq,
                            children,
                            raw,
                            received_epoch: now_epoch,
                        });
                    } else {
                        self.metrics.trace(
                            cx.now_ms(),
                            trace_id_for(key.0, now_epoch),
                            EventKind::FenceReject { key: key.0, seq },
                        );
                    }
                }
            }
            DatMsg::Result {
                reqid,
                key,
                partial,
            } => {
                self.events.push(DatEvent::QueryDone {
                    reqid,
                    key,
                    partial,
                });
            }
        }
    }

    /// Root-side start of an on-demand aggregation: fan out over the whole
    /// ring.
    fn begin_fanout(
        &mut self,
        cx: &mut Ctx<'_>,
        reqid: u64,
        key: Id,
        parent: Option<NodeRef>,
        requester: Option<NodeRef>,
    ) {
        let me = cx.me();
        let acc = self.local_partial(key);
        let sent = self.fan_out_query(cx, reqid, key, me.id, 0);
        let st = QueryState {
            key,
            parent,
            requester,
            awaiting: sent,
            acc,
            done: false,
        };
        self.queries.insert(reqid, st);
        if sent == 0 {
            self.complete_query(cx, reqid);
        } else {
            self.arm_query_window(cx, reqid, 0);
        }
    }

    /// Handle an incoming fan-out query for range `(me, limit)`.
    fn on_query(
        &mut self,
        cx: &mut Ctx<'_>,
        reqid: u64,
        key: Id,
        limit: Id,
        parent: NodeRef,
        depth: u32,
    ) {
        if self.queries.contains_key(&reqid) {
            // Duplicate delivery during churn: answer with identity so the
            // parent's counter still drains.
            let msg = DatMsg::Response {
                reqid,
                key,
                partial: AggPartial::identity(),
                sender: cx.me(),
            };
            self.metrics
                .on_send(cx.now_ms(), reqid, msg.kind(), parent.id.0);
            cx.send(parent, msg.encode());
            return;
        }
        let acc = self.local_partial(key);
        let sent = self.fan_out_query(cx, reqid, key, limit, depth + 1);
        let st = QueryState {
            key,
            parent: Some(parent),
            requester: None,
            awaiting: sent,
            acc,
            done: false,
        };
        self.queries.insert(reqid, st);
        if sent == 0 {
            self.complete_query(cx, reqid);
        } else {
            self.arm_query_window(cx, reqid, depth + 1);
        }
    }

    fn local_partial(&self, key: Id) -> AggPartial {
        match self.aggs.get(&key) {
            Some(e) => {
                let mut p = e.base_partial();
                if let Some(x) = e.local {
                    p.absorb(x);
                }
                p.contributors = 1;
                p
            }
            None => AggPartial::identity(),
        }
    }

    /// Send `Query` messages covering the disjoint finger sub-ranges of
    /// `(me, limit)`. Returns the number of children queried.
    fn fan_out_query(
        &mut self,
        cx: &mut Ctx<'_>,
        reqid: u64,
        key: Id,
        limit: Id,
        depth: u32,
    ) -> usize {
        let space = cx.space();
        let me = cx.me();
        let mut targets: Vec<NodeRef> = Vec::new();
        for (_, fi) in cx.table().iter() {
            let n = fi.node;
            let inside = if limit == me.id {
                n.id != me.id
            } else {
                space.in_open_open(n.id, me.id, limit)
            };
            if inside && !targets.iter().any(|t| t.id == n.id) {
                targets.push(n);
            }
        }
        targets.sort_by_key(|t| space.dist_cw(me.id, t.id));
        let count = targets.len();
        for i in 0..count {
            let sub_limit = if i + 1 < count {
                targets[i + 1].id
            } else {
                limit
            };
            let msg = DatMsg::Query {
                reqid,
                key,
                limit: sub_limit,
                parent: me,
                depth,
            };
            self.metrics
                .on_send(cx.now_ms(), reqid, msg.kind(), targets[i].id.0);
            cx.send(targets[i], msg.encode());
        }
        if count > 0 {
            // Fan-out width per level of the on-demand broadcast tree.
            self.metrics.observe("fanout", count as u64);
        }
        count
    }

    /// Arm the lost-branch timeout for a query. Windows halve with fan-out
    /// depth so that a deep subtree's timeout still fits inside every
    /// ancestor's window — otherwise one lost message below would make the
    /// root close before the (late but complete) deep responses arrive.
    fn arm_query_window(&mut self, cx: &mut Ctx<'_>, reqid: u64, depth: u32) {
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, DatTimer::QueryWindow(reqid));
        let window = (self.cfg.query_window_ms >> depth.min(6)).max(40);
        cx.set_timer(token, window);
    }

    fn on_query_window(&mut self, cx: &mut Ctx<'_>, reqid: u64) {
        let timed_out = matches!(self.queries.get(&reqid), Some(q) if !q.done);
        if timed_out {
            // Lost branches: answer with what we have.
            self.complete_query(cx, reqid);
        }
    }

    fn complete_query(&mut self, cx: &mut Ctx<'_>, reqid: u64) {
        let me = cx.me();
        let Some(q) = self.queries.get_mut(&reqid) else {
            return;
        };
        if q.done {
            return;
        }
        q.done = true;
        let key = q.key;
        let partial = q.acc.clone();
        let parent = q.parent;
        let requester = q.requester;
        match parent {
            Some(p) => {
                let msg = DatMsg::Response {
                    reqid,
                    key,
                    partial,
                    sender: me,
                };
                self.metrics.on_send(cx.now_ms(), reqid, msg.kind(), p.id.0);
                cx.send(p, msg.encode());
            }
            None => match requester {
                Some(r) if r.id == me.id => {
                    self.events.push(DatEvent::QueryDone {
                        reqid,
                        key,
                        partial,
                    });
                }
                Some(r) => {
                    let msg = DatMsg::Result {
                        reqid,
                        key,
                        partial,
                    };
                    self.metrics.on_send(cx.now_ms(), reqid, msg.kind(), r.id.0);
                    cx.send(r, msg.encode());
                }
                None => {}
            },
        }
    }
}

impl AppProtocol for DatProtocol {
    fn proto(&self) -> u8 {
        DAT_PROTO
    }

    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        self.ensure_epoch_timer(cx);
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, from: NodeRef, payload: &[u8]) {
        match DatMsg::decode(payload) {
            Ok(msg) => {
                // App-level senders are real NodeRefs on both transports,
                // so these Recv events are cross-transport comparable.
                self.metrics
                    .on_recv(cx.now_ms(), Self::msg_trace_id(&msg), msg.kind(), from.id.0);
                self.on_dat_msg(cx, from.addr, msg);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn on_timer(&mut self, cx: &mut Ctx<'_>, sub: u64) {
        #[cfg(feature = "trace-flush")]
        eprintln!(
            "[{:?}] AppTimer sub={sub} known={}",
            cx.me().addr,
            self.timers.contains_key(&sub)
        );
        let Some(t) = self.timers.remove(&sub) else {
            return;
        };
        self.metrics
            .trace(cx.now_ms(), 0, EventKind::Timer { token: sub });
        match t {
            DatTimer::EpochTick => {
                self.epoch_timer_armed = false;
                self.on_epoch(cx);
                self.ensure_epoch_timer(cx);
            }
            DatTimer::QueryWindow(reqid) => self.on_query_window(cx, reqid),
            DatTimer::HoldFlush(key) => self.flush_continuous(cx, key),
        }
    }

    fn on_routed(&mut self, cx: &mut Ctx<'_>, _key: Id, origin: NodeRef, payload: &[u8]) {
        match DatMsg::decode(payload) {
            Ok(msg) => {
                self.metrics.on_recv(
                    cx.now_ms(),
                    Self::msg_trace_id(&msg),
                    msg.kind(),
                    origin.id.0,
                );
                self.on_dat_msg(cx, origin.addr, msg);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        Some(&mut self.metrics)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// DAT-specific conveniences on the stack engine — the host-facing API for
/// nodes that (possibly among other protocols) run DAT aggregation. All of
/// these panic if no [`DatProtocol`] is registered.
impl StackNode {
    /// The DAT handler (read-only).
    pub fn dat(&self) -> &DatProtocol {
        self.app::<DatProtocol>()
    }

    /// The DAT handler (mutable, state-only access).
    pub fn dat_mut(&mut self) -> &mut DatProtocol {
        self.app_mut::<DatProtocol>()
    }

    /// Register an aggregation for attribute `name`. The rendezvous key is
    /// the SHA-1 hash of the name (paper §2.3). Returns the key.
    pub fn register(&mut self, name: &str, mode: AggregationMode) -> Id {
        self.register_with_histogram(name, mode, None)
    }

    /// Register an aggregation whose partials carry a histogram digest.
    pub fn register_with_histogram(
        &mut self,
        name: &str,
        mode: AggregationMode,
        histogram: Option<(f64, f64, usize)>,
    ) -> Id {
        let key = hash_to_id(self.space(), name.as_bytes());
        self.dat_mut().register_entry(key, name, mode, histogram);
        key
    }

    /// Register an aggregation whose partials carry a distinct-count
    /// sketch of the given precision (see [`crate::sketch::Hll`]).
    pub fn register_with_distinct(&mut self, name: &str, mode: AggregationMode, p: u8) -> Id {
        let key = self.register(name, mode);
        if let Some(e) = self.dat_mut().aggs.get_mut(&key) {
            e.distinct_p = Some(p);
        }
        key
    }

    /// Update this node's local value for an aggregation (sensor input).
    pub fn set_local(&mut self, key: Id, value: f64) {
        self.dat_mut().set_local(key, value);
    }

    /// Record an identity-bearing item for the distinct-count sketch.
    pub fn observe_local_item(&mut self, key: Id, item: &[u8]) {
        self.dat_mut().observe_local_item(key, item);
    }

    /// Drain DAT application events produced since the last call.
    pub fn take_events(&mut self) -> Vec<DatEvent> {
        self.dat_mut().take_events()
    }

    /// Current DAT epoch index.
    pub fn epoch(&self) -> u64 {
        self.dat().epoch()
    }

    /// Look up one aggregation entry.
    pub fn aggregation(&self, key: Id) -> Option<&AggregationEntry> {
        self.dat().aggregation(key)
    }

    /// DAT-layer message counters.
    pub fn dat_metrics(&self) -> &Metrics {
        self.dat().metrics()
    }

    /// The DAT parent this node currently computes for `key`.
    pub fn parent_decision(&self, key: Id) -> ParentDecision {
        let d = self.dat();
        d.decide_parent(self.table(), key)
    }

    /// Issue an on-demand aggregate query for `key`. The answer arrives as
    /// [`DatEvent::QueryDone`] with the returned request id.
    pub fn query(&mut self, key: Id) -> (u64, Vec<Output>) {
        self.drive::<DatProtocol, _>(move |d, cx| d.query(cx, key))
    }
}

/// Roll back a flush marker when the parent is still unknown, so the next
/// epoch retries instead of silently dropping a slot.
fn entry_unknown_rollback(entry: Option<&mut AggregationEntry>, epoch: u64) {
    if let Some(e) = entry {
        e.flushed_epoch = epoch.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, ChordNode, IdSpace, Input, Output};

    fn mk(id: u64) -> StackNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        StackNode::new(ccfg, Id(id), NodeAddr(id)).with_app(DatProtocol::new(DatConfig::default()))
    }

    fn timer_outputs(outs: &[Output]) -> Vec<dat_chord::TimerKind> {
        outs.iter()
            .filter_map(|o| match o {
                Output::SetTimer { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn register_derives_key_from_name() {
        let mut n = mk(1);
        let k1 = n.register("cpu-usage", AggregationMode::Continuous);
        let k2 = n.register("cpu-usage", AggregationMode::Continuous);
        assert_eq!(k1, k2);
        let k3 = n.register("memory-size", AggregationMode::Continuous);
        assert_ne!(k1, k3);
        assert_eq!(n.dat().aggregations().count(), 2);
        assert_eq!(n.aggregation(k1).unwrap().name, "cpu-usage");
    }

    #[test]
    fn create_arms_epoch_timer() {
        let mut n = mk(1);
        n.register("cpu-usage", AggregationMode::Continuous);
        let outs = n.start_create();
        let timers = timer_outputs(&outs);
        assert!(
            timers
                .iter()
                .any(|t| matches!(t, dat_chord::TimerKind::App(_))),
            "epoch timer must be armed: {timers:?}"
        );
    }

    #[test]
    fn singleton_root_reports_own_value() {
        let mut n = mk(1);
        let key = n.register("cpu-usage", AggregationMode::Continuous);
        let outs = n.start_create();
        n.set_local(key, 55.0);
        // Fire the epoch timer.
        let app = timer_outputs(&outs)
            .into_iter()
            .find(|t| matches!(t, dat_chord::TimerKind::App(_)))
            .unwrap();
        let _ = n.handle(Input::Timer(app));
        let evs = n.take_events();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            DatEvent::Report {
                key: k,
                epoch,
                partial,
                completeness,
            } => {
                assert_eq!(*k, key);
                assert_eq!(*epoch, 1);
                assert_eq!(partial.finalize(crate::aggregate::AggFunc::Sum), 55.0);
                assert_eq!(partial.count, 1);
                // A singleton ring is fully covered by its own report.
                assert_eq!(partial.contributors, 1);
                assert_eq!(completeness.contributors, 1);
                assert_eq!(completeness.expected, 1);
                assert_eq!(completeness.ratio, 1.0);
                assert_eq!(completeness.staleness_ms, 0);
                assert_eq!(completeness.seq, 1);
                assert_eq!(completeness.root, Id(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn singleton_query_completes_instantly() {
        let mut n = mk(1);
        let key = n.register("cpu-usage", AggregationMode::Continuous);
        let _ = n.start_create();
        n.set_local(key, 7.0);
        let (reqid, _) = n.query(key);
        let evs = n.take_events();
        assert_eq!(evs.len(), 1);
        match &evs[0] {
            DatEvent::QueryDone {
                reqid: r, partial, ..
            } => {
                assert_eq!(*r, reqid);
                assert_eq!(partial.sum, 7.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn update_message_absorbed_into_children() {
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 10.0);
        // A fake child pushes a partial.
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(32.0),
            sender: child,
        };
        let _ = root.handle(Input::Message {
            from: NodeAddr(99),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: child,
                payload: upd.encode().into(),
            },
        });
        assert_eq!(root.aggregation(key).unwrap().live_children(1, 3), 1);
        // Next epoch the root report includes the child's value.
        let outs = root.fire_epoch_for_tests();
        let _ = outs;
        let evs = root.take_events();
        let report = evs
            .iter()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(report.count, 2);
        assert_eq!(report.sum, 42.0);
    }

    #[test]
    fn duplicated_update_does_not_inflate_continuous_readout() {
        // Duplicate-delivery tolerance of the continuous path: a child's
        // Update lands in a per-sender slot, so replaying the identical
        // datagram (as a duplicating transport would) overwrites instead of
        // accumulating — Sum/Count stay exact even though
        // `AggPartial::merge` itself is not idempotent.
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 10.0);
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(32.0),
            sender: child,
        };
        for _ in 0..3 {
            let _ = root.handle(Input::Message {
                from: NodeAddr(99),
                msg: dat_chord::ChordMsg::App {
                    proto: DAT_PROTO,
                    from: child,
                    payload: upd.encode().into(),
                },
            });
        }
        assert_eq!(root.aggregation(key).unwrap().live_children(1, 3), 1);
        let _ = root.fire_epoch_for_tests();
        let evs = root.take_events();
        let report = evs
            .iter()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(report.count, 2, "triple delivery must count the child once");
        assert_eq!(report.sum, 42.0);
    }

    #[test]
    fn stale_children_expire() {
        let mut root = mk(1);
        let key = root.register("cpu-usage", AggregationMode::Continuous);
        let _ = root.start_create();
        root.set_local(key, 1.0);
        let child = NodeRef::new(Id(99), NodeAddr(99));
        let upd = DatMsg::Update {
            key,
            epoch: 1,
            partial: AggPartial::of(100.0),
            sender: child,
        };
        let _ = root.handle(Input::Message {
            from: NodeAddr(99),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: child,
                payload: upd.encode().into(),
            },
        });
        // Advance well past the TTL (ttl = 3): 6 epochs.
        for _ in 0..6 {
            let _ = root.fire_epoch_for_tests();
        }
        let evs = root.take_events();
        let last = evs
            .iter()
            .rev()
            .find_map(|e| match e {
                DatEvent::Report { partial, .. } => Some(partial.clone()),
                _ => None,
            })
            .unwrap();
        // Only the local value remains.
        assert_eq!(last.count, 1);
        assert_eq!(last.sum, 1.0);
    }

    #[test]
    fn bad_payload_counted_dropped() {
        let mut n = mk(1);
        let _ = n.start_create();
        let _ = n.handle(Input::Message {
            from: NodeAddr(5),
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: NodeRef::new(Id(5), NodeAddr(5)),
                payload: vec![0xde, 0xad].into(),
            },
        });
        assert_eq!(n.dat_metrics().dropped, 1);
    }

    #[test]
    fn flush_delays_cascade_bottom_up() {
        // Child delays must be strictly below their parent's, and the key
        // owner (root) must flush last.
        use dat_chord::{IdPolicy, StaticRing};
        use rand::SeedableRng;
        let space = IdSpace::new(16);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let ring = StaticRing::build(space, 64, IdPolicy::Probed, &mut rng);
        let key = dat_chord::hash_to_id(space, b"cpu-usage");
        let tree = crate::tree::DatTree::build(&ring, key, RoutingScheme::Balanced);
        let delay_of = |id: Id| {
            let ccfg = ChordConfig {
                space,
                ..ChordConfig::default()
            };
            let chord = ChordNode::new(ccfg, id, NodeAddr(id.raw()));
            let mut node =
                StackNode::from_chord(chord).with_app(DatProtocol::new(DatConfig::default()));
            let table = ring.table_of(id, 4);
            let _ = node.start_with_table(table);
            node.drive::<DatProtocol, _>(|d, cx| d.flush_delay(cx, key))
                .0
        };
        let root_delay = delay_of(tree.root());
        assert_eq!(
            root_delay,
            DatConfig::default().hold_ms,
            "root flushes last"
        );
        for (child, parent) in tree.edges() {
            let dc = delay_of(child);
            let dp = delay_of(parent);
            assert!(
                dc < dp || parent == tree.root(),
                "child {child} delay {dc} !< parent {parent} delay {dp}"
            );
            if parent == tree.root() {
                assert!(dc < root_delay, "child {child} !< root");
            }
        }
    }

    #[test]
    fn fenced_ex_root_stands_down() {
        use dat_chord::FingerTable;
        // A sticky ex-root (predecessor unknown, root_until in the future)
        // keeps reporting — until it observes the live root's fence, after
        // which at most one node reports per key per epoch.
        let space = IdSpace::new(8);
        let ccfg = ChordConfig {
            space,
            ..ChordConfig::default()
        };
        let mut probe = mk(1);
        let key = probe.register("cpu-usage", AggregationMode::Continuous);
        // Place ourselves half a ring away from the key with one successor
        // just clockwise of us: the real parent decision is Parent(succ).
        let me = NodeRef::new(Id((key.raw() + 128) % 256), NodeAddr(10));
        let succ = NodeRef::new(Id((me.id.raw() + 1) % 256), NodeAddr(11));
        let mut n =
            StackNode::new(ccfg, me.id, me.addr).with_app(DatProtocol::new(DatConfig::default()));
        let k2 = n.register("cpu-usage", AggregationMode::Continuous);
        assert_eq!(key, k2);
        let mut table = FingerTable::new(space, me, 4);
        table.set_successor(succ);
        let _ = n.start_with_table(table);
        n.set_local(key, 5.0);
        // Pretend we were recently the acting root.
        n.app_mut::<DatProtocol>()
            .aggs
            .get_mut(&key)
            .unwrap()
            .root_until = 10;
        let _ = n.fire_epoch_for_tests();
        let reports = n
            .take_events()
            .into_iter()
            .filter(|e| matches!(e, DatEvent::Report { .. }))
            .count();
        assert_eq!(reports, 1, "sticky ex-root keeps reporting while unfenced");
        // The live root's replica arrives: seq at/above ours, another root.
        let fence = DatMsg::RootState {
            key,
            seq: 7,
            root: succ,
            children: Vec::new(),
            raw: Vec::new(),
        };
        let _ = n.handle(Input::Message {
            from: succ.addr,
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: succ,
                payload: fence.encode().into(),
            },
        });
        let _ = n.fire_epoch_for_tests();
        let evs = n.take_events();
        assert!(
            !evs.iter().any(|e| matches!(e, DatEvent::Report { .. })),
            "fenced ex-root must stand down, got {evs:?}"
        );
    }

    #[test]
    fn adopted_replica_warms_first_report() {
        use dat_chord::FingerTable;
        // A node that becomes root with a RootState replica on hand must
        // cover the crashed root's children in its *first* report and
        // continue the report fence past the replicated sequence.
        let space = IdSpace::new(8);
        let ccfg = ChordConfig {
            space,
            ..ChordConfig::default()
        };
        let mut probe = mk(1);
        let key = probe.register("cpu-usage", AggregationMode::Continuous);
        // We own the key: predecessor just counter-clockwise of it.
        let me = NodeRef::new(Id((key.raw() + 1) % 256), NodeAddr(10));
        let pred = NodeRef::new(Id((key.raw() + 251) % 256), NodeAddr(11));
        let succ = NodeRef::new(Id((me.id.raw() + 50) % 256), NodeAddr(12));
        let mut n =
            StackNode::new(ccfg, me.id, me.addr).with_app(DatProtocol::new(DatConfig::default()));
        let _ = n.register("cpu-usage", AggregationMode::Continuous);
        let mut table = FingerTable::new(space, me, 4);
        table.set_successor(succ);
        table.set_predecessor(Some(pred));
        let _ = n.start_with_table(table);
        n.set_local(key, 1.0);
        let mut child_partial = AggPartial::of(5.0);
        child_partial.contributors = 3; // a three-node subtree
        let rep = DatMsg::RootState {
            key,
            seq: 7,
            root: pred,
            children: vec![(Id(99), child_partial, 0)],
            raw: Vec::new(),
        };
        let _ = n.handle(Input::Message {
            from: pred.addr,
            msg: dat_chord::ChordMsg::App {
                proto: DAT_PROTO,
                from: pred,
                payload: rep.encode().into(),
            },
        });
        let _ = n.fire_epoch_for_tests();
        let evs = n.take_events();
        let (partial, completeness) = evs
            .iter()
            .find_map(|e| match e {
                DatEvent::Report {
                    partial,
                    completeness,
                    ..
                } => Some((partial.clone(), *completeness)),
                _ => None,
            })
            .expect("new root must report in its first epoch");
        assert_eq!(partial.contributors, 4, "self + adopted 3-node subtree");
        assert_eq!(partial.sum, 6.0);
        assert_eq!(completeness.seq, 8, "fence continues past the replica");
        // The adopted snapshot is one epoch old by local reckoning.
        assert_eq!(completeness.staleness_ms, DatConfig::default().epoch_ms);
    }

    impl StackNode {
        /// Test helper: fire one epoch synchronously, including any hold
        /// flush the tick armed.
        fn fire_epoch_for_tests(&mut self) -> Vec<Output> {
            let (keys, mut outs) = self.drive::<DatProtocol, _>(|d, cx| {
                d.on_epoch(cx);
                d.aggs.keys().copied().collect::<Vec<_>>()
            });
            for key in keys {
                let ((), more) = self.drive::<DatProtocol, _>(|d, cx| d.flush_continuous(cx, key));
                outs.extend(more);
            }
            outs
        }
    }
}
