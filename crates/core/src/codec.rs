//! Binary wire codec for DAT-layer messages.
//!
//! DAT messages ride inside [`dat_chord::ChordMsg::App`] payloads (and over
//! the UDP RPC transport), so they need a compact, self-describing binary
//! form. The format is hand-rolled little-endian TLV-free framing: a 1-byte
//! message tag followed by fixed-order fields. No serde on the wire — the
//! format is stable, versioned by [`WIRE_VERSION`], and fuzzable.

use dat_chord::{Id, NodeAddr, NodeRef};

use crate::aggregate::{AggPartial, Histogram};
use crate::sketch::Hll;

/// Wire-format version, bumped on incompatible changes.
pub const WIRE_VERSION: u8 = 1;

/// Application-protocol discriminator for DAT messages inside
/// [`dat_chord::ChordMsg::App`].
pub const DAT_PROTO: u8 = 1;

/// Decoding errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field being read.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Unsupported wire version.
    BadVersion(u8),
    /// A length field exceeded sane bounds.
    BadLength(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::BadLength(l) => write!(f, "implausible length {l}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Writer {
            buf: Vec::with_capacity(64),
        }
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64` (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a ring identifier.
    pub fn id(&mut self, v: Id) -> &mut Self {
        self.u64(v.raw())
    }

    /// Append a node reference (id + transport address).
    pub fn node_ref(&mut self, v: NodeRef) -> &mut Self {
        self.id(v.id).u64(v.addr.0)
    }

    /// Append an optional node reference (presence byte).
    pub fn opt_node_ref(&mut self, v: Option<NodeRef>) -> &mut Self {
        match v {
            Some(n) => self.u8(1).node_ref(n),
            None => self.u8(0),
        }
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append an aggregate partial.
    pub fn partial(&mut self, p: &AggPartial) -> &mut Self {
        self.u64(p.count)
            .f64(p.sum)
            .f64(p.sum_sq)
            .f64(p.min)
            .f64(p.max);
        match &p.histogram {
            Some(h) => {
                self.u8(1).f64(h.lo).f64(h.hi).u32(h.buckets.len() as u32);
                for &b in &h.buckets {
                    self.u64(b);
                }
            }
            None => {
                self.u8(0);
            }
        }
        match &p.distinct {
            Some(h) => {
                self.u8(1).bytes(h.registers());
            }
            None => {
                self.u8(0);
            }
        }
        self
    }
}

/// Cursor-based decoder.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a ring identifier.
    pub fn id(&mut self) -> Result<Id, CodecError> {
        Ok(Id(self.u64()?))
    }

    /// Read a node reference.
    pub fn node_ref(&mut self) -> Result<NodeRef, CodecError> {
        let id = self.id()?;
        let addr = NodeAddr(self.u64()?);
        Ok(NodeRef::new(id, addr))
    }

    /// Read an optional node reference.
    pub fn opt_node_ref(&mut self) -> Result<Option<NodeRef>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.node_ref()?)),
        }
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength(len as u64));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn str(&mut self) -> Result<String, CodecError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Read an aggregate partial.
    pub fn partial(&mut self) -> Result<AggPartial, CodecError> {
        let count = self.u64()?;
        let sum = self.f64()?;
        let sum_sq = self.f64()?;
        let min = self.f64()?;
        let max = self.f64()?;
        let histogram = match self.u8()? {
            0 => None,
            _ => {
                let lo = self.f64()?;
                let hi = self.f64()?;
                let n = self.u32()? as usize;
                if n == 0 || n > 1 << 20 || n * 8 > self.remaining() {
                    return Err(CodecError::BadLength(n as u64));
                }
                let mut buckets = Vec::with_capacity(n);
                for _ in 0..n {
                    buckets.push(self.u64()?);
                }
                Some(Histogram { lo, hi, buckets })
            }
        };
        let distinct = match self.u8()? {
            0 => None,
            _ => {
                let regs = self.bytes()?.to_vec();
                match Hll::from_registers(regs) {
                    Some(h) => Some(h),
                    None => return Err(CodecError::BadLength(0)),
                }
            }
        };
        Ok(AggPartial {
            count,
            sum,
            sum_sq,
            min,
            max,
            histogram,
            distinct,
        })
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            Err(CodecError::TrailingBytes(self.remaining()))
        } else {
            Ok(())
        }
    }
}

/// The DAT-layer protocol messages (paper §4: on-demand and continuous
/// aggregate modes).
#[derive(Clone, Debug, PartialEq)]
pub enum DatMsg {
    /// Continuous mode: a child pushes its merged partial for `epoch` to
    /// its current DAT parent.
    Update {
        /// Rendezvous key of the aggregation (the tree id).
        key: Id,
        /// Epoch (time slot) index the partial belongs to.
        epoch: u64,
        /// The merged partial (sender's subtree).
        partial: AggPartial,
        /// The pushing child (soft-state child registry key).
        sender: NodeRef,
    },
    /// On-demand mode: fan-out query over finger sub-ranges. The receiver
    /// is responsible for `(receiver, limit)` and must answer `parent`.
    Query {
        /// Request id, unique at the initiator.
        reqid: u64,
        /// Rendezvous key of the aggregation being queried.
        key: Id,
        /// Exclusive end of the receiver's responsibility range.
        limit: Id,
        /// The node awaiting this receiver's response.
        parent: NodeRef,
        /// Fan-out depth (diagnostics).
        depth: u32,
    },
    /// On-demand mode: a subtree's merged partial flowing back up.
    Response {
        /// Request id of the query being answered.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// Merged partial of the responding subtree.
        partial: AggPartial,
        /// The responding node.
        sender: NodeRef,
    },
    /// Final answer delivered to the query's requester.
    Result {
        /// Request id of the completed query.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// The global partial.
        partial: AggPartial,
    },
    /// A request routed through Chord to the tree root, asking it to start
    /// an on-demand aggregation on the requester's behalf.
    Request {
        /// Request id chosen by the requester.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// Where the final [`DatMsg::Result`] must be sent.
        requester: NodeRef,
    },
    /// Continuous mode: the sender switched to a different parent; the
    /// receiver must drop the sender's cached partial immediately (without
    /// this, the old and new parent both forward the sender's subtree for
    /// up to the soft-state TTL — duplicate counting that compounds per
    /// tree level under heavy churn or loss).
    Prune {
        /// Rendezvous key.
        key: Id,
        /// The child that moved away.
        sender: NodeRef,
    },
    /// Centralized-baseline sample: a raw local value sent (via Chord
    /// routing) straight to the root, no in-network merging.
    RawSample {
        /// Rendezvous key.
        key: Id,
        /// Epoch the sample belongs to.
        epoch: u64,
        /// The raw local value.
        value: f64,
        /// The sampling node.
        sender: NodeRef,
    },
}

impl DatMsg {
    /// Metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            DatMsg::Update { .. } => "dat_update",
            DatMsg::Query { .. } => "dat_query",
            DatMsg::Response { .. } => "dat_response",
            DatMsg::Result { .. } => "dat_result",
            DatMsg::Request { .. } => "dat_request",
            DatMsg::Prune { .. } => "dat_prune",
            DatMsg::RawSample { .. } => "dat_raw_sample",
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        match self {
            DatMsg::Update {
                key,
                epoch,
                partial,
                sender,
            } => {
                w.u8(1)
                    .id(*key)
                    .u64(*epoch)
                    .partial(partial)
                    .node_ref(*sender);
            }
            DatMsg::Query {
                reqid,
                key,
                limit,
                parent,
                depth,
            } => {
                w.u8(2)
                    .u64(*reqid)
                    .id(*key)
                    .id(*limit)
                    .node_ref(*parent)
                    .u32(*depth);
            }
            DatMsg::Response {
                reqid,
                key,
                partial,
                sender,
            } => {
                w.u8(3)
                    .u64(*reqid)
                    .id(*key)
                    .partial(partial)
                    .node_ref(*sender);
            }
            DatMsg::Result {
                reqid,
                key,
                partial,
            } => {
                w.u8(4).u64(*reqid).id(*key).partial(partial);
            }
            DatMsg::Request {
                reqid,
                key,
                requester,
            } => {
                w.u8(5).u64(*reqid).id(*key).node_ref(*requester);
            }
            DatMsg::RawSample {
                key,
                epoch,
                value,
                sender,
            } => {
                w.u8(6).id(*key).u64(*epoch).f64(*value).node_ref(*sender);
            }
            DatMsg::Prune { key, sender } => {
                w.u8(7).id(*key).node_ref(*sender);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes (must consume the whole input).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let tag = r.u8()?;
        let msg = match tag {
            1 => DatMsg::Update {
                key: r.id()?,
                epoch: r.u64()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            2 => DatMsg::Query {
                reqid: r.u64()?,
                key: r.id()?,
                limit: r.id()?,
                parent: r.node_ref()?,
                depth: r.u32()?,
            },
            3 => DatMsg::Response {
                reqid: r.u64()?,
                key: r.id()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            4 => DatMsg::Result {
                reqid: r.u64()?,
                key: r.id()?,
                partial: r.partial()?,
            },
            5 => DatMsg::Request {
                reqid: r.u64()?,
                key: r.id()?,
                requester: r.node_ref()?,
            },
            6 => DatMsg::RawSample {
                key: r.id()?,
                epoch: r.u64()?,
                value: r.f64()?,
                sender: r.node_ref()?,
            },
            7 => DatMsg::Prune {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            t => return Err(CodecError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id + 1000))
    }

    fn sample_partial() -> AggPartial {
        let mut p = AggPartial::identity_with_histogram(0.0, 100.0, 8);
        p.absorb(42.0);
        p.absorb(7.5);
        p.distinct = Some(crate::sketch::Hll::new(6));
        p.observe_item(b"site-a");
        p.observe_item(b"site-b");
        p
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            DatMsg::Update {
                key: Id(77),
                epoch: 9,
                partial: sample_partial(),
                sender: nr(3),
            },
            DatMsg::Query {
                reqid: u64::MAX,
                key: Id(0),
                limit: Id(u64::MAX),
                parent: nr(12),
                depth: 4,
            },
            DatMsg::Response {
                reqid: 5,
                key: Id(1),
                partial: AggPartial::identity(),
                sender: nr(9),
            },
            DatMsg::Result {
                reqid: 0,
                key: Id(123),
                partial: AggPartial::of(-1.25),
            },
            DatMsg::Request {
                reqid: 42,
                key: Id(55),
                requester: nr(200),
            },
            DatMsg::RawSample {
                key: Id(8),
                epoch: 3,
                value: 99.9,
                sender: nr(4),
            },
            DatMsg::Prune {
                key: Id(15),
                sender: nr(6),
            },
        ];
        for m in msgs {
            let bytes = m.encode();
            let back = DatMsg::decode(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let m = DatMsg::Update {
            key: Id(77),
            epoch: 9,
            partial: sample_partial(),
            sender: nr(3),
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                DatMsg::decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = DatMsg::Result {
            reqid: 1,
            key: Id(2),
            partial: AggPartial::identity(),
        }
        .encode();
        bytes.push(0xFF);
        assert_eq!(DatMsg::decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tag_and_version() {
        assert_eq!(
            DatMsg::decode(&[WIRE_VERSION, 99]),
            Err(CodecError::BadTag(99))
        );
        assert_eq!(DatMsg::decode(&[42, 1]), Err(CodecError::BadVersion(42)));
        assert_eq!(DatMsg::decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn hostile_histogram_length_rejected() {
        // Hand-craft an Update whose histogram claims 2^30 buckets.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).u8(1).id(Id(1)).u64(0);
        w.u64(1).f64(1.0).f64(1.0).f64(1.0).f64(1.0); // partial scalars
        w.u8(1).f64(0.0).f64(1.0).u32(1 << 30); // absurd bucket count
        let bytes = w.finish();
        assert!(matches!(
            DatMsg::decode(&bytes),
            Err(CodecError::BadLength(_)) | Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        let mut p = AggPartial::identity();
        // Empty partial has ±inf extremes — must survive the wire.
        p.sum = f64::NAN;
        let m = DatMsg::Response {
            reqid: 1,
            key: Id(1),
            partial: p,
            sender: nr(1),
        };
        let back = DatMsg::decode(&m.encode()).unwrap();
        match back {
            DatMsg::Response { partial, .. } => {
                assert!(partial.sum.is_nan());
                assert_eq!(partial.min, f64::INFINITY);
                assert_eq!(partial.max, f64::NEG_INFINITY);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn writer_reader_primitives() {
        let mut w = Writer::new();
        w.u8(7).u32(1234).u64(u64::MAX).f64(2.5).str("cpu-usage");
        w.opt_node_ref(None).opt_node_ref(Some(nr(9)));
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 1234);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.str().unwrap(), "cpu-usage");
        assert_eq!(r.opt_node_ref().unwrap(), None);
        assert_eq!(r.opt_node_ref().unwrap(), Some(nr(9)));
        r.expect_end().unwrap();
    }
}
