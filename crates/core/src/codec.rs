//! Binary wire codec for DAT-layer messages.
//!
//! DAT messages ride inside [`dat_chord::ChordMsg::App`] payloads (and over
//! the UDP RPC transport), so they need a compact, self-describing binary
//! form. The format is hand-rolled little-endian TLV-free framing: a 1-byte
//! message tag followed by fixed-order fields. No serde on the wire — the
//! format is stable, versioned by [`WIRE_VERSION`], and fuzzable.
//!
//! The byte-level primitives ([`Writer`], [`Reader`], [`CodecError`]) are
//! the workspace-shared ones from [`dat_chord::wire`]; this module adds the
//! aggregation vocabulary on top — [`AggPartial`] fields via the
//! [`WritePartial`]/[`ReadPartial`] extension traits, and the [`DatMsg`]
//! message set itself.

use dat_chord::{Id, NodeRef};

use crate::aggregate::{AggPartial, Histogram};
use crate::sketch::Hll;

pub use dat_chord::wire::{CodecError, Reader, Writer};

/// Wire-format version, bumped on incompatible changes.
///
/// v2: [`AggPartial`] gained `contributors`/`age_epochs` (completeness
/// accounting) and [`DatMsg::RootState`] was added (warm root failover).
/// v3: [`AggPartial`] gained `trace_id` (causal epoch tracing).
pub const WIRE_VERSION: u8 = 3;

/// Application-protocol discriminator for DAT messages inside
/// [`dat_chord::ChordMsg::App`].
pub const DAT_PROTO: u8 = 1;

/// Extension: encode an [`AggPartial`] onto a shared [`Writer`].
pub trait WritePartial {
    /// Append an aggregate partial.
    fn partial(&mut self, p: &AggPartial) -> &mut Self;
}

impl WritePartial for Writer {
    fn partial(&mut self, p: &AggPartial) -> &mut Self {
        self.u64(p.count)
            .f64(p.sum)
            .f64(p.sum_sq)
            .f64(p.min)
            .f64(p.max)
            .u64(p.contributors)
            .u64(p.age_epochs)
            .u64(p.trace_id);
        match &p.histogram {
            Some(h) => {
                self.u8(1).f64(h.lo).f64(h.hi).u32(h.buckets.len() as u32);
                for &b in &h.buckets {
                    self.u64(b);
                }
            }
            None => {
                self.u8(0);
            }
        }
        match &p.distinct {
            Some(h) => {
                self.u8(1).bytes(h.registers());
            }
            None => {
                self.u8(0);
            }
        }
        self
    }
}

/// Extension: decode an [`AggPartial`] from a shared [`Reader`].
pub trait ReadPartial {
    /// Read an aggregate partial.
    fn partial(&mut self) -> Result<AggPartial, CodecError>;
}

impl ReadPartial for Reader<'_> {
    fn partial(&mut self) -> Result<AggPartial, CodecError> {
        let count = self.u64()?;
        let sum = self.f64()?;
        let sum_sq = self.f64()?;
        let min = self.f64()?;
        let max = self.f64()?;
        let contributors = self.u64()?;
        let age_epochs = self.u64()?;
        let trace_id = self.u64()?;
        let histogram = match self.u8()? {
            0 => None,
            _ => {
                let lo = self.f64()?;
                let hi = self.f64()?;
                let n = self.u32()? as usize;
                if n == 0 || n > 1 << 20 || n * 8 > self.remaining() {
                    return Err(CodecError::BadLength(n as u64));
                }
                let mut buckets = Vec::with_capacity(n);
                for _ in 0..n {
                    buckets.push(self.u64()?);
                }
                Some(Histogram { lo, hi, buckets })
            }
        };
        let distinct = match self.u8()? {
            0 => None,
            _ => {
                let regs = self.bytes()?.to_vec();
                match Hll::from_registers(regs) {
                    Some(h) => Some(h),
                    None => return Err(CodecError::BadLength(0)),
                }
            }
        };
        Ok(AggPartial {
            count,
            sum,
            sum_sq,
            min,
            max,
            histogram,
            distinct,
            contributors,
            age_epochs,
            trace_id,
        })
    }
}

/// The DAT-layer protocol messages (paper §4: on-demand and continuous
/// aggregate modes).
#[derive(Clone, Debug, PartialEq)]
pub enum DatMsg {
    /// Continuous mode: a child pushes its merged partial for `epoch` to
    /// its current DAT parent.
    Update {
        /// Rendezvous key of the aggregation (the tree id).
        key: Id,
        /// Epoch (time slot) index the partial belongs to.
        epoch: u64,
        /// The merged partial (sender's subtree).
        partial: AggPartial,
        /// The pushing child (soft-state child registry key).
        sender: NodeRef,
    },
    /// On-demand mode: fan-out query over finger sub-ranges. The receiver
    /// is responsible for `(receiver, limit)` and must answer `parent`.
    Query {
        /// Request id, unique at the initiator.
        reqid: u64,
        /// Rendezvous key of the aggregation being queried.
        key: Id,
        /// Exclusive end of the receiver's responsibility range.
        limit: Id,
        /// The node awaiting this receiver's response.
        parent: NodeRef,
        /// Fan-out depth (diagnostics).
        depth: u32,
    },
    /// On-demand mode: a subtree's merged partial flowing back up.
    Response {
        /// Request id of the query being answered.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// Merged partial of the responding subtree.
        partial: AggPartial,
        /// The responding node.
        sender: NodeRef,
    },
    /// Final answer delivered to the query's requester.
    Result {
        /// Request id of the completed query.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// The global partial.
        partial: AggPartial,
    },
    /// A request routed through Chord to the tree root, asking it to start
    /// an on-demand aggregation on the requester's behalf.
    Request {
        /// Request id chosen by the requester.
        reqid: u64,
        /// Rendezvous key.
        key: Id,
        /// Where the final [`DatMsg::Result`] must be sent.
        requester: NodeRef,
    },
    /// Continuous mode: the sender switched to a different parent; the
    /// receiver must drop the sender's cached partial immediately (without
    /// this, the old and new parent both forward the sender's subtree for
    /// up to the soft-state TTL — duplicate counting that compounds per
    /// tree level under heavy churn or loss).
    Prune {
        /// Rendezvous key.
        key: Id,
        /// The child that moved away.
        sender: NodeRef,
    },
    /// Warm-failover replication: the acting root ships a snapshot of its
    /// per-key soft state (freshest child partials and centralized raw
    /// samples, each with its age in epochs) to its first `k` successors.
    /// When the rendezvous key remaps after a root crash, the successor
    /// resumes reporting from this replica within one epoch instead of
    /// rebuilding from scratch. `seq` is the per-key fencing sequence: a
    /// receiver that has seen `(seq, root)` from the live root refuses to
    /// report with a stale or equal sequence of its own, so a restarted or
    /// evicted ex-root cannot split-brain the report stream.
    RootState {
        /// Rendezvous key of the replicated aggregation.
        key: Id,
        /// Monotone per-key report sequence at the replicating root.
        seq: u64,
        /// The replicating root (fence identity).
        root: NodeRef,
        /// Cached child partials: `(child id, partial, age in epochs)`.
        children: Vec<(Id, AggPartial, u64)>,
        /// Centralized-mode raw samples: `(sender id, value, age)`.
        raw: Vec<(Id, f64, u64)>,
    },
    /// Centralized-baseline sample: a raw local value sent (via Chord
    /// routing) straight to the root, no in-network merging.
    RawSample {
        /// Rendezvous key.
        key: Id,
        /// Epoch the sample belongs to.
        epoch: u64,
        /// The raw local value.
        value: f64,
        /// The sampling node.
        sender: NodeRef,
    },
}

impl DatMsg {
    /// Metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            DatMsg::Update { .. } => "dat_update",
            DatMsg::Query { .. } => "dat_query",
            DatMsg::Response { .. } => "dat_response",
            DatMsg::Result { .. } => "dat_result",
            DatMsg::Request { .. } => "dat_request",
            DatMsg::Prune { .. } => "dat_prune",
            DatMsg::RawSample { .. } => "dat_raw_sample",
            DatMsg::RootState { .. } => "dat_root_state",
        }
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        match self {
            DatMsg::Update {
                key,
                epoch,
                partial,
                sender,
            } => {
                w.u8(1)
                    .id(*key)
                    .u64(*epoch)
                    .partial(partial)
                    .node_ref(*sender);
            }
            DatMsg::Query {
                reqid,
                key,
                limit,
                parent,
                depth,
            } => {
                w.u8(2)
                    .u64(*reqid)
                    .id(*key)
                    .id(*limit)
                    .node_ref(*parent)
                    .u32(*depth);
            }
            DatMsg::Response {
                reqid,
                key,
                partial,
                sender,
            } => {
                w.u8(3)
                    .u64(*reqid)
                    .id(*key)
                    .partial(partial)
                    .node_ref(*sender);
            }
            DatMsg::Result {
                reqid,
                key,
                partial,
            } => {
                w.u8(4).u64(*reqid).id(*key).partial(partial);
            }
            DatMsg::Request {
                reqid,
                key,
                requester,
            } => {
                w.u8(5).u64(*reqid).id(*key).node_ref(*requester);
            }
            DatMsg::RawSample {
                key,
                epoch,
                value,
                sender,
            } => {
                w.u8(6).id(*key).u64(*epoch).f64(*value).node_ref(*sender);
            }
            DatMsg::Prune { key, sender } => {
                w.u8(7).id(*key).node_ref(*sender);
            }
            DatMsg::RootState {
                key,
                seq,
                root,
                children,
                raw,
            } => {
                w.u8(8)
                    .id(*key)
                    .u64(*seq)
                    .node_ref(*root)
                    .u32(children.len() as u32);
                for (id, partial, age) in children {
                    w.id(*id).u64(*age).partial(partial);
                }
                w.u32(raw.len() as u32);
                for (id, value, age) in raw {
                    w.id(*id).f64(*value).u64(*age);
                }
            }
        }
        w.finish()
    }

    /// Decode from wire bytes (must consume the whole input).
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let tag = r.u8()?;
        let msg = match tag {
            1 => DatMsg::Update {
                key: r.id()?,
                epoch: r.u64()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            2 => DatMsg::Query {
                reqid: r.u64()?,
                key: r.id()?,
                limit: r.id()?,
                parent: r.node_ref()?,
                depth: r.u32()?,
            },
            3 => DatMsg::Response {
                reqid: r.u64()?,
                key: r.id()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            4 => DatMsg::Result {
                reqid: r.u64()?,
                key: r.id()?,
                partial: r.partial()?,
            },
            5 => DatMsg::Request {
                reqid: r.u64()?,
                key: r.id()?,
                requester: r.node_ref()?,
            },
            6 => DatMsg::RawSample {
                key: r.id()?,
                epoch: r.u64()?,
                value: r.f64()?,
                sender: r.node_ref()?,
            },
            7 => DatMsg::Prune {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            8 => {
                let key = r.id()?;
                let seq = r.u64()?;
                let root = r.node_ref()?;
                let n = r.u32()? as usize;
                // A child entry is at least id + age + partial scalars.
                if n * 16 > r.remaining() {
                    return Err(CodecError::BadLength(n as u64));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.id()?;
                    let age = r.u64()?;
                    children.push((id, r.partial()?, age));
                }
                let m = r.u32()? as usize;
                if m * 24 > r.remaining() {
                    return Err(CodecError::BadLength(m as u64));
                }
                let mut raw = Vec::with_capacity(m);
                for _ in 0..m {
                    raw.push((r.id()?, r.f64()?, r.u64()?));
                }
                DatMsg::RootState {
                    key,
                    seq,
                    root,
                    children,
                    raw,
                }
            }
            t => return Err(CodecError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::NodeAddr;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id + 1000))
    }

    fn sample_partial() -> AggPartial {
        let mut p = AggPartial::identity_with_histogram(0.0, 100.0, 8);
        p.absorb(42.0);
        p.absorb(7.5);
        p.distinct = Some(crate::sketch::Hll::new(6));
        p.observe_item(b"site-a");
        p.observe_item(b"site-b");
        p.contributors = 2;
        p.age_epochs = 3;
        p.trace_id = 0xDEAD_BEEF;
        p
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            DatMsg::Update {
                key: Id(77),
                epoch: 9,
                partial: sample_partial(),
                sender: nr(3),
            },
            DatMsg::Query {
                reqid: u64::MAX,
                key: Id(0),
                limit: Id(u64::MAX),
                parent: nr(12),
                depth: 4,
            },
            DatMsg::Response {
                reqid: 5,
                key: Id(1),
                partial: AggPartial::identity(),
                sender: nr(9),
            },
            DatMsg::Result {
                reqid: 0,
                key: Id(123),
                partial: AggPartial::of(-1.25),
            },
            DatMsg::Request {
                reqid: 42,
                key: Id(55),
                requester: nr(200),
            },
            DatMsg::RawSample {
                key: Id(8),
                epoch: 3,
                value: 99.9,
                sender: nr(4),
            },
            DatMsg::Prune {
                key: Id(15),
                sender: nr(6),
            },
            DatMsg::RootState {
                key: Id(21),
                seq: 17,
                root: nr(30),
                children: vec![
                    (Id(31), sample_partial(), 0),
                    (Id(32), AggPartial::identity(), 4),
                ],
                raw: vec![(Id(33), 1.5, 0), (Id(34), -2.0, 2)],
            },
            DatMsg::RootState {
                key: Id(22),
                seq: 0,
                root: nr(40),
                children: vec![],
                raw: vec![],
            },
        ];
        for m in msgs {
            let bytes = m.encode();
            let back = DatMsg::decode(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let m = DatMsg::Update {
            key: Id(77),
            epoch: 9,
            partial: sample_partial(),
            sender: nr(3),
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                DatMsg::decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn root_state_truncation_and_hostile_lengths_rejected() {
        let m = DatMsg::RootState {
            key: Id(21),
            seq: 17,
            root: nr(30),
            children: vec![(Id(31), sample_partial(), 1)],
            raw: vec![(Id(33), 1.5, 0)],
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                DatMsg::decode(&bytes[..cut]).is_err(),
                "decode succeeded on {cut}-byte prefix"
            );
        }
        // A replica claiming 2^30 children must be rejected up front.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).u8(8).id(Id(1)).u64(0).node_ref(nr(2));
        w.u32(1 << 30);
        assert!(matches!(
            DatMsg::decode(&w.finish()),
            Err(CodecError::BadLength(_)) | Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = DatMsg::Result {
            reqid: 1,
            key: Id(2),
            partial: AggPartial::identity(),
        }
        .encode();
        bytes.push(0xFF);
        assert_eq!(DatMsg::decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tag_and_version() {
        assert_eq!(
            DatMsg::decode(&[WIRE_VERSION, 99]),
            Err(CodecError::BadTag(99))
        );
        assert_eq!(DatMsg::decode(&[42, 1]), Err(CodecError::BadVersion(42)));
        assert_eq!(DatMsg::decode(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn hostile_histogram_length_rejected() {
        // Hand-craft an Update whose histogram claims 2^30 buckets.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).u8(1).id(Id(1)).u64(0);
        w.u64(1).f64(1.0).f64(1.0).f64(1.0).f64(1.0); // partial scalars
        w.u64(1).u64(0).u64(0); // contributors + age + trace_id
        w.u8(1).f64(0.0).f64(1.0).u32(1 << 30); // absurd bucket count
        let bytes = w.finish();
        assert!(matches!(
            DatMsg::decode(&bytes),
            Err(CodecError::BadLength(_)) | Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn nan_and_infinity_roundtrip() {
        let mut p = AggPartial::identity();
        // Empty partial has ±inf extremes — must survive the wire.
        p.sum = f64::NAN;
        let m = DatMsg::Response {
            reqid: 1,
            key: Id(1),
            partial: p,
            sender: nr(1),
        };
        let back = DatMsg::decode(&m.encode()).unwrap();
        match back {
            DatMsg::Response { partial, .. } => {
                assert!(partial.sum.is_nan());
                assert_eq!(partial.min, f64::INFINITY);
                assert_eq!(partial.max, f64::NEG_INFINITY);
            }
            _ => unreachable!(),
        }
    }
}
