//! Tree-property analysis: the metrics of the paper's Fig. 7.
//!
//! *Maximum branching factor* bounds the worst per-node aggregation load;
//! *average branching factor* (over interior nodes) characterises the tree
//! shape; *height* bounds aggregation latency in hops. [`TreeStats`]
//! computes all of them from a materialised [`crate::tree::DatTree`], and
//! [`simulate_message_counts`] derives the per-node aggregation-message
//! counts of one aggregation round (Fig. 8) *analytically* — each node
//! receives exactly one message per child — which cross-validates the
//! protocol-level measurements from the simulator.

use dat_chord::{Id, StaticRing};

use crate::tree::DatTree;

/// Shape statistics of one DAT tree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Number of member nodes.
    pub nodes: usize,
    /// Maximum branching factor over all nodes.
    pub max_branching: usize,
    /// Mean branching factor over *interior* nodes (the paper's "average
    /// branching factor": leaves do not aggregate anything).
    pub avg_branching: f64,
    /// Tree height (max depth).
    pub height: u32,
    /// Mean node depth.
    pub avg_depth: f64,
    /// Number of leaves.
    pub leaves: usize,
}

impl TreeStats {
    /// Compute statistics for `tree`.
    pub fn of(tree: &DatTree) -> Self {
        let mut max_b = 0usize;
        let mut interior = 0usize;
        let mut edges = 0usize;
        let mut depth_sum = 0u64;
        let mut leaves = 0usize;
        let mut count = 0usize;
        for &v in tree.all_ids() {
            count += 1;
            let b = tree.branching(v);
            max_b = max_b.max(b);
            if b > 0 {
                interior += 1;
                edges += b;
            } else {
                leaves += 1;
            }
            depth_sum += tree.depth(v).unwrap_or(0) as u64;
        }
        TreeStats {
            nodes: count,
            max_branching: max_b,
            avg_branching: if interior == 0 {
                0.0
            } else {
                edges as f64 / interior as f64
            },
            height: tree.height(),
            avg_depth: if count == 0 {
                0.0
            } else {
                depth_sum as f64 / count as f64
            },
            leaves,
        }
    }
}

/// Per-node aggregation-message counts for one round of tree aggregation:
/// node `v` receives `branching(v)` messages (one per child). This is the
/// analytic counterpart of the simulator measurement behind Fig. 8.
pub fn simulate_message_counts(tree: &DatTree) -> Vec<(Id, u64)> {
    tree.all_ids()
        .map(|&v| (v, tree.branching(v) as u64))
        .collect()
}

/// Per-node message counts for the *centralized* baseline: every node
/// routes its raw value to the root along greedy finger routes, and a
/// node's load is the number of messages it receives (its own forwarding
/// burden plus, for the root, every value in the network) — the scheme
/// Fig. 8a calls "centralized".
pub fn centralized_message_counts(ring: &StaticRing, key: Id) -> Vec<(Id, u64)> {
    let root = ring.successor(key);
    let mut counts: std::collections::HashMap<Id, u64> =
        ring.ids().iter().map(|&v| (v, 0)).collect();
    for &v in ring.ids() {
        if v == root {
            continue;
        }
        let route = ring.finger_route(v, key);
        // Every hop after the first receives the message once.
        for w in route.iter().skip(1) {
            *counts.get_mut(w).unwrap() += 1;
        }
    }
    let mut out: Vec<(Id, u64)> = counts.into_iter().collect();
    out.sort_unstable_by_key(|&(id, _)| id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DatTree;
    use dat_chord::{IdPolicy, IdSpace, RoutingScheme};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn even_ring(bits: u8, n: usize) -> StaticRing {
        StaticRing::build(
            IdSpace::new(bits),
            n,
            IdPolicy::Even,
            &mut SmallRng::seed_from_u64(0),
        )
    }

    #[test]
    fn stats_of_fig2_basic_tree() {
        let ring = even_ring(4, 16);
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Greedy);
        let s = TreeStats::of(&t);
        assert_eq!(s.nodes, 16);
        assert_eq!(s.max_branching, 4); // the root
        assert_eq!(s.height, 4);
        assert_eq!(s.leaves + (16 - s.leaves), 16);
        // 15 edges over interior nodes.
        assert!(s.avg_branching > 1.0);
    }

    #[test]
    fn stats_of_fig5_balanced_tree() {
        let ring = even_ring(4, 16);
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
        let s = TreeStats::of(&t);
        assert_eq!(s.max_branching, 2);
        assert_eq!(s.height, 4);
        // Nearly-complete binary tree: avg branching ≈ 2 over interior.
        assert!(
            (1.5..=2.0).contains(&s.avg_branching),
            "{}",
            s.avg_branching
        );
    }

    #[test]
    fn message_counts_sum_to_n_minus_1() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ring = StaticRing::build(IdSpace::new(24), 200, IdPolicy::Random, &mut rng);
        for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
            let t = DatTree::build(&ring, Id(99), scheme);
            let counts = simulate_message_counts(&t);
            let total: u64 = counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(total, 199, "each non-root sends exactly one message");
        }
    }

    #[test]
    fn centralized_root_receives_n_minus_1() {
        let ring = even_ring(8, 64);
        let counts = centralized_message_counts(&ring, Id(0));
        let root_count = counts.iter().find(|&&(id, _)| id == Id(0)).unwrap().1;
        // Fig. 8a: "the root node is the most loaded one with 511
        // aggregation messages" in a 512-node network.
        assert_eq!(root_count, 63);
        let max = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert_eq!(max, root_count, "the root is the most loaded node");
    }

    #[test]
    fn centralized_is_more_imbalanced_than_dat() {
        let ring = even_ring(10, 256);
        let central: Vec<u64> = centralized_message_counts(&ring, Id(0))
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
        let dat: Vec<u64> = simulate_message_counts(&t)
            .iter()
            .map(|&(_, c)| c)
            .collect();
        let imb = |v: &[u64]| {
            let max = *v.iter().max().unwrap() as f64;
            let mean = v.iter().sum::<u64>() as f64 / v.len() as f64;
            max / mean
        };
        assert!(imb(&central) > 10.0 * imb(&dat));
    }
}
