//! Gossip-based aggregation (push-sum) — the decentralized alternative.
//!
//! Tree aggregation is not the only way to compute `g(t)` without a
//! coordinator: *push-sum* (Kempe, Dobra & Gehrke, FOCS'03) lets every
//! node gossip `(sum, weight)` shares to random peers; each node's
//! `sum/weight` ratio converges to the global average in `O(log n + log ε⁻¹)`
//! rounds with `n` messages per round. We implement it as an
//! [`AppProtocol`] over the same Chord substrate (random peers drawn from
//! the finger table, which is a good expander) so `repro gossip` can
//! compare:
//!
//! * **messages to ε-accuracy**: DAT needs `n−1` messages and `height`
//!   hops per exact answer; push-sum needs `rounds × n` messages for an
//!   ε-approximation — the paper's tree wins on message count while gossip
//!   wins on robustness (no structure at all).
//!
//! One gossip round per epoch tick, over the engine's partitioned timers.

use crate::codec::{CodecError, Reader, Writer, WIRE_VERSION};
use crate::engine::{AppProtocol, Ctx, StackNode};
use dat_chord::{Metrics, NodeRef, NodeStatus};

/// Application-protocol discriminator for gossip messages.
pub const GOSSIP_PROTO: u8 = 3;

/// A push-sum share.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Share {
    /// Sum share.
    pub sum: f64,
    /// Weight share.
    pub weight: f64,
}

impl Share {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).f64(self.sum).f64(self.weight);
        w.finish()
    }

    fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let sum = r.f64()?;
        let weight = r.f64()?;
        r.expect_end()?;
        Ok(Share { sum, weight })
    }
}

/// Tunables for push-sum.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Round length, ms (matches the DAT epoch for fair comparisons).
    pub round_ms: u64,
    /// How many random peers receive a share each round (classic: 1).
    pub fanout: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            round_ms: 1_000,
            fanout: 1,
        }
    }
}

/// The push-sum handler, hosted on a [`StackNode`].
pub struct GossipProtocol {
    cfg: GossipConfig,
    /// Local observed value.
    local: f64,
    sum: f64,
    weight: f64,
    started: bool,
    round: u64,
    next_token: u64,
    /// Outstanding round-timer sub-token, if armed.
    armed: Option<u64>,
    /// Deterministic peer-selection state (seeded on start from the node
    /// address).
    rng_state: u64,
    metrics: Metrics,
    /// Per-round estimate history `(round, estimate)`.
    history: Vec<(u64, f64)>,
}

impl GossipProtocol {
    /// Create a push-sum handler with local value `value`.
    pub fn new(cfg: GossipConfig, value: f64) -> Self {
        GossipProtocol {
            cfg,
            local: value,
            sum: value,
            weight: 1.0,
            started: false,
            round: 0,
            next_token: 1,
            armed: None,
            rng_state: 0,
            metrics: Metrics::default(),
            history: Vec::new(),
        }
    }

    /// Gossip message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The local value this node contributes.
    pub fn local(&self) -> f64 {
        self.local
    }

    /// Current average estimate (`sum / weight`).
    pub fn estimate(&self) -> f64 {
        if self.weight == 0.0 {
            f64::NAN
        } else {
            self.sum / self.weight
        }
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Per-round estimate history.
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    fn arm_round(&mut self, cx: &mut Ctx<'_>) {
        self.next_token += 1;
        let token = self.next_token;
        self.armed = Some(token);
        cx.set_timer(token, self.cfg.round_ms);
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, no shared RNG needed.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// One push-sum round: split `(sum, weight)` among `fanout` random
    /// finger peers and ourselves.
    fn on_round(&mut self, cx: &mut Ctx<'_>) {
        if cx.status() != NodeStatus::Active {
            return;
        }
        self.round += 1;
        let peers: Vec<NodeRef> = cx.table().known_nodes();
        if peers.is_empty() {
            self.history.push((self.round, self.estimate()));
            return;
        }
        let k = self.cfg.fanout.min(peers.len());
        let split = (k + 1) as f64;
        let share = Share {
            sum: self.sum / split,
            weight: self.weight / split,
        };
        self.sum = share.sum;
        self.weight = share.weight;
        for _ in 0..k {
            let peer = peers[(self.next_rand() as usize) % peers.len()];
            self.metrics.count_sent_kind("gossip_share");
            cx.send(peer, share.encode());
        }
        self.history.push((self.round, self.estimate()));
    }
}

impl AppProtocol for GossipProtocol {
    fn proto(&self) -> u8 {
        GOSSIP_PROTO
    }

    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        if !self.started {
            self.started = true;
            self.rng_state = cx.me().addr.0.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            self.arm_round(cx);
        }
    }

    fn on_message(&mut self, _cx: &mut Ctx<'_>, _from: NodeRef, payload: &[u8]) {
        match Share::decode(payload) {
            Ok(s) => {
                self.metrics.count_received_kind("gossip_share");
                self.sum += s.sum;
                self.weight += s.weight;
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn on_timer(&mut self, cx: &mut Ctx<'_>, sub: u64) {
        if self.armed == Some(sub) {
            self.armed = None;
            self.on_round(cx);
            self.arm_round(cx);
        }
    }

    fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        Some(&mut self.metrics)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Gossip-specific conveniences on the stack engine. All of these panic if
/// no [`GossipProtocol`] is registered.
impl StackNode {
    /// The gossip handler (read-only).
    pub fn gossip(&self) -> &GossipProtocol {
        self.app::<GossipProtocol>()
    }

    /// The gossip handler (mutable).
    pub fn gossip_mut(&mut self) -> &mut GossipProtocol {
        self.app_mut::<GossipProtocol>()
    }

    /// Gossip-layer message counters.
    pub fn gossip_metrics(&self) -> &Metrics {
        self.gossip().metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, Id, IdSpace, Input, NodeAddr, Output};

    fn mk(id: u64, value: f64) -> StackNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        StackNode::new(ccfg, Id(id), NodeAddr(id))
            .with_app(GossipProtocol::new(GossipConfig::default(), value))
    }

    #[test]
    fn share_codec_roundtrip() {
        let s = Share {
            sum: 12.5,
            weight: 0.25,
        };
        assert_eq!(Share::decode(&s.encode()).unwrap(), s);
        assert!(Share::decode(&[]).is_err());
        assert!(Share::decode(&[9, 0, 0]).is_err());
    }

    #[test]
    fn single_node_estimate_is_its_value() {
        let mut n = mk(1, 42.0);
        assert_eq!(n.gossip().estimate(), 42.0);
        let _ = n.start_create();
        assert!(n.gossip().started);
    }

    #[test]
    fn receiving_share_updates_mass() {
        let mut n = mk(1, 10.0);
        let _ = n.start_create();
        let share = Share {
            sum: 5.0,
            weight: 0.5,
        };
        let _ = n.handle(Input::Message {
            from: NodeAddr(2),
            msg: dat_chord::ChordMsg::App {
                proto: GOSSIP_PROTO,
                from: NodeRef::new(Id(2), NodeAddr(2)),
                payload: share.encode().into(),
            },
        });
        // (10 + 5) / (1 + 0.5) = 10
        assert_eq!(n.gossip().estimate(), 10.0);
        assert_eq!(n.gossip_metrics().received_of("gossip_share"), 1);
    }

    #[test]
    fn mass_conservation_locally() {
        // A round splits mass between self and peers; total emitted + kept
        // equals the previous mass.
        let mut n = mk(8, 6.0);
        let _ = n.start_create();
        // Give it a peer.
        let _ = n.handle(Input::Message {
            from: NodeAddr(2),
            msg: dat_chord::ChordMsg::Notify {
                sender: NodeRef::new(Id(2), NodeAddr(2)),
            },
        });
        let ((), outs) = n.drive::<GossipProtocol, _>(|g, cx| g.on_round(cx));
        let sent: f64 = outs
            .iter()
            .filter_map(|o| match o {
                Output::Send {
                    msg: dat_chord::ChordMsg::App { payload, .. },
                    ..
                } => Share::decode(payload).ok().map(|s| s.sum),
                _ => None,
            })
            .sum();
        assert!((n.gossip().sum + sent - 6.0).abs() < 1e-12);
    }
}
