//! Gossip-based aggregation (push-sum) — the decentralized alternative.
//!
//! Tree aggregation is not the only way to compute `g(t)` without a
//! coordinator: *push-sum* (Kempe, Dobra & Gehrke, FOCS'03) lets every
//! node gossip `(sum, weight)` shares to random peers; each node's
//! `sum/weight` ratio converges to the global average in `O(log n + log ε⁻¹)`
//! rounds with `n` messages per round. We implement it as a sans-io layer
//! over the same Chord substrate (random peers drawn from the finger table,
//! which is a good expander) so `repro gossip` can compare:
//!
//! * **messages to ε-accuracy**: DAT needs `n−1` messages and `height`
//!   hops per exact answer; push-sum needs `rounds × n` messages for an
//!   ε-approximation — the paper's tree wins on message count while gossip
//!   wins on robustness (no structure at all).
//!
//! The implementation reuses the DAT epoch/timer machinery: one gossip
//! round per epoch tick.

use std::collections::HashMap;

use dat_chord::{
    ChordConfig, ChordNode, Id, Input, Metrics, NodeAddr, NodeRef, NodeStatus, Output, Upcall,
};

use crate::codec::{CodecError, Reader, Writer, WIRE_VERSION};

/// Application-protocol discriminator for gossip messages.
pub const GOSSIP_PROTO: u8 = 3;

/// A push-sum share.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Share {
    /// Sum share.
    pub sum: f64,
    /// Weight share.
    pub weight: f64,
}

impl Share {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION).f64(self.sum).f64(self.weight);
        w.finish()
    }

    fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let sum = r.f64()?;
        let weight = r.f64()?;
        r.expect_end()?;
        Ok(Share { sum, weight })
    }
}

/// Tunables for push-sum.
#[derive(Clone, Copy, Debug)]
pub struct GossipConfig {
    /// Round length, ms (matches the DAT epoch for fair comparisons).
    pub round_ms: u64,
    /// How many random peers receive a share each round (classic: 1).
    pub fanout: usize,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            round_ms: 1_000,
            fanout: 1,
        }
    }
}

/// A push-sum node over Chord.
pub struct GossipNode {
    chord: ChordNode,
    cfg: GossipConfig,
    /// Local observed value.
    local: f64,
    sum: f64,
    weight: f64,
    started: bool,
    round: u64,
    timers: HashMap<u64, ()>,
    next_token: u64,
    /// Deterministic peer-selection state.
    rng_state: u64,
    metrics: Metrics,
    /// Per-round estimate history `(round, estimate)`.
    history: Vec<(u64, f64)>,
}

impl GossipNode {
    /// Create a gossip node with local value `value`.
    pub fn new(ccfg: ChordConfig, cfg: GossipConfig, id: Id, addr: NodeAddr, value: f64) -> Self {
        GossipNode {
            chord: ChordNode::new(ccfg, id, addr),
            cfg,
            local: value,
            sum: value,
            weight: 1.0,
            started: false,
            round: 0,
            timers: HashMap::new(),
            next_token: 1,
            rng_state: addr.0.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            metrics: Metrics::default(),
            history: Vec::new(),
        }
    }

    /// This node's reference.
    pub fn me(&self) -> NodeRef {
        self.chord.me()
    }

    /// Underlying Chord node.
    pub fn chord(&self) -> &ChordNode {
        &self.chord
    }

    /// Report the host clock (monotonic ms) to the Chord layer's RTT
    /// estimator. Hosts call this before every input.
    pub fn set_now(&mut self, now_ms: u64) {
        self.chord.set_now(now_ms);
    }

    /// Gossip message counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The local value this node contributes.
    pub fn local(&self) -> f64 {
        self.local
    }

    /// Current average estimate (`sum / weight`).
    pub fn estimate(&self) -> f64 {
        if self.weight == 0.0 {
            f64::NAN
        } else {
            self.sum / self.weight
        }
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Per-round estimate history.
    pub fn history(&self) -> &[(u64, f64)] {
        &self.history
    }

    /// Start with a pre-materialised routing table.
    pub fn start_with_table(&mut self, table: dat_chord::FingerTable) -> Vec<Output> {
        let outs = self.chord.start_with_table(table);
        self.process(outs)
    }

    /// Drive one input.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        let outs = self.chord.handle(input);
        self.process(outs)
    }

    fn process(&mut self, outs: Vec<Output>) -> Vec<Output> {
        let mut pass = Vec::with_capacity(outs.len());
        let mut scan: std::collections::VecDeque<Output> = outs.into();
        while let Some(o) = scan.pop_front() {
            match o {
                Output::Upcall(Upcall::Joined { id }) => {
                    if !self.started {
                        self.started = true;
                        self.arm_round(&mut scan);
                    }
                    pass.push(Output::Upcall(Upcall::Joined { id }));
                }
                Output::Upcall(Upcall::AppTimer(token)) => {
                    if self.timers.remove(&token).is_some() {
                        self.on_round(&mut scan);
                        self.arm_round(&mut scan);
                    }
                }
                Output::Upcall(Upcall::AppMessage {
                    proto,
                    from: _,
                    payload,
                }) if proto == GOSSIP_PROTO => match Share::decode(&payload) {
                    Ok(s) => {
                        self.metrics.count_received_kind("gossip_share");
                        self.sum += s.sum;
                        self.weight += s.weight;
                    }
                    Err(_) => self.metrics.dropped += 1,
                },
                other => pass.push(other),
            }
        }
        pass
    }

    fn arm_round(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, ());
        outs.push_back(self.chord.app_timer(token, self.cfg.round_ms));
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, no shared RNG needed.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// One push-sum round: split `(sum, weight)` among `fanout` random
    /// finger peers and ourselves.
    fn on_round(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        if self.chord.status() != NodeStatus::Active {
            return;
        }
        self.round += 1;
        let peers: Vec<NodeRef> = self.chord.table().known_nodes();
        if peers.is_empty() {
            self.history.push((self.round, self.estimate()));
            return;
        }
        let k = self.cfg.fanout.min(peers.len());
        let split = (k + 1) as f64;
        let share = Share {
            sum: self.sum / split,
            weight: self.weight / split,
        };
        self.sum = share.sum;
        self.weight = share.weight;
        for _ in 0..k {
            let peer = peers[(self.next_rand() as usize) % peers.len()];
            self.metrics.count_sent_kind("gossip_share");
            outs.push_back(self.chord.send_app(peer, GOSSIP_PROTO, share.encode()));
        }
        self.history.push((self.round, self.estimate()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::IdSpace;

    #[test]
    fn share_codec_roundtrip() {
        let s = Share {
            sum: 12.5,
            weight: 0.25,
        };
        assert_eq!(Share::decode(&s.encode()).unwrap(), s);
        assert!(Share::decode(&[]).is_err());
        assert!(Share::decode(&[9, 0, 0]).is_err());
    }

    #[test]
    fn single_node_estimate_is_its_value() {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        let mut n = GossipNode::new(ccfg, GossipConfig::default(), Id(1), NodeAddr(1), 42.0);
        assert_eq!(n.estimate(), 42.0);
        let outs = n.chord.start_create();
        let _ = n.process(outs);
        assert!(n.started);
    }

    #[test]
    fn receiving_share_updates_mass() {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        let mut n = GossipNode::new(ccfg, GossipConfig::default(), Id(1), NodeAddr(1), 10.0);
        let outs = n.chord.start_create();
        let _ = n.process(outs);
        let share = Share {
            sum: 5.0,
            weight: 0.5,
        };
        let _ = n.handle(Input::Message {
            from: NodeAddr(2),
            msg: dat_chord::ChordMsg::App {
                proto: GOSSIP_PROTO,
                from: NodeRef::new(Id(2), NodeAddr(2)),
                payload: share.encode(),
            },
        });
        // (10 + 5) / (1 + 0.5) = 10
        assert_eq!(n.estimate(), 10.0);
        assert_eq!(n.metrics().received_of("gossip_share"), 1);
    }

    #[test]
    fn mass_conservation_locally() {
        // A round splits mass between self and peers; total emitted + kept
        // equals the previous mass.
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        let mut n = GossipNode::new(ccfg, GossipConfig::default(), Id(8), NodeAddr(8), 6.0);
        let outs = n.chord.start_create();
        let _ = n.process(outs);
        // Give it a peer.
        n.chord
            .handle(Input::Message {
                from: NodeAddr(2),
                msg: dat_chord::ChordMsg::Notify {
                    sender: NodeRef::new(Id(2), NodeAddr(2)),
                },
            })
            .into_iter()
            .for_each(drop);
        let mut outs = std::collections::VecDeque::new();
        n.on_round(&mut outs);
        let sent: f64 = outs
            .iter()
            .filter_map(|o| match o {
                Output::Send {
                    msg: dat_chord::ChordMsg::App { payload, .. },
                    ..
                } => Share::decode(payload).ok().map(|s| s.sum),
                _ => None,
            })
            .sum();
        assert!((n.sum + sent - 6.0).abs() < 1e-12);
    }
}
