//! Mergeable cardinality sketches (HyperLogLog).
//!
//! Tree aggregation works for any *mergeable* summary, not just sums and
//! extrema (§2.3's `f : X⁺ → X`). Counting **distinct** values — how many
//! different users, jobs or sites touched the Grid this epoch — needs a
//! sketch whose merge is associative, commutative and idempotent.
//! [`Hll`] implements HyperLogLog (Flajolet et al. 2007) from scratch:
//! fixed 2^p byte registers, SHA-1-based hashing (reusing the in-tree
//! digest), register-wise max as the merge. Idempotence is exactly what a
//! DAT needs under churn: a child's partial counted twice (stale + fresh
//! path) cannot inflate the estimate.

use dat_chord::sha1::sha1;

/// HyperLogLog with `2^p` single-byte registers (`4 <= p <= 16`).
#[derive(Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Hll {
    p: u8,
    registers: Vec<u8>,
}

impl Hll {
    /// An empty sketch with `2^p` registers. `p = 10` (1 KiB) gives ≈3%
    /// standard error; panics unless `4 <= p <= 16`.
    pub fn new(p: u8) -> Self {
        assert!((4..=16).contains(&p), "p out of range");
        Hll {
            p,
            registers: vec![0; 1 << p],
        }
    }

    /// Precision parameter.
    pub fn precision(&self) -> u8 {
        self.p
    }

    /// Raw registers (for the wire codec).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuild from raw registers (wire decode). Returns `None` when the
    /// register count is not a valid power of two in range.
    pub fn from_registers(registers: Vec<u8>) -> Option<Self> {
        let n = registers.len();
        if !n.is_power_of_two() {
            return None;
        }
        let p = n.trailing_zeros() as u8;
        if !(4..=16).contains(&p) {
            return None;
        }
        Some(Hll { p, registers })
    }

    /// Insert an item (hashed via SHA-1).
    pub fn insert(&mut self, item: &[u8]) {
        let d = sha1(item);
        let h = u64::from_be_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]);
        self.insert_hash(h);
    }

    /// Insert a pre-hashed 64-bit value (must be uniformly distributed).
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - self.p)) as usize;
        let rest = h << self.p;
        // Position of the leftmost 1-bit in the remaining 64-p bits, 1-based;
        // all-zero rest maps to the maximum rank.
        let rank = if rest == 0 {
            (64 - self.p) + 1
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch of the same precision (register-wise max).
    /// Associative, commutative and idempotent.
    pub fn merge(&mut self, other: &Hll) {
        assert_eq!(self.p, other.p, "precision mismatch");
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Cardinality estimate (HLL estimator with small-range correction).
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// `true` when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let h = Hll::new(10);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn small_cardinalities_are_nearly_exact() {
        let mut h = Hll::new(12);
        for i in 0..100u32 {
            h.insert(format!("item-{i}").as_bytes());
        }
        let e = h.estimate();
        assert!((90.0..=110.0).contains(&e), "estimate {e}");
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        let mut h = Hll::new(12); // σ ≈ 1.04/sqrt(4096) ≈ 1.6%
        let n = 100_000u32;
        for i in 0..n {
            h.insert(&i.to_le_bytes());
        }
        let e = h.estimate();
        let err = (e - n as f64).abs() / n as f64;
        assert!(err < 0.05, "relative error {err} (estimate {e})");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = Hll::new(10);
        for _ in 0..1000 {
            h.insert(b"same-item");
        }
        let e = h.estimate();
        assert!((0.5..=2.0).contains(&e), "estimate {e}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Hll::new(11);
        let mut b = Hll::new(11);
        let mut whole = Hll::new(11);
        for i in 0..5_000u32 {
            let item = i.to_le_bytes();
            if i % 2 == 0 {
                a.insert(&item);
            } else {
                b.insert(&item);
            }
            whole.insert(&item);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
    }

    #[test]
    fn merge_is_idempotent_and_commutative() {
        let mut a = Hll::new(8);
        let mut b = Hll::new(8);
        for i in 0..500u32 {
            a.insert(&i.to_le_bytes());
            b.insert(&(i + 250).to_le_bytes());
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Merging twice changes nothing.
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(abb, ab);
        // Self-merge is a no-op.
        let mut aa = a.clone();
        aa.merge(&a.clone());
        assert_eq!(aa, a);
    }

    #[test]
    fn registers_roundtrip() {
        let mut h = Hll::new(6);
        for i in 0..50u32 {
            h.insert(&i.to_le_bytes());
        }
        let regs = h.registers().to_vec();
        let back = Hll::from_registers(regs).unwrap();
        assert_eq!(back, h);
        assert!(Hll::from_registers(vec![0; 12]).is_none()); // not a power of 2
        assert!(Hll::from_registers(vec![0; 4]).is_none()); // p = 2 < 4
        assert!(Hll::from_registers(vec![0; 1 << 17]).is_none()); // p = 17 > 16
    }

    #[test]
    #[should_panic(expected = "precision mismatch")]
    fn merge_mismatched_precision_panics() {
        let mut a = Hll::new(8);
        let b = Hll::new(9);
        a.merge(&b);
    }

    #[test]
    fn tree_shaped_merge_matches_flat() {
        // Simulate a 4-level aggregation tree: 16 leaves, pairwise merges.
        let mut leaves: Vec<Hll> = (0..16u32)
            .map(|leaf| {
                let mut h = Hll::new(10);
                for i in 0..200u32 {
                    h.insert(&(leaf * 137 + i).to_le_bytes());
                }
                h
            })
            .collect();
        let mut flat = Hll::new(10);
        for leaf in 0..16u32 {
            for i in 0..200u32 {
                flat.insert(&(leaf * 137 + i).to_le_bytes());
            }
        }
        while leaves.len() > 1 {
            let mut next = Vec::new();
            for pair in leaves.chunks(2) {
                let mut m = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            leaves = next;
        }
        assert_eq!(leaves[0], flat);
    }
}
