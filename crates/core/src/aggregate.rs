//! Aggregate functions and mergeable partial states.
//!
//! The DAT problem statement (paper §2.3): each node `i` holds a local
//! value `x_i(t)`; for an aggregate function `f : X⁺ → X` the tree computes
//! `g(t) = f(x_1(t), …, x_n(t))` by recursively applying `f` bottom-up.
//! That recursion is only correct for functions with an associative,
//! commutative merge — so we represent every aggregation by a mergeable
//! [`AggPartial`] (count / sum / sum-of-squares / min / max, plus an
//! optional fixed-width histogram) from which any of the [`AggFunc`]
//! read-outs can be finalized. One partial per tree thus serves SUM, COUNT,
//! AVG, MIN, MAX, VARIANCE and quantile estimates simultaneously, the way
//! production monitoring systems (Astrolabe, SDIMS) ship digests rather
//! than scalars.

use core::fmt;

use crate::sketch::Hll;

/// Read-outs derivable from an [`AggPartial`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, serde::Serialize, serde::Deserialize)]
pub enum AggFunc {
    /// Number of contributing values.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Population variance.
    Variance,
    /// Population standard deviation.
    Std,
}

impl AggFunc {
    /// Attribute-style label (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Variance => "var",
            AggFunc::Std => "std",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fixed-range, fixed-width histogram digest (for distribution queries
/// such as "how many nodes are above 90% CPU").
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Histogram {
    /// Lower bound of the tracked range.
    pub lo: f64,
    /// Upper bound of the tracked range.
    pub hi: f64,
    /// Bucket counts; values outside `[lo, hi]` clamp into the end buckets.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `[lo, hi]` with `n` buckets.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && hi > lo, "invalid histogram shape");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
        }
    }

    /// Absorb one observation.
    pub fn add(&mut self, x: f64) {
        let n = self.buckets.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * n as f64).floor();
        let idx = (t.max(0.0) as usize).min(n - 1);
        self.buckets[idx] += 1;
    }

    /// Merge another histogram of identical shape.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "shape mismatch");
        assert!(
            (self.lo - other.lo).abs() < 1e-12 && (self.hi - other.hi).abs() < 1e-12,
            "range mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate `q`-quantile (0–1) by linear scan of bucket mass.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return self.lo;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                // Midpoint of the bucket.
                return self.lo + (i as f64 + 0.5) * w;
            }
        }
        self.hi
    }
}

/// The mergeable partial aggregate shipped through DAT trees.
#[derive(Clone, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct AggPartial {
    /// Number of contributing local values.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Sum of squared values (for variance).
    pub sum_sq: f64,
    /// Minimum value (`+inf` when empty — normalised by accessors).
    pub min: f64,
    /// Maximum value (`-inf` when empty).
    pub max: f64,
    /// Optional distribution digest.
    pub histogram: Option<Histogram>,
    /// Optional distinct-count sketch (see [`crate::sketch`]).
    pub distinct: Option<Hll>,
    /// Number of distinct grid nodes whose state is folded into this
    /// partial (completeness accounting). Unlike `count` — which tallies
    /// *observations* and can exceed the node count when a node reports
    /// several samples — `contributors` is stamped once per node by the
    /// aggregation layer and summed up the tree, so the root can compare
    /// it against the estimated ring size.
    pub contributors: u64,
    /// Upper bound, in epochs, on the age of the *oldest* constituent
    /// sample. A freshly-flushed local partial carries 0; cached child
    /// state ages as it sits in a parent's soft state (see
    /// [`AggPartial::merge_aged`]). Merge takes the max, so the root's
    /// value bounds the staleness of the whole report.
    pub age_epochs: u64,
    /// Causal trace id of the epoch this partial belongs to (0 when
    /// untraced). The aggregation layer stamps every flush with
    /// `dat_obs::trace_id_for(key, epoch)`; merge takes the max — which is
    /// idempotent and keeps the merge associative/commutative with 0 as
    /// the neutral element — so a report's trace id survives the fold and
    /// the whole epoch can be replayed leaf→root from the event buffers.
    pub trace_id: u64,
}

impl AggPartial {
    /// The identity element: merging it changes nothing.
    pub fn identity() -> Self {
        AggPartial {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            histogram: None,
            distinct: None,
            contributors: 0,
            age_epochs: 0,
            trace_id: 0,
        }
    }

    /// Identity carrying an (empty) distinct-count sketch of precision `p`.
    pub fn identity_with_distinct(p: u8) -> Self {
        let mut out = Self::identity();
        out.distinct = Some(Hll::new(p));
        out
    }

    /// Record an identity-bearing item (e.g. a site or user name) in the
    /// distinct-count sketch, if one is attached.
    pub fn observe_item(&mut self, item: &[u8]) {
        if let Some(h) = &mut self.distinct {
            h.insert(item);
        }
    }

    /// Estimated number of distinct observed items (NaN without a sketch).
    pub fn distinct_estimate(&self) -> f64 {
        self.distinct
            .as_ref()
            .map(Hll::estimate)
            .unwrap_or(f64::NAN)
    }

    /// Identity carrying an (empty) histogram of the given shape.
    pub fn identity_with_histogram(lo: f64, hi: f64, buckets: usize) -> Self {
        let mut p = Self::identity();
        p.histogram = Some(Histogram::new(lo, hi, buckets));
        p
    }

    /// A partial holding exactly one observation.
    pub fn of(x: f64) -> Self {
        let mut p = Self::identity();
        p.absorb(x);
        p
    }

    /// `true` when no observations have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Absorb one local observation.
    pub fn absorb(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if let Some(h) = &mut self.histogram {
            h.add(x);
        }
    }

    /// Merge another partial into this one. Associative and commutative —
    /// the law the tree recursion depends on (property-tested).
    ///
    /// **Duplicate-delivery contract**: merging is *not* idempotent for the
    /// additive components — `count`/`sum`/`sum_sq` (and the histogram
    /// counts) inflate if the same partial is merged twice, as happens when
    /// a retransmitting transport duplicates an aggregation message. The
    /// order-statistic and sketch components (`min`, `max`, the
    /// [`Hll`] distinct sketch) are idempotent and stay exact under
    /// duplicates. Layers that re-send partials must therefore either
    /// deduplicate by source (the continuous DAT path overwrites the
    /// per-child slot instead of accumulating) or tolerate inflation in
    /// Sum/Count read-outs.
    ///
    /// `contributors` is additive like `count` — the same non-idempotence
    /// applies, and the same per-source dedup in the continuous path keeps
    /// it exact under duplicate delivery (property-tested in
    /// `tests/properties.rs`). `age_epochs` takes the max, which *is*
    /// idempotent.
    pub fn merge(&mut self, other: &AggPartial) {
        self.merge_aged(other, 0);
    }

    /// [`AggPartial::merge`], but treating `other` as `extra_age` epochs
    /// older than it claims — used when folding in a child partial that
    /// has been sitting in soft state since it was received.
    pub fn merge_aged(&mut self, other: &AggPartial, extra_age: u64) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.contributors += other.contributors;
        self.age_epochs = self
            .age_epochs
            .max(other.age_epochs.saturating_add(extra_age));
        self.trace_id = self.trace_id.max(other.trace_id);
        match (&mut self.histogram, &other.histogram) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.histogram = Some(b.clone()),
            _ => {}
        }
        match (&mut self.distinct, &other.distinct) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.distinct = Some(b.clone()),
            _ => {}
        }
    }

    /// Functional merge.
    pub fn merged(mut self, other: &AggPartial) -> Self {
        self.merge(other);
        self
    }

    /// Finalize a read-out. Empty partials yield 0 for additive functions
    /// and NaN for order statistics (no observations — no extremes).
    pub fn finalize(&self, f: AggFunc) -> f64 {
        if self.count == 0 {
            return match f {
                AggFunc::Count | AggFunc::Sum | AggFunc::Variance | AggFunc::Std => 0.0,
                AggFunc::Avg | AggFunc::Min | AggFunc::Max => f64::NAN,
            };
        }
        match f {
            AggFunc::Count => self.count as f64,
            AggFunc::Sum => self.sum,
            AggFunc::Avg => self.sum / self.count as f64,
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Variance => {
                let n = self.count as f64;
                (self.sum_sq / n - (self.sum / n) * (self.sum / n)).max(0.0)
            }
            AggFunc::Std => self.finalize(AggFunc::Variance).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_readouts() {
        let p = AggPartial::of(4.0);
        assert_eq!(p.finalize(AggFunc::Count), 1.0);
        assert_eq!(p.finalize(AggFunc::Sum), 4.0);
        assert_eq!(p.finalize(AggFunc::Avg), 4.0);
        assert_eq!(p.finalize(AggFunc::Min), 4.0);
        assert_eq!(p.finalize(AggFunc::Max), 4.0);
        assert_eq!(p.finalize(AggFunc::Variance), 0.0);
    }

    #[test]
    fn duplicate_merge_inflates_additive_but_not_order_stats() {
        // The duplicate-delivery contract documented on `merge`: replaying
        // the same partial (a duplicated transport datagram) corrupts the
        // additive components but leaves min/max and the distinct sketch
        // exact.
        let mut child = AggPartial::identity_with_distinct(10);
        child.absorb(2.0);
        child.absorb(8.0);
        child.observe_item(b"site-a");
        child.observe_item(b"site-b");

        let once = AggPartial::identity_with_distinct(10).merged(&child);
        let twice = once.clone().merged(&child);

        // Additive components inflate.
        assert_eq!(once.finalize(AggFunc::Count), 2.0);
        assert_eq!(twice.finalize(AggFunc::Count), 4.0);
        assert_eq!(once.finalize(AggFunc::Sum), 10.0);
        assert_eq!(twice.finalize(AggFunc::Sum), 20.0);

        // Idempotent components stay exact.
        assert_eq!(twice.finalize(AggFunc::Min), 2.0);
        assert_eq!(twice.finalize(AggFunc::Max), 8.0);
        assert_eq!(twice.distinct_estimate(), once.distinct_estimate());
        // Avg survives only when *every* branch is duplicated alike; with
        // one sibling delivered once and the other twice it skews.
        let sibling = AggPartial::of(7.0);
        let fair = once.clone().merged(&sibling);
        let skew = twice.merged(&sibling);
        assert!((fair.finalize(AggFunc::Avg) - 17.0 / 3.0).abs() < 1e-9);
        assert!((skew.finalize(AggFunc::Avg) - 27.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn identity_is_neutral() {
        let mut p = AggPartial::of(3.0).merged(&AggPartial::of(5.0));
        let q = p.clone();
        p.merge(&AggPartial::identity());
        assert_eq!(p, q);
        let r = AggPartial::identity().merged(&q);
        assert_eq!(r, q);
    }

    #[test]
    fn empty_readouts() {
        let p = AggPartial::identity();
        assert!(p.is_empty());
        assert_eq!(p.finalize(AggFunc::Sum), 0.0);
        assert_eq!(p.finalize(AggFunc::Count), 0.0);
        assert!(p.finalize(AggFunc::Min).is_nan());
        assert!(p.finalize(AggFunc::Avg).is_nan());
    }

    #[test]
    fn merge_matches_flat_aggregation() {
        let xs = [1.0, -2.5, 7.0, 0.0, 3.5, 3.5];
        // Tree-shaped merge.
        let mut left = AggPartial::identity();
        xs[..3].iter().for_each(|&x| left.absorb(x));
        let mut right = AggPartial::identity();
        xs[3..].iter().for_each(|&x| right.absorb(x));
        let tree = left.merged(&right);
        // Flat.
        let mut flat = AggPartial::identity();
        xs.iter().for_each(|&x| flat.absorb(x));
        assert_eq!(tree, flat);
        assert_eq!(flat.finalize(AggFunc::Min), -2.5);
        assert_eq!(flat.finalize(AggFunc::Max), 7.0);
        assert!((flat.finalize(AggFunc::Avg) - 12.5 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn variance_and_std() {
        let mut p = AggPartial::identity();
        [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .for_each(|&x| p.absorb(x));
        assert!((p.finalize(AggFunc::Variance) - 4.0).abs() < 1e-12);
        assert!((p.finalize(AggFunc::Std) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.add(5.0); // bucket 0
        h.add(95.0); // bucket 9
        h.add(100.0); // clamped to bucket 9
        h.add(-3.0); // clamped to bucket 0
        h.add(1000.0); // clamped to bucket 9
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[9], 3);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_through_partials() {
        let mut a = AggPartial::identity_with_histogram(0.0, 10.0, 5);
        a.absorb(1.0);
        let mut b = AggPartial::identity_with_histogram(0.0, 10.0, 5);
        b.absorb(9.0);
        a.merge(&b);
        let h = a.histogram.as_ref().unwrap();
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1);
        // Histogram-less partials adopt the other side's digest.
        let mut c = AggPartial::of(2.0);
        c.merge(&a);
        assert_eq!(c.histogram.as_ref().unwrap().total(), 2);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64 + 0.5);
        }
        assert!((h.quantile(0.5) - 50.0).abs() <= 1.0);
        assert!((h.quantile(0.99) - 99.0).abs() <= 1.5);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), 0.0);
    }

    #[test]
    fn distinct_sketch_flows_through_merges() {
        let mut a = AggPartial::identity_with_distinct(10);
        let mut b = AggPartial::identity_with_distinct(10);
        for i in 0..400u32 {
            a.absorb(1.0);
            a.observe_item(format!("site-{}", i % 50).as_bytes());
            b.absorb(2.0);
            b.observe_item(format!("site-{}", 25 + i % 50).as_bytes());
        }
        a.merge(&b);
        // Union of {0..50} and {25..75} = 75 distinct sites.
        let e = a.distinct_estimate();
        assert!((65.0..=85.0).contains(&e), "estimate {e}");
        // Sketchless partials report NaN but adopt sketches on merge.
        let mut c = AggPartial::of(1.0);
        assert!(c.distinct_estimate().is_nan());
        c.merge(&a);
        assert!(c.distinct_estimate() > 0.0);
    }

    #[test]
    fn contributors_add_and_ages_max() {
        let mut a = AggPartial::of(1.0);
        a.contributors = 1;
        let mut b = AggPartial::of(2.0);
        b.contributors = 3;
        b.age_epochs = 2;
        // Fold `b` in as if it had been cached for 4 epochs: contributor
        // counts add, ages take max of (own, other + extra).
        a.merge_aged(&b, 4);
        assert_eq!(a.contributors, 4);
        assert_eq!(a.age_epochs, 6);
        // Plain merge is merge_aged with no extra age.
        let mut c = AggPartial::identity();
        c.merge(&a);
        assert_eq!(c.contributors, 4);
        assert_eq!(c.age_epochs, 6);
        // Identity is still neutral for the new fields.
        let d = c.clone().merged(&AggPartial::identity());
        assert_eq!(d, c);
    }

    #[test]
    #[should_panic]
    fn histogram_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 8);
        a.merge(&b);
    }
}
