//! Graphviz (DOT) export of rings and DAT trees.
//!
//! Small tooling layer for debugging and for rendering figures like the
//! paper's Fig. 2/Fig. 5: `to_dot` emits the tree with nodes laid out by
//! identifier, annotated with branching factors and depths.

use dat_chord::{Id, StaticRing};

use crate::tree::DatTree;

/// Render a DAT tree as a DOT digraph (edges point child → parent, the
/// direction aggregation flows).
pub fn tree_to_dot(tree: &DatTree) -> String {
    let mut out =
        String::from("digraph dat {\n  rankdir=BT;\n  node [shape=circle, fontsize=10];\n");
    // Nodes, root highlighted.
    let root = tree.root();
    out.push_str(&format!(
        "  \"N{root}\" [style=filled, fillcolor=gold, label=\"N{root}\\nroot\"];\n"
    ));
    for &v in tree.all_ids() {
        if v == root {
            continue;
        }
        let b = tree.branching(v);
        let d = tree.depth(v).unwrap_or(0);
        out.push_str(&format!("  \"N{v}\" [label=\"N{v}\\nb={b} d={d}\"];\n"));
    }
    for (child, parent) in tree.edges() {
        out.push_str(&format!("  \"N{child}\" -> \"N{parent}\";\n"));
    }
    out.push_str("}\n");
    out
}

/// Render a ring's successor cycle (plus optional finger edges for one
/// highlighted node) as DOT.
pub fn ring_to_dot(ring: &StaticRing, fingers_of: Option<Id>) -> String {
    let mut out =
        String::from("digraph ring {\n  layout=circo;\n  node [shape=circle, fontsize=10];\n");
    let ids = ring.ids();
    for (i, &id) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        out.push_str(&format!("  \"N{id}\" -> \"N{next}\" [color=gray];\n"));
    }
    if let Some(v) = fingers_of {
        let space = ring.space();
        let mut seen = std::collections::HashSet::new();
        for j in 1..=space.bits() {
            let f = ring.successor(space.finger_start(v, j));
            if f != v && seen.insert(f) {
                out.push_str(&format!(
                    "  \"N{v}\" -> \"N{f}\" [color=blue, label=\"f{j}\", fontsize=8];\n"
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace, RoutingScheme};
    use rand::SeedableRng;

    fn ring16() -> StaticRing {
        StaticRing::build(
            IdSpace::new(4),
            16,
            IdPolicy::Even,
            &mut rand::rngs::SmallRng::seed_from_u64(0),
        )
    }

    #[test]
    fn tree_dot_contains_every_edge() {
        let ring = ring16();
        let tree = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
        let dot = tree_to_dot(&tree);
        assert!(dot.starts_with("digraph dat {"));
        assert!(dot.contains("\"N0\" [style=filled"));
        // 15 child->parent edges.
        assert_eq!(dot.matches(" -> ").count(), 15);
        // The Fig. 5 edge: N8 -> N12.
        assert!(dot.contains("\"N8\" -> \"N12\";"));
    }

    #[test]
    fn ring_dot_cycle_and_fingers() {
        let ring = ring16();
        let dot = ring_to_dot(&ring, Some(Id(8)));
        // 16 successor edges + 4 distinct finger edges of N8 (9, 10, 12, 0).
        assert_eq!(dot.matches("color=gray").count(), 16);
        assert_eq!(dot.matches("color=blue").count(), 4);
        assert!(dot.contains("\"N8\" -> \"N12\""));
        let plain = ring_to_dot(&ring, None);
        assert_eq!(plain.matches("color=blue").count(), 0);
    }
}
