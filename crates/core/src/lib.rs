//! # dat-core — Distributed Aggregation Trees on Chord
//!
//! The primary contribution of Cai & Hwang's IPDPS'07 paper, as a library:
//!
//! * **implicit trees** ([`tree::DatTree`]): the union of all Chord routes
//!   toward a rendezvous key *is* an aggregation tree — no parent/child
//!   membership is ever maintained. The *basic* DAT uses greedy finger
//!   routes (tree height `O(log n)` but root branching `log2 n`); the
//!   *balanced* DAT limits each hop to fingers of offset at most
//!   `2^g(x)`, `g(x) = ⌈log2((x + 2·d0)/3)⌉`, capping branching at 2 on
//!   evenly spaced rings (§3.4–3.5);
//! * **aggregate functions** ([`aggregate`]): mergeable partials (count /
//!   sum / sum² / min / max / histogram) whose merge is associative and
//!   commutative — the algebra the tree recursion requires;
//! * **the engine** ([`engine::StackNode`]): one overlay node hosting any
//!   number of application protocols ([`engine::AppProtocol`]) over a single
//!   shared Chord substrate — one finger table, one RTO estimator, one
//!   stabilization schedule, demultiplexed by proto byte;
//! * **the protocol** ([`proto::DatProtocol`]): the §4 prototype's
//!   aggregation table, continuous (epoch-push) and on-demand
//!   (fan-out/convergecast) modes as an `AppProtocol`, plus the
//!   *centralized* baseline of Fig. 8;
//! * **analysis & theory** ([`analysis`], [`theory`]): Fig. 7's tree
//!   metrics and the closed-form branching factor
//!   `B(i,n) = log2 n − ⌈log2(d/d0 + 1)⌉`, cross-checked against
//!   constructed trees by property tests;
//! * **the explicit-membership baseline** ([`explicit`]): the maintenance-
//!   heavy alternative the paper argues against, implemented so the churn
//!   experiment can measure the difference instead of asserting it.
//!
//! ## Quickstart (analysis level)
//!
//! ```
//! use dat_chord::{IdSpace, Id, IdPolicy, StaticRing, RoutingScheme};
//! use dat_core::tree::DatTree;
//! use dat_core::analysis::TreeStats;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let ring = StaticRing::build(IdSpace::new(32), 512, IdPolicy::Probed, &mut rng);
//! let balanced = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
//! let stats = TreeStats::of(&balanced);
//! assert!(stats.max_branching <= 6);      // ~constant (paper Fig. 7a)
//! assert!(stats.height <= 2 * 9 + 2);     // O(log n)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod analysis;
pub mod codec;
pub mod engine;
pub mod explicit;
pub mod gossip;
pub mod proto;
pub mod sketch;
pub mod theory;
pub mod tree;
pub mod viz;

pub use aggregate::{AggFunc, AggPartial, Histogram};
pub use analysis::{centralized_message_counts, simulate_message_counts, TreeStats};
pub use codec::{CodecError, DatMsg, DAT_PROTO};
pub use engine::{proto_label, AppProtocol, Ctx, InboxPolicy, StackNode};
pub use explicit::{ExpMsg, ExplicitConfig, ExplicitProtocol, EXPLICIT_PROTO};
pub use gossip::{GossipConfig, GossipProtocol, GOSSIP_PROTO};
pub use proto::{
    AggregationEntry, AggregationMode, Completeness, DatConfig, DatEvent, DatProtocol,
};
pub use sketch::Hll;
pub use tree::DatTree;
