//! Explicit materialisation of implicit DAT trees (global view).
//!
//! A DAT tree never exists as a data structure in the live protocol — each
//! node only knows its parent, computed from its own finger table (paper
//! §3.2: "distributed nodes do not need to build DAT trees explicitly").
//! For analysis and the Fig. 7 experiments we *do* materialise the tree a
//! converged overlay implies: [`DatTree::build`] evaluates the chosen
//! parent function for every member of a [`StaticRing`] and stores the
//! child lists, depths and the root.

use std::collections::HashMap;

use dat_chord::{ideal_parent_balanced, ideal_parent_basic, Id, RoutingScheme, StaticRing};

/// A fully materialised aggregation tree over a ring membership.
#[derive(Clone, Debug)]
pub struct DatTree {
    scheme: RoutingScheme,
    key: Id,
    root: Id,
    /// `parent[id]` for every non-root member.
    parent: HashMap<Id, Id>,
    /// `children[id]`, sorted, for members that have any.
    children: HashMap<Id, Vec<Id>>,
    /// Depth of every member (root = 0).
    depth: HashMap<Id, u32>,
    node_count: usize,
}

impl DatTree {
    /// Build the tree that `scheme`-routing toward rendezvous key `key`
    /// implies on `ring`. Uses the exact `d0 = 2^b / n` of the ring for the
    /// balanced finger-limiting function, as Algorithm 1 does.
    pub fn build(ring: &StaticRing, key: Id, scheme: RoutingScheme) -> Self {
        let space = ring.space();
        let root = ring.successor(key);
        let d0 = ring.d0();
        let succ_of = |x: Id| ring.successor(x);
        let mut parent = HashMap::with_capacity(ring.len());
        let mut children: HashMap<Id, Vec<Id>> = HashMap::new();
        for &v in ring.ids() {
            let p = match scheme {
                RoutingScheme::Greedy => ideal_parent_basic(space, v, key, &succ_of),
                RoutingScheme::Balanced => ideal_parent_balanced(space, v, key, d0, &succ_of),
            };
            if let Some(p) = p {
                parent.insert(v, p);
                children.entry(p).or_default().push(v);
            } else {
                debug_assert_eq!(v, root, "only the root lacks a parent");
            }
        }
        for c in children.values_mut() {
            c.sort_unstable();
        }
        // Depths via BFS from the root.
        let mut depth = HashMap::with_capacity(ring.len());
        depth.insert(root, 0u32);
        let mut frontier = vec![root];
        while let Some(v) = frontier.pop() {
            let d = depth[&v];
            if let Some(kids) = children.get(&v) {
                for &k in kids {
                    depth.insert(k, d + 1);
                    frontier.push(k);
                }
            }
        }
        debug_assert_eq!(
            depth.len(),
            ring.len(),
            "parent pointers must form a single tree"
        );
        DatTree {
            scheme,
            key,
            root,
            parent,
            children,
            depth,
            node_count: ring.len(),
        }
    }

    /// The routing scheme that produced this tree.
    pub fn scheme(&self) -> RoutingScheme {
        self.scheme
    }

    /// The rendezvous key.
    pub fn key(&self) -> Id {
        self.key
    }

    /// The root (the key's successor).
    pub fn root(&self) -> Id {
        self.root
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// `true` when the tree has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: Id) -> Option<Id> {
        self.parent.get(&v).copied()
    }

    /// Children of `v` (empty slice for leaves).
    pub fn children(&self, v: Id) -> &[Id] {
        self.children.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Branching factor of `v`.
    pub fn branching(&self, v: Id) -> usize {
        self.children(v).len()
    }

    /// Depth of `v` (root = 0); `None` for non-members.
    pub fn depth(&self, v: Id) -> Option<u32> {
        self.depth.get(&v).copied()
    }

    /// Height of the tree: the maximum depth.
    pub fn height(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }

    /// Path from `v` up to the root, inclusive of both.
    pub fn path_to_root(&self, v: Id) -> Vec<Id> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Iterate every member id (unordered).
    pub fn all_ids(&self) -> impl Iterator<Item = &Id> + '_ {
        self.depth.keys()
    }

    /// Iterate all `(node, parent)` edges.
    pub fn edges(&self) -> impl Iterator<Item = (Id, Id)> + '_ {
        self.parent.iter().map(|(&v, &p)| (v, p))
    }

    /// All member ids with a non-zero branching factor (interior nodes).
    pub fn interior_nodes(&self) -> impl Iterator<Item = Id> + '_ {
        self.children.keys().copied()
    }

    /// Verify structural invariants; returns a human-readable violation if
    /// any. Used by property tests and the `repro --check` harness.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Exactly n-1 edges.
        if self.parent.len() != self.node_count - 1 {
            return Err(format!(
                "edge count {} != n-1 = {}",
                self.parent.len(),
                self.node_count - 1
            ));
        }
        // Every node reaches the root without cycles.
        for (&v, _) in self.parent.iter() {
            let mut cur = v;
            let mut steps = 0usize;
            while let Some(p) = self.parent(cur) {
                cur = p;
                steps += 1;
                if steps > self.node_count {
                    return Err(format!("cycle reachable from {v}"));
                }
            }
            if cur != self.root {
                return Err(format!("{v} does not reach root {}", self.root));
            }
        }
        // Depth consistency.
        for (&v, &p) in self.parent.iter() {
            if self.depth[&v] != self.depth[&p] + 1 {
                return Err(format!("depth({v}) != depth({p}) + 1"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{IdPolicy, IdSpace};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn even_ring(bits: u8, n: usize) -> StaticRing {
        StaticRing::build(
            IdSpace::new(bits),
            n,
            IdPolicy::Even,
            &mut SmallRng::seed_from_u64(0),
        )
    }

    #[test]
    fn basic_tree_matches_paper_fig2() {
        // 16-node, 4-bit ring, root N0 (Fig. 2b).
        let ring = even_ring(4, 16);
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Greedy);
        assert_eq!(t.root(), Id(0));
        // N0's children are N8, N12, N14, N15.
        assert_eq!(t.children(Id(0)), &[Id(8), Id(12), Id(14), Id(15)]);
        // The path from N1 mirrors the finger route <N1, N9, N13, N15, N0>.
        assert_eq!(
            t.path_to_root(Id(1)),
            vec![Id(1), Id(9), Id(13), Id(15), Id(0)]
        );
        assert_eq!(t.height(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_tree_matches_paper_fig5() {
        let ring = even_ring(4, 16);
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
        // N8's parent is N12 under balanced routing (Fig. 5; the paper's
        // prose "N1" is a typo).
        assert_eq!(t.parent(Id(8)), Some(Id(12)));
        // Max branching 2, height log2(16) = 4.
        let max_b = ring.ids().iter().map(|&v| t.branching(v)).max().unwrap();
        assert_eq!(max_b, 2);
        assert_eq!(t.height(), 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn root_follows_rendezvous_key() {
        let ring = StaticRing::from_ids(IdSpace::new(6), vec![Id(10), Id(30), Id(50)]);
        let t = DatTree::build(&ring, Id(31), RoutingScheme::Greedy);
        assert_eq!(t.root(), Id(50));
        let t = DatTree::build(&ring, Id(51), RoutingScheme::Balanced);
        assert_eq!(t.root(), Id(10)); // wraps
        t.check_invariants().unwrap();
    }

    #[test]
    fn singleton_tree() {
        let ring = StaticRing::from_ids(IdSpace::new(8), vec![Id(3)]);
        let t = DatTree::build(&ring, Id(200), RoutingScheme::Balanced);
        assert_eq!(t.root(), Id(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 0);
        assert!(t.children(Id(3)).is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn every_nonroot_has_unique_parent_random_ring() {
        let mut rng = SmallRng::seed_from_u64(5);
        let ring = StaticRing::build(IdSpace::new(32), 300, IdPolicy::Random, &mut rng);
        for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
            let t = DatTree::build(&ring, Id(12345), scheme);
            t.check_invariants().unwrap();
            assert_eq!(t.len(), 300);
        }
    }

    #[test]
    fn balanced_even_ring_branching_bounded_by_two_many_sizes() {
        for n in [4usize, 8, 16, 64, 256, 1024] {
            let ring = even_ring(16, n);
            let t = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
            let max_b = ring.ids().iter().map(|&v| t.branching(v)).max().unwrap();
            assert!(max_b <= 2, "n={n}: max branching {max_b} > 2");
            assert!(
                t.height() as usize <= n.ilog2() as usize + 1,
                "n={n}: height {} > log2(n)+1",
                t.height()
            );
        }
    }

    #[test]
    fn basic_even_ring_root_branching_is_log2n() {
        // §3.3: the root's branching factor is log2(n) on an even ring.
        for n in [16usize, 64, 256] {
            let ring = even_ring(16, n);
            let t = DatTree::build(&ring, Id(0), RoutingScheme::Greedy);
            assert_eq!(t.branching(t.root()), n.ilog2() as usize, "n={n}");
        }
    }

    #[test]
    fn edges_count() {
        let ring = even_ring(8, 32);
        let t = DatTree::build(&ring, Id(7), RoutingScheme::Balanced);
        assert_eq!(t.edges().count(), 31);
        assert_eq!(
            t.interior_nodes().count(),
            t.edges()
                .map(|(_, p)| p)
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }
}
