//! The protocol-stack engine: one overlay node, many aggregation services.
//!
//! The paper's prototype layers every service — DAT continuous aggregation,
//! on-demand queries, MAAN discovery — over a *single* Chord substrate
//! (§4). This module is that hosting layer. A [`StackNode`] owns one
//! [`ChordNode`] (one finger table, one RTO estimator, one stabilization
//! schedule) and dispatches its upcalls to any number of registered
//! [`AppProtocol`] handlers, demultiplexed by their 1-byte protocol
//! discriminator:
//!
//! | proto byte | protocol | crate |
//! |-----------:|----------|-------|
//! | 1 | DAT aggregation ([`crate::codec::DAT_PROTO`]) | `dat-core` |
//! | 2 | explicit-tree baseline ([`crate::explicit::EXPLICIT_PROTO`]) | `dat-core` |
//! | 3 | gossip baseline ([`crate::gossip::GOSSIP_PROTO`]) | `dat-core` |
//! | 4 | MAAN discovery (`dat_maan::proto::MAAN_PROTO`) | `dat-maan` |
//!
//! Handlers never see the Chord node directly; they act through a [`Ctx`]
//! that scopes sends and timers to their own proto byte. Three properties
//! fall out of the design:
//!
//! * **Transparency** — a `StackNode` with no handlers behaves exactly like
//!   a bare `ChordNode`: every upcall and output passes through untouched.
//!   Transports therefore host *only* `StackNode`s (the one [`Actor`] impl
//!   in the workspace).
//! * **Timer isolation** — `TimerKind::App` tokens are partitioned by
//!   handler: the high 8 bits carry the proto byte, the low 56 bits the
//!   handler's private sub-token, so stacked protocols can never steal each
//!   other's timers.
//! * **One clock** — the engine owns `now_ms` and forwards it to the Chord
//!   layer exactly once per [`StackNode::set_now`]; handlers read the clock
//!   from [`Ctx::now_ms`], so no handler can observe a stale clock no
//!   matter how many protocols are stacked.
//!
//! Routed (rendezvous-keyed) payloads are engine-tagged: [`Ctx::route`]
//! prepends the handler's proto byte, and the engine strips it again when
//! the `Routed` upcall surfaces at the key's owner. Untagged payloads (or
//! tags without a registered handler) pass through to the host unchanged.

use std::any::Any;
use std::collections::{HashMap, VecDeque};

use dat_chord::{
    Actor, ChordConfig, ChordNode, FingerTable, Id, IdSpace, Input, Metrics, NodeAddr, NodeRef,
    NodeStatus, Output, ReqId, SuspicionLevel, TimerKind, Upcall,
};
use dat_obs::{Event, Key, Registry};

/// Human-readable layer label for a proto byte (metric `layer` label).
pub fn proto_label(proto: u8) -> &'static str {
    match proto {
        1 => "dat",
        2 => "explicit",
        3 => "gossip",
        4 => "maan",
        _ => "app",
    }
}

/// Bit position of the proto byte inside a `TimerKind::App` token.
pub const PROTO_SHIFT: u32 = 56;
/// Mask of the handler-private sub-token bits.
pub const SUB_MASK: u64 = (1 << PROTO_SHIFT) - 1;

/// Backpressure policy for the engine's per-node inbox.
///
/// The engine processes messages synchronously, so "queueing" is modelled
/// in virtual time: every admitted application payload advances a
/// busy-until horizon by [`InboxPolicy::service_ms`], and the backlog is
/// how many service slots the horizon sits ahead of the clock. Once the
/// backlog exceeds a class's capacity, further arrivals of that class are
/// *shed* (dropped and counted) instead of processed — an overloaded node
/// degrades loudly rather than stalling its whole subtree.
///
/// Priorities are expressed as capacities: Chord control traffic never
/// passes through the inbox at all (it is what keeps the ring alive), the
/// aggregation class gets [`InboxPolicy::agg_capacity`], and stats serving
/// gets the smaller [`InboxPolicy::stats_capacity`] — so under pressure
/// the order of sacrifice is stats first, aggregation second, control
/// never.
///
/// The default `service_ms = 0` disables the model entirely: the inbox is
/// unbounded and nothing is ever shed (the pre-health-plane behavior).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InboxPolicy {
    /// Virtual service time per application payload (0 = unbounded inbox).
    pub service_ms: u64,
    /// Backlog (in service slots) above which aggregation-class payloads
    /// (`AppMessage` / engine-tagged `Routed`) are shed.
    pub agg_capacity: u64,
    /// Backlog above which incoming stats requests are shed (answered
    /// never, not late). Keep below `agg_capacity`: stats are diagnostics.
    pub stats_capacity: u64,
}

impl Default for InboxPolicy {
    fn default() -> Self {
        InboxPolicy {
            service_ms: 0,
            agg_capacity: 64,
            stats_capacity: 8,
        }
    }
}

/// Scoring policy for undecodable frames ([`Input::BadFrame`]).
///
/// A lossy WAN produces the odd mangled datagram even from honest peers,
/// so one bad frame is noise; a *burst* from one peer is a poisoned link
/// or a hostile sender. The engine counts bad frames per source address
/// inside a sliding window, and when a window accumulates
/// [`BadFrameConfig::threshold`] frames the peer is reported to the shared
/// failure detector as a hard miss (forced Suspect). Repeated episodes
/// then ride the detector's existing flap damping into a bounded-length
/// quarantine — the same machinery that contains flapping-slow peers
/// contains wire-poisoning ones.
///
/// The per-peer table is bounded at [`BadFrameConfig::max_tracked`]
/// entries (stalest window evicted first) so a spray of spoofed source
/// addresses cannot grow node memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadFrameConfig {
    /// Sliding window (engine ms) over which bad frames from one peer
    /// accumulate toward the threshold.
    pub window_ms: u64,
    /// Bad frames inside one window that force the peer Suspect.
    pub threshold: u32,
    /// Upper bound on concurrently tracked source addresses.
    pub max_tracked: usize,
}

impl Default for BadFrameConfig {
    fn default() -> Self {
        BadFrameConfig {
            window_ms: 10_000,
            threshold: 3,
            max_tracked: 64,
        }
    }
}

/// Admit one payload of a class with the given backlog capacity, advancing
/// the shared busy horizon on admission.
fn inbox_admit(policy: &InboxPolicy, busy_until_ms: &mut u64, now_ms: u64, capacity: u64) -> bool {
    if policy.service_ms == 0 {
        return true;
    }
    let backlog = busy_until_ms.saturating_sub(now_ms) / policy.service_ms;
    if backlog >= capacity {
        return false;
    }
    *busy_until_ms = (*busy_until_ms).max(now_ms) + policy.service_ms;
    true
}

/// The engine-side context handed to every [`AppProtocol`] callback.
///
/// Wraps the shared Chord node, the engine clock, and the output queue.
/// All sends and timers are scoped to the handler's proto byte.
pub struct Ctx<'a> {
    chord: &'a mut ChordNode,
    queue: &'a mut VecDeque<Output>,
    sent: &'a mut HashMap<u8, u64>,
    proto: u8,
    now_ms: u64,
}

impl Ctx<'_> {
    /// This node's reference.
    pub fn me(&self) -> NodeRef {
        self.chord.me()
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.chord.space()
    }

    /// The live finger table.
    pub fn table(&self) -> &FingerTable {
        self.chord.table()
    }

    /// Lifecycle status of the shared Chord node.
    pub fn status(&self) -> NodeStatus {
        self.chord.status()
    }

    /// Whether this node currently owns `key`.
    pub fn owns(&self, key: Id) -> bool {
        self.chord.owns(key)
    }

    /// The first `k` distinct successors (replication targets — the nodes
    /// that would take over this node's keys if it crashed).
    pub fn successors(&self, k: usize) -> Vec<NodeRef> {
        self.chord.successors(k)
    }

    /// The engine clock (monotonic ms), identical for every stacked
    /// protocol on this node.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Send an application payload directly to `to`, tagged with this
    /// handler's proto byte.
    pub fn send(&mut self, to: NodeRef, payload: Vec<u8>) {
        *self.sent.entry(self.proto).or_insert(0) += 1;
        let out = self.chord.send_app(to, self.proto, payload);
        self.queue.push_back(out);
    }

    /// Route an application payload to the owner of `key`. The engine
    /// prepends this handler's proto byte so the owner's engine can
    /// dispatch the payload back to the same protocol.
    pub fn route(&mut self, key: Id, payload: Vec<u8>) {
        *self.sent.entry(self.proto).or_insert(0) += 1;
        let mut tagged = Vec::with_capacity(payload.len() + 1);
        tagged.push(self.proto);
        tagged.extend_from_slice(&payload);
        let outs = self.chord.route(key, tagged);
        self.queue.extend(outs);
    }

    /// Probe a peer's liveness through the Chord ping machinery (feeds the
    /// shared RTO estimator and failure detector).
    pub fn ping(&mut self, target: NodeRef) {
        let outs = self.chord.ping_node(target);
        self.queue.extend(outs);
    }

    /// Evaluate a peer's suspicion level via the shared phi-accrual
    /// failure detector (see `dat_chord::health`). Evaluation advances the
    /// detector's state machine — silence alone can raise suspicion.
    pub fn suspicion(&mut self, peer: Id) -> SuspicionLevel {
        self.chord.suspicion(peer)
    }

    /// The raw phi value for a peer (diagnostics; prefer
    /// [`Ctx::suspicion`] for decisions).
    pub fn phi(&self, peer: Id) -> f64 {
        self.chord.health().phi(peer, self.now_ms)
    }

    /// Proactively evict a suspect peer from the shared routing table,
    /// before any request to it times out. The resulting
    /// `NeighborhoodChanged` upcall flows through the engine queue, so
    /// every stacked handler observes the change.
    pub fn evict_suspect(&mut self, target: NodeRef) {
        let outs = self.chord.evict_suspect(target);
        self.queue.extend(outs);
    }

    /// Arm an application timer private to this handler. `sub` must fit in
    /// the low [`PROTO_SHIFT`] bits; it comes back via
    /// [`AppProtocol::on_timer`].
    pub fn set_timer(&mut self, sub: u64, delay_ms: u64) {
        debug_assert!(sub <= SUB_MASK, "timer sub-token {sub:#x} overflows");
        let token = ((self.proto as u64) << PROTO_SHIFT) | (sub & SUB_MASK);
        self.queue.push_back(Output::SetTimer {
            kind: TimerKind::App(token),
            delay_ms,
        });
    }
}

/// One application protocol hosted on a [`StackNode`].
///
/// Implementations are pure state machines: they hold their own protocol
/// state (aggregation tables, query registries, stores …) and act on the
/// overlay only through the [`Ctx`] passed to each callback. A handler is
/// identified by its [`AppProtocol::proto`] byte, which keys message,
/// routed-payload and timer dispatch.
pub trait AppProtocol: Send + 'static {
    /// The 1-byte protocol discriminator (must be unique per node).
    fn proto(&self) -> u8;

    /// The shared Chord node became active (create, join, or table
    /// preload). Arm initial timers here.
    fn on_start(&mut self, _cx: &mut Ctx<'_>) {}

    /// A directly-addressed application message with this handler's proto
    /// byte arrived.
    fn on_message(&mut self, cx: &mut Ctx<'_>, from: NodeRef, payload: &[u8]);

    /// One of this handler's timers (armed via [`Ctx::set_timer`]) fired.
    fn on_timer(&mut self, _cx: &mut Ctx<'_>, _sub: u64) {}

    /// A rendezvous-routed payload tagged with this handler's proto byte
    /// reached this node (the owner of `key`).
    fn on_routed(&mut self, _cx: &mut Ctx<'_>, _key: Id, _origin: NodeRef, _payload: &[u8]) {}

    /// The Chord neighborhood (successor/predecessor) changed.
    fn on_neighborhood_changed(&mut self, _cx: &mut Ctx<'_>) {}

    /// The node is about to leave the ring gracefully; send goodbyes.
    fn on_leave(&mut self, _cx: &mut Ctx<'_>) {}

    /// Reset this handler's own counters (called by
    /// [`StackNode::reset_metrics`], e.g. after an experiment's warm-up).
    fn reset_metrics(&mut self) {}

    /// This handler's metrics/tracer shim, if it keeps one. Handlers that
    /// return `Some` are folded into [`StackNode::obs_registry`] under
    /// their proto's layer label.
    fn metrics(&self) -> Option<&Metrics> {
        None
    }

    /// Mutable access to the handler's metrics shim, if any (e.g. to
    /// enlarge or disable its event tracer).
    fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        None
    }

    /// Upcast for typed access via [`StackNode::app`].
    fn as_any(&self) -> &dyn Any;

    /// Upcast for typed access via [`StackNode::app_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A protocol-stack node: one shared [`ChordNode`] plus any number of
/// [`AppProtocol`] handlers, multiplexed by proto byte.
///
/// This is the only [`Actor`] implementation in the workspace — both the
/// simulator and the UDP cluster host `StackNode`s exclusively, whether a
/// node runs zero protocols (bare overlay) or several concurrently.
pub struct StackNode {
    chord: ChordNode,
    handlers: Vec<Box<dyn AppProtocol>>,
    now_ms: u64,
    sent_by_proto: HashMap<u8, u64>,
    recv_by_proto: HashMap<u8, u64>,
    /// Backpressure model for application payloads (default: unbounded).
    inbox: InboxPolicy,
    /// Virtual-time horizon up to which the inbox is busy serving
    /// already-admitted payloads.
    inbox_busy_until_ms: u64,
    /// Aggregation-class payloads shed per proto byte.
    shed_by_proto: HashMap<u8, u64>,
    /// Stats requests shed (lowest priority class).
    stats_shed: u64,
    /// Poisoned-peer scoring policy for undecodable frames.
    bad_frame_cfg: BadFrameConfig,
    /// Undecodable frames seen, by [`dat_chord::wire::ERROR_KINDS`] index.
    bad_frames_by_kind: [u64; dat_chord::wire::ERROR_KINDS.len()],
    /// Per-source sliding window: (window start, bad frames in window).
    bad_peer_window: HashMap<NodeAddr, (u64, u32)>,
    /// Bad-frame bursts that escalated into a failure-detector miss.
    bad_frame_suspects: u64,
}

impl StackNode {
    /// A fresh node with no application protocols.
    pub fn new(cfg: ChordConfig, id: Id, addr: NodeAddr) -> Self {
        Self::from_chord(ChordNode::new(cfg, id, addr))
    }

    /// Wrap an existing Chord node (e.g. one pre-loaded with a stabilized
    /// table by an experiment harness).
    pub fn from_chord(chord: ChordNode) -> Self {
        StackNode {
            chord,
            handlers: Vec::new(),
            now_ms: 0,
            sent_by_proto: HashMap::new(),
            recv_by_proto: HashMap::new(),
            inbox: InboxPolicy::default(),
            inbox_busy_until_ms: 0,
            shed_by_proto: HashMap::new(),
            stats_shed: 0,
            bad_frame_cfg: BadFrameConfig::default(),
            bad_frames_by_kind: [0; dat_chord::wire::ERROR_KINDS.len()],
            bad_peer_window: HashMap::new(),
            bad_frame_suspects: 0,
        }
    }

    /// Install or change the poisoned-peer scoring policy.
    pub fn set_bad_frame_config(&mut self, cfg: BadFrameConfig) {
        self.bad_frame_cfg = cfg;
    }

    /// The poisoned-peer scoring policy in effect.
    pub fn bad_frame_config(&self) -> BadFrameConfig {
        self.bad_frame_cfg
    }

    /// Undecodable frames seen so far, all error kinds summed.
    pub fn bad_frames_total(&self) -> u64 {
        self.bad_frames_by_kind.iter().sum()
    }

    /// Undecodable frames of one error kind (a
    /// [`dat_chord::wire::ERROR_KINDS`] label); unknown labels read 0.
    pub fn bad_frame_count(&self, kind: &str) -> u64 {
        dat_chord::wire::ERROR_KINDS
            .iter()
            .position(|&k| k == kind)
            .map(|i| self.bad_frames_by_kind[i])
            .unwrap_or(0)
    }

    /// Bad-frame bursts that escalated into a forced-Suspect report
    /// against a resolved peer.
    pub fn bad_frame_suspects(&self) -> u64 {
        self.bad_frame_suspects
    }

    /// Source addresses currently tracked by the bad-frame scorer (always
    /// ≤ [`BadFrameConfig::max_tracked`]).
    pub fn bad_peers_tracked(&self) -> usize {
        self.bad_peer_window.len()
    }

    /// Install a bounded-inbox policy (builder style). See [`InboxPolicy`].
    pub fn with_inbox_policy(mut self, policy: InboxPolicy) -> Self {
        self.inbox = policy;
        self
    }

    /// Install or change the bounded-inbox policy at runtime.
    pub fn set_inbox_policy(&mut self, policy: InboxPolicy) {
        self.inbox = policy;
    }

    /// The bounded-inbox policy in effect.
    pub fn inbox_policy(&self) -> InboxPolicy {
        self.inbox
    }

    /// Aggregation-class payloads shed so far for `proto`.
    pub fn shed_count(&self, proto: u8) -> u64 {
        self.shed_by_proto.get(&proto).copied().unwrap_or(0)
    }

    /// Stats requests shed so far.
    pub fn stats_shed_count(&self) -> u64 {
        self.stats_shed
    }

    /// Register an application protocol (builder style). Panics if the
    /// proto byte is already taken on this node.
    pub fn with_app(mut self, handler: impl AppProtocol) -> Self {
        let p = handler.proto();
        assert!(
            self.handlers.iter().all(|h| h.proto() != p),
            "proto byte {p} already registered on this StackNode"
        );
        self.handlers.push(Box::new(handler));
        self
    }

    /// The underlying Chord node (read-only).
    pub fn chord(&self) -> &ChordNode {
        &self.chord
    }

    /// Replace the shared failure detector's tuning (phi threshold, flap
    /// damping, quarantine length). One detector serves every stacked
    /// protocol on this node.
    pub fn set_health_config(&mut self, cfg: dat_chord::HealthConfig) {
        *self.chord.health_mut().config_mut() = cfg;
    }

    /// This node's reference.
    pub fn me(&self) -> NodeRef {
        self.chord.me()
    }

    /// Lifecycle status of the shared Chord node.
    pub fn status(&self) -> NodeStatus {
        self.chord.status()
    }

    /// The live finger table.
    pub fn table(&self) -> &FingerTable {
        self.chord.table()
    }

    /// The identifier space.
    pub fn space(&self) -> IdSpace {
        self.chord.space()
    }

    /// Whether this node currently owns `key`.
    pub fn owns(&self, key: Id) -> bool {
        self.chord.owns(key)
    }

    /// Proto bytes of the registered handlers, in registration order.
    pub fn protocols(&self) -> Vec<u8> {
        self.handlers.iter().map(|h| h.proto()).collect()
    }

    /// Whether a handler for `proto` is registered.
    pub fn hosts(&self, proto: u8) -> bool {
        self.handlers.iter().any(|h| h.proto() == proto)
    }

    /// Application messages sent so far, attributed to `proto` (counts
    /// `ChordMsg::App` sends; engine-tagged routed payloads are counted at
    /// the receiver instead, since routing hops are Chord traffic).
    pub fn proto_sent(&self, proto: u8) -> u64 {
        self.sent_by_proto.get(&proto).copied().unwrap_or(0)
    }

    /// Application payloads received and dispatched to `proto`'s handler
    /// (direct messages and engine-tagged routed payloads).
    pub fn proto_received(&self, proto: u8) -> u64 {
        self.recv_by_proto.get(&proto).copied().unwrap_or(0)
    }

    /// Reset every counter on this node: the Chord-layer metrics, the
    /// per-proto tallies, and each handler's own metrics (e.g. after an
    /// experiment's warm-up phase, so steady state is measured alone).
    pub fn reset_metrics(&mut self) {
        self.chord.metrics_mut().reset();
        self.sent_by_proto.clear();
        self.recv_by_proto.clear();
        self.shed_by_proto.clear();
        self.stats_shed = 0;
        self.bad_frames_by_kind = [0; dat_chord::wire::ERROR_KINDS.len()];
        self.bad_peer_window.clear();
        self.bad_frame_suspects = 0;
        let health = self.chord.health_mut();
        health.suspects = 0;
        health.quarantines = 0;
        health.rejoins = 0;
        for h in &mut self.handlers {
            h.reset_metrics();
        }
    }

    /// Chord-layer message counters (alias for `chord().metrics()`).
    pub fn chord_metrics(&self) -> &Metrics {
        self.chord.metrics()
    }

    /// One merged observability registry for this node: the Chord layer's
    /// metrics stamped `layer="chord"`, each handler's metrics stamped with
    /// its proto label ([`proto_label`]), plus the engine's own per-proto
    /// payload tallies as `engine_sent_total` / `engine_received_total`.
    ///
    /// Snapshots from many nodes merge associatively
    /// ([`Registry::merge`]) into fleet-wide totals and percentiles.
    pub fn obs_registry(&self) -> Registry {
        let mut reg = Registry::default();
        self.chord.metrics().export_into(&mut reg, "chord");
        for h in &self.handlers {
            if let Some(m) = h.metrics() {
                m.export_into(&mut reg, proto_label(h.proto()));
            }
        }
        for (&p, &n) in &self.sent_by_proto {
            reg.counter_add(
                Key::new("engine_sent_total").label("layer", proto_label(p)),
                n,
            );
        }
        for (&p, &n) in &self.recv_by_proto {
            reg.counter_add(
                Key::new("engine_received_total").label("layer", proto_label(p)),
                n,
            );
        }
        // Shed counters exist (at zero) for every registered handler and
        // for the stats class, so the series are visible before the first
        // shed; health-plane counters come from the shared detector.
        for h in &self.handlers {
            reg.counter_add(
                Key::new("engine_shed_total").label("layer", proto_label(h.proto())),
                self.shed_count(h.proto()),
            );
        }
        reg.counter_add(
            Key::new("engine_shed_total").label("layer", "stats"),
            self.stats_shed,
        );
        let health = self.chord.health();
        reg.counter_add(
            Key::new("suspects_total").label("layer", "chord"),
            health.suspects,
        );
        reg.counter_add(
            Key::new("quarantines_total").label("layer", "chord"),
            health.quarantines,
        );
        reg.counter_add(
            Key::new("rejoins_total").label("layer", "chord"),
            health.rejoins,
        );
        // The full decode-error taxonomy is pre-registered at zero, so a
        // clean wire still exports every kind and fleet merges line up.
        for (i, &kind) in dat_chord::wire::ERROR_KINDS.iter().enumerate() {
            reg.counter_add(
                Key::new("bad_frames_total").label("kind", kind),
                self.bad_frames_by_kind[i],
            );
        }
        reg.counter_add(
            Key::new("bad_frame_suspects_total").label("layer", "chord"),
            self.bad_frame_suspects,
        );
        reg
    }

    /// Ask `target` for its observability snapshot over the wire. The
    /// remote stack answers with its merged Prometheus dump; the reply
    /// surfaces here as `Upcall::StatsReceived`. Fire-and-forget, like the
    /// underlying [`ChordNode::request_stats`].
    pub fn request_stats(&mut self, target: NodeRef) -> (ReqId, Vec<Output>) {
        let (req, outs) = self.chord.request_stats(target);
        (req, self.dispatch(outs))
    }

    /// Prometheus text exposition of [`StackNode::obs_registry`]. Served
    /// over the wire in reply to `ChordMsg::StatsRequest`.
    pub fn render_prometheus(&self) -> String {
        self.obs_registry().render_prometheus()
    }

    /// Every buffered trace event on this node: the Chord layer's tracer
    /// followed by each handler's, in registration order. Feed these —
    /// paired with this node's id — to `EpochTrace::assemble` or
    /// `digest_events`.
    pub fn trace_events(&self) -> Vec<Event> {
        let mut ev: Vec<Event> = self.chord.metrics().tracer().events().cloned().collect();
        for h in &self.handlers {
            if let Some(m) = h.metrics() {
                ev.extend(m.tracer().events().cloned());
            }
        }
        ev
    }

    /// Typed read access to a registered handler, if present.
    pub fn try_app<P: AppProtocol>(&self) -> Option<&P> {
        self.handlers
            .iter()
            .find_map(|h| h.as_any().downcast_ref::<P>())
    }

    /// Typed mutable access to a registered handler, if present.
    pub fn try_app_mut<P: AppProtocol>(&mut self) -> Option<&mut P> {
        self.handlers
            .iter_mut()
            .find_map(|h| h.as_any_mut().downcast_mut::<P>())
    }

    /// Typed read access to a registered handler; panics if absent.
    pub fn app<P: AppProtocol>(&self) -> &P {
        self.try_app()
            .expect("protocol not registered on this StackNode")
    }

    /// Typed mutable access to a registered handler; panics if absent.
    pub fn app_mut<P: AppProtocol>(&mut self) -> &mut P {
        self.try_app_mut()
            .expect("protocol not registered on this StackNode")
    }

    /// Run a closure against a registered handler *with engine context* —
    /// the entry point for application-initiated actions that must emit
    /// outputs (queries, registrations, probes). Outputs the closure
    /// produces through [`Ctx`] are dispatched like any other batch; the
    /// remainder is returned for the transport.
    ///
    /// Panics if `P` is not registered.
    pub fn drive<P: AppProtocol, R>(
        &mut self,
        f: impl FnOnce(&mut P, &mut Ctx<'_>) -> R,
    ) -> (R, Vec<Output>) {
        let StackNode {
            chord,
            handlers,
            now_ms,
            sent_by_proto,
            ..
        } = self;
        let now = *now_ms;
        let mut queue = VecDeque::new();
        let mut result = None;
        let mut f = Some(f);
        for h in handlers.iter_mut() {
            let proto = h.proto();
            if let Some(p) = h.as_any_mut().downcast_mut::<P>() {
                let mut cx = Ctx {
                    chord: &mut *chord,
                    queue: &mut queue,
                    sent: &mut *sent_by_proto,
                    proto,
                    now_ms: now,
                };
                result = Some((f.take().unwrap())(p, &mut cx));
                break;
            }
        }
        let r = result.expect("protocol not registered on this StackNode");
        let outs = self.dispatch(queue.into_iter().collect());
        (r, outs)
    }

    /// Advance the engine clock. Forwarded to the Chord layer exactly once;
    /// handlers observe the same value via [`Ctx::now_ms`].
    pub fn set_now(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
        self.chord.set_now(now_ms);
    }

    /// Start as the first ring member.
    pub fn start_create(&mut self) -> Vec<Output> {
        let outs = self.chord.start_create();
        self.dispatch(outs)
    }

    /// Join through `bootstrap`.
    pub fn start_join(&mut self, bootstrap: NodeRef) -> Vec<Output> {
        let outs = self.chord.start_join(bootstrap);
        self.dispatch(outs)
    }

    /// Start with a pre-materialised routing table (see
    /// [`ChordNode::start_with_table`]); used by experiment harnesses.
    pub fn start_with_table(&mut self, table: FingerTable) -> Vec<Output> {
        let outs = self.chord.start_with_table(table);
        self.dispatch(outs)
    }

    /// Gracefully leave the ring. Handlers say goodbye first (e.g. the
    /// explicit tree detaches from its parent), then the Chord layer hands
    /// off its key range.
    pub fn leave(&mut self) -> Vec<Output> {
        let StackNode {
            chord,
            handlers,
            now_ms,
            sent_by_proto,
            ..
        } = self;
        let mut queue = VecDeque::new();
        for h in handlers.iter_mut() {
            let proto = h.proto();
            let mut cx = Ctx {
                chord: &mut *chord,
                queue: &mut queue,
                sent: &mut *sent_by_proto,
                proto,
                now_ms: *now_ms,
            };
            h.on_leave(&mut cx);
        }
        queue.extend(chord.leave());
        let all: Vec<Output> = queue.into_iter().collect();
        self.dispatch(all)
    }

    /// Start a Chord key lookup (host-level; answers arrive as
    /// `Upcall::LookupDone`).
    pub fn lookup(&mut self, key: Id) -> (ReqId, Vec<Output>) {
        let (req, outs) = self.chord.lookup(key);
        (req, self.dispatch(outs))
    }

    /// Route a raw host-level payload to the owner of `key`. The payload is
    /// *not* proto-tagged; it surfaces at the owner as a pass-through
    /// `Upcall::Routed` (unless its first byte collides with a registered
    /// proto byte — prefer [`Ctx::route`] from inside a handler).
    pub fn route(&mut self, key: Id, payload: Vec<u8>) -> Vec<Output> {
        let outs = self.chord.route(key, payload);
        self.dispatch(outs)
    }

    /// Broadcast a raw host-level payload over the disjoint finger ranges.
    pub fn broadcast(&mut self, payload: Vec<u8>) -> Vec<Output> {
        let outs = self.chord.broadcast(payload);
        self.dispatch(outs)
    }

    /// Probe a peer's liveness (feeds the RTO estimator and failure
    /// detector shared by every stacked protocol).
    pub fn ping_node(&mut self, target: NodeRef) -> Vec<Output> {
        let outs = self.chord.ping_node(target);
        self.dispatch(outs)
    }

    /// Drive one input through the stack.
    ///
    /// Stats requests are answered here rather than in the Chord layer: a
    /// bare `ChordNode` only surfaces `Upcall::StatsRequested`, while the
    /// stack consumes that upcall and replies with its merged
    /// [`StackNode::render_prometheus`] dump (the one engine-level service
    /// that does not pass through transparently).
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        if let Input::BadFrame { from, error } = input {
            self.on_bad_frame(from, error);
            return Vec::new();
        }
        let mut outs = self.chord.handle(input);
        let mut stats: Vec<(ReqId, NodeRef)> = Vec::new();
        outs.retain(|o| match o {
            Output::Upcall(Upcall::StatsRequested { req, from }) => {
                stats.push((*req, *from));
                false
            }
            _ => true,
        });
        for (req, from) in stats {
            // Stats are the lowest-priority class: under backlog they are
            // shed outright (never answered late) so aggregation and
            // control keep the remaining capacity.
            if !inbox_admit(
                &self.inbox,
                &mut self.inbox_busy_until_ms,
                self.now_ms,
                self.inbox.stats_capacity,
            ) {
                self.stats_shed += 1;
                continue;
            }
            let text = self.render_prometheus().into_bytes();
            outs.push(self.chord.reply_stats(from, req, text));
        }
        self.dispatch(outs)
    }

    /// Score one undecodable frame: count it by error kind, advance the
    /// source's sliding window, and when the window crosses the threshold
    /// report the resolved peer to the failure detector as a hard miss
    /// (forced Suspect — repeat episodes quarantine via flap damping).
    fn on_bad_frame(&mut self, from: Option<NodeAddr>, error: dat_chord::wire::CodecError) {
        self.bad_frames_by_kind[error.kind_index()] += 1;
        let Some(addr) = from else {
            // Unattributable garbage: counted, nobody to score.
            return;
        };
        let now = self.now_ms;
        let cfg = self.bad_frame_cfg;
        if !self.bad_peer_window.contains_key(&addr)
            && self.bad_peer_window.len() >= cfg.max_tracked
        {
            // Bounded table: evict the stalest window so spoofed source
            // sprays cannot grow node memory.
            if let Some(stale) = self
                .bad_peer_window
                .iter()
                .min_by_key(|(a, (start, _))| (*start, a.0))
                .map(|(a, _)| *a)
            {
                self.bad_peer_window.remove(&stale);
            }
        }
        let entry = self.bad_peer_window.entry(addr).or_insert((now, 0));
        if now.saturating_sub(entry.0) > cfg.window_ms {
            *entry = (now, 0);
        }
        entry.1 += 1;
        if entry.1 >= cfg.threshold {
            // Reset the window so the *next* burst escalates again — each
            // escalation is one Suspect episode, and it is the episode
            // cadence the detector's flap damping turns into quarantine.
            *entry = (now, 0);
            if let Some(peer) = self.chord.suspect_addr(addr) {
                self.bad_frame_suspects += 1;
                self.chord.metrics_mut().trace(
                    now,
                    0,
                    dat_obs::EventKind::Poisoned { node: peer.id.0 },
                );
            }
        }
    }

    /// Intercept chord outputs: dispatch upcalls to the matching handlers,
    /// tally per-proto traffic, pass everything else through.
    fn dispatch(&mut self, outs: Vec<Output>) -> Vec<Output> {
        let StackNode {
            chord,
            handlers,
            now_ms,
            sent_by_proto,
            recv_by_proto,
            inbox,
            inbox_busy_until_ms,
            shed_by_proto,
            ..
        } = self;
        let now = *now_ms;
        let mut scan: VecDeque<Output> = outs.into();
        let mut pass = Vec::with_capacity(scan.len());
        while let Some(o) = scan.pop_front() {
            match o {
                send @ Output::Send { .. } => pass.push(send),
                Output::Upcall(up) => match up {
                    Upcall::Joined { id } => {
                        fire(
                            chord,
                            handlers,
                            now,
                            &mut scan,
                            sent_by_proto,
                            None,
                            |h, cx| h.on_start(cx),
                        );
                        pass.push(Output::Upcall(Upcall::Joined { id }));
                    }
                    Upcall::AppTimer(token) => {
                        let proto = (token >> PROTO_SHIFT) as u8;
                        let sub = token & SUB_MASK;
                        let hit = fire(
                            chord,
                            handlers,
                            now,
                            &mut scan,
                            sent_by_proto,
                            Some(proto),
                            |h, cx| h.on_timer(cx, sub),
                        );
                        if !hit {
                            pass.push(Output::Upcall(Upcall::AppTimer(token)));
                        }
                    }
                    Upcall::AppMessage {
                        proto,
                        from,
                        payload,
                    } => {
                        if handlers.iter().any(|h| h.proto() == proto) {
                            if !inbox_admit(inbox, inbox_busy_until_ms, now, inbox.agg_capacity) {
                                *shed_by_proto.entry(proto).or_insert(0) += 1;
                                continue;
                            }
                            *recv_by_proto.entry(proto).or_insert(0) += 1;
                            fire(
                                chord,
                                handlers,
                                now,
                                &mut scan,
                                sent_by_proto,
                                Some(proto),
                                |h, cx| h.on_message(cx, from, &payload),
                            );
                        } else {
                            pass.push(Output::Upcall(Upcall::AppMessage {
                                proto,
                                from,
                                payload,
                            }));
                        }
                    }
                    Upcall::Routed {
                        key,
                        payload,
                        origin,
                        hops,
                    } => match payload.split_first() {
                        Some((&p, rest)) if handlers.iter().any(|h| h.proto() == p) => {
                            if !inbox_admit(inbox, inbox_busy_until_ms, now, inbox.agg_capacity) {
                                *shed_by_proto.entry(p).or_insert(0) += 1;
                                continue;
                            }
                            *recv_by_proto.entry(p).or_insert(0) += 1;
                            fire(
                                chord,
                                handlers,
                                now,
                                &mut scan,
                                sent_by_proto,
                                Some(p),
                                |h, cx| h.on_routed(cx, key, origin, rest),
                            );
                        }
                        _ => pass.push(Output::Upcall(Upcall::Routed {
                            key,
                            payload,
                            origin,
                            hops,
                        })),
                    },
                    Upcall::NeighborhoodChanged => {
                        fire(
                            chord,
                            handlers,
                            now,
                            &mut scan,
                            sent_by_proto,
                            None,
                            |h, cx| h.on_neighborhood_changed(cx),
                        );
                        pass.push(Output::Upcall(Upcall::NeighborhoodChanged));
                    }
                    other => pass.push(Output::Upcall(other)),
                },
                timer @ Output::SetTimer { .. } => pass.push(timer),
            }
        }
        pass
    }
}

impl Actor for StackNode {
    fn addr(&self) -> NodeAddr {
        self.chord.me().addr
    }

    fn on_input(&mut self, input: Input) -> Vec<Output> {
        self.handle(input)
    }

    fn set_now(&mut self, now_ms: u64) {
        StackNode::set_now(self, now_ms);
    }
}

/// Invoke `f` on every handler (or only the one matching `proto`), each
/// under a fresh [`Ctx`] feeding the shared scan queue. Returns whether any
/// handler matched.
fn fire<F>(
    chord: &mut ChordNode,
    handlers: &mut [Box<dyn AppProtocol>],
    now_ms: u64,
    scan: &mut VecDeque<Output>,
    sent: &mut HashMap<u8, u64>,
    proto: Option<u8>,
    mut f: F,
) -> bool
where
    F: FnMut(&mut dyn AppProtocol, &mut Ctx<'_>),
{
    let mut hit = false;
    for h in handlers.iter_mut() {
        let hp = h.proto();
        if proto.is_some_and(|p| p != hp) {
            continue;
        }
        let mut cx = Ctx {
            chord: &mut *chord,
            queue: &mut *scan,
            sent: &mut *sent,
            proto: hp,
            now_ms,
        };
        f(h.as_mut(), &mut cx);
        hit = true;
        if proto.is_some() {
            break;
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordMsg, IdSpace};

    fn cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        }
    }

    /// A minimal protocol for engine tests: echoes every message back and
    /// records what it saw.
    struct Echo {
        proto: u8,
        seen: Vec<Vec<u8>>,
        timers: Vec<u64>,
        started: bool,
    }

    impl Echo {
        fn new(proto: u8) -> Self {
            Echo {
                proto,
                seen: Vec::new(),
                timers: Vec::new(),
                started: false,
            }
        }
    }

    impl AppProtocol for Echo {
        fn proto(&self) -> u8 {
            self.proto
        }
        fn on_start(&mut self, cx: &mut Ctx<'_>) {
            self.started = true;
            cx.set_timer(7, 100);
        }
        fn on_message(&mut self, cx: &mut Ctx<'_>, from: NodeRef, payload: &[u8]) {
            self.seen.push(payload.to_vec());
            cx.send(from, payload.to_vec());
        }
        fn on_timer(&mut self, _cx: &mut Ctx<'_>, sub: u64) {
            self.timers.push(sub);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn zero_handler_stack_is_transparent() {
        let mut bare = ChordNode::new(cfg(), Id(10), NodeAddr(1));
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1));
        assert_eq!(bare.start_create(), stack.start_create());
        let msg = ChordMsg::Ping {
            req: 9,
            sender: NodeRef::new(Id(20), NodeAddr(2)),
        };
        let input = Input::Message {
            from: NodeAddr(2),
            msg,
        };
        assert_eq!(bare.handle(input.clone()), stack.handle(input));
        assert_eq!(bare.me(), stack.me());
        assert_eq!(bare.status(), stack.status());
    }

    #[test]
    fn timer_tokens_are_partitioned_by_proto() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1))
            .with_app(Echo::new(40))
            .with_app(Echo::new(41));
        let outs = stack.start_create();
        // Both handlers armed sub-token 7; the wire tokens must differ.
        let tokens: Vec<u64> = outs
            .iter()
            .filter_map(|o| match o {
                Output::SetTimer {
                    kind: TimerKind::App(t),
                    ..
                } => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(tokens.len(), 2);
        assert_ne!(tokens[0], tokens[1]);
        // Firing one token reaches only its own handler.
        let _ = stack.handle(Input::Timer(TimerKind::App(tokens[0])));
        assert_eq!(stack.app::<Echo>().timers, vec![7]);
        let b: Vec<&Echo> = stack
            .handlers
            .iter()
            .filter_map(|h| h.as_any().downcast_ref::<Echo>())
            .collect();
        assert_eq!(b[0].timers, vec![7]);
        assert!(b[1].timers.is_empty());
    }

    #[test]
    fn messages_dispatch_by_proto_byte_and_tally() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1)).with_app(Echo::new(40));
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        let outs = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::App {
                proto: 40,
                from: peer,
                payload: vec![1, 2, 3].into(),
            },
        });
        // Handler consumed it and echoed back.
        assert_eq!(stack.app::<Echo>().seen, vec![vec![1, 2, 3]]);
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: ChordMsg::App { proto: 40, .. },
                ..
            }
        )));
        assert_eq!(stack.proto_received(40), 1);
        assert_eq!(stack.proto_sent(40), 1);
        // A proto byte with no handler passes through untouched.
        let outs = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::App {
                proto: 99,
                from: peer,
                payload: vec![9].into(),
            },
        });
        assert!(outs
            .iter()
            .any(|o| matches!(o, Output::Upcall(Upcall::AppMessage { proto: 99, .. }))));
        assert_eq!(stack.proto_received(99), 0);
    }

    #[test]
    fn on_start_fires_for_every_handler() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1))
            .with_app(Echo::new(40))
            .with_app(Echo::new(41));
        let _ = stack.start_create();
        assert!(stack
            .handlers
            .iter()
            .filter_map(|h| h.as_any().downcast_ref::<Echo>())
            .all(|e| e.started));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_proto_byte_rejected() {
        let _ = StackNode::new(cfg(), Id(10), NodeAddr(1))
            .with_app(Echo::new(40))
            .with_app(Echo::new(40));
    }

    #[test]
    fn inbox_policy_off_never_sheds() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1)).with_app(Echo::new(40));
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        for i in 0..200u8 {
            let _ = stack.handle(Input::Message {
                from: NodeAddr(2),
                msg: ChordMsg::App {
                    proto: 40,
                    from: peer,
                    payload: vec![i].into(),
                },
            });
        }
        assert_eq!(stack.proto_received(40), 200);
        assert_eq!(stack.shed_count(40), 0);
        assert_eq!(stack.stats_shed_count(), 0);
    }

    #[test]
    fn overload_sheds_aggregation_beyond_capacity() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1))
            .with_app(Echo::new(40))
            .with_inbox_policy(InboxPolicy {
                service_ms: 5,
                agg_capacity: 4,
                stats_capacity: 1,
            });
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        // A burst at one instant: the virtual-time inbox admits up to
        // `agg_capacity` payloads before the backlog horizon fills.
        for i in 0..10u8 {
            let _ = stack.handle(Input::Message {
                from: NodeAddr(2),
                msg: ChordMsg::App {
                    proto: 40,
                    from: peer,
                    payload: vec![i].into(),
                },
            });
        }
        assert_eq!(stack.proto_received(40), 4);
        assert_eq!(stack.shed_count(40), 6);
        assert_eq!(stack.app::<Echo>().seen.len(), 4);
        // Control traffic is never shed: chord pings still get pongs.
        let outs = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::Ping {
                req: 77,
                sender: peer,
            },
        });
        assert!(outs.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: ChordMsg::Pong { req: 77, .. },
                ..
            }
        )));
        // Once virtual time drains the backlog, admission resumes.
        stack.set_now(10_000);
        let _ = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::App {
                proto: 40,
                from: peer,
                payload: vec![99].into(),
            },
        });
        assert_eq!(stack.proto_received(40), 5);
        // Shed counters surface in the obs registry with a proto label.
        let reg = stack.obs_registry();
        assert_eq!(reg.counter_with("engine_shed_total", proto_label(40)), 6);
    }

    #[test]
    fn stats_class_sheds_before_aggregation() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1))
            .with_app(Echo::new(40))
            .with_inbox_policy(InboxPolicy {
                service_ms: 5,
                agg_capacity: 8,
                stats_capacity: 2,
            });
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        for req in 0..6u64 {
            let _ = stack.handle(Input::Message {
                from: NodeAddr(2),
                msg: ChordMsg::StatsRequest { req, sender: peer },
            });
        }
        assert_eq!(stack.stats_shed_count(), 4);
        let reg = stack.obs_registry();
        assert_eq!(reg.counter_with("engine_shed_total", "stats"), 4);
    }

    #[test]
    fn drive_emits_through_engine() {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1)).with_app(Echo::new(40));
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        let (r, outs) = stack.drive::<Echo, _>(|_e, cx| {
            cx.send(peer, vec![5]);
            42u32
        });
        assert_eq!(r, 42);
        assert!(matches!(
            outs.as_slice(),
            [Output::Send {
                msg: ChordMsg::App { proto: 40, .. },
                ..
            }]
        ));
        assert_eq!(stack.proto_sent(40), 1);
    }

    /// A stack whose chord node knows one peer (taught via Notify).
    fn stack_with_peer() -> (StackNode, NodeRef) {
        let mut stack = StackNode::new(cfg(), Id(10), NodeAddr(1));
        let _ = stack.start_create();
        let peer = NodeRef::new(Id(20), NodeAddr(2));
        let _ = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::Notify { sender: peer },
        });
        assert!(stack.chord().peer_by_addr(NodeAddr(2)).is_some());
        (stack, peer)
    }

    fn checksum_err() -> dat_chord::wire::CodecError {
        dat_chord::wire::CodecError::BadChecksum {
            computed: 1,
            stored: 2,
        }
    }

    #[test]
    fn bad_frame_bursts_escalate_to_suspicion() {
        let (mut stack, peer) = stack_with_peer();
        // Two bad frames inside the window: counted but below threshold.
        for _ in 0..2 {
            let outs = stack.handle(Input::BadFrame {
                from: Some(NodeAddr(2)),
                error: checksum_err(),
            });
            assert!(outs.is_empty(), "a bad frame produces no outputs");
        }
        assert_eq!(stack.bad_frames_total(), 2);
        assert_eq!(stack.bad_frame_count("bad_checksum"), 2);
        assert_eq!(stack.bad_frame_suspects(), 0);
        assert_eq!(
            stack.chord().health().peek(peer.id),
            SuspicionLevel::Healthy
        );
        // The third crosses the default threshold: forced Suspect + trace.
        let _ = stack.handle(Input::BadFrame {
            from: Some(NodeAddr(2)),
            error: checksum_err(),
        });
        assert_eq!(stack.bad_frame_suspects(), 1);
        assert_eq!(
            stack.chord().health().peek(peer.id),
            SuspicionLevel::Suspect
        );
        assert!(stack
            .trace_events()
            .iter()
            .any(|e| matches!(e.kind, dat_obs::EventKind::Poisoned { node } if node == peer.id.0)));
        let reg = stack.obs_registry();
        assert_eq!(reg.counter_with("bad_frames_total", "bad_checksum"), 3);
        assert_eq!(reg.counter_sum("bad_frame_suspects_total"), 1);
    }

    #[test]
    fn unattributable_and_unknown_sources_count_without_scoring() {
        let (mut stack, peer) = stack_with_peer();
        for _ in 0..10 {
            let _ = stack.handle(Input::BadFrame {
                from: None,
                error: dat_chord::wire::CodecError::Truncated,
            });
        }
        // An address that resolves to no known peer is scored but cannot
        // be suspected.
        for _ in 0..10 {
            let _ = stack.handle(Input::BadFrame {
                from: Some(NodeAddr(99)),
                error: checksum_err(),
            });
        }
        assert_eq!(stack.bad_frames_total(), 20);
        assert_eq!(stack.bad_frame_count("truncated"), 10);
        assert_eq!(stack.bad_frame_suspects(), 0);
        assert_eq!(
            stack.chord().health().peek(peer.id),
            SuspicionLevel::Healthy
        );
    }

    #[test]
    fn bad_frame_window_expires_and_table_is_bounded() {
        let (mut stack, _) = stack_with_peer();
        stack.set_bad_frame_config(BadFrameConfig {
            window_ms: 1_000,
            threshold: 3,
            max_tracked: 4,
        });
        // Two bad frames, then the window expires: the next two do not
        // reach the threshold either.
        for t in [0u64, 100] {
            stack.set_now(t);
            let _ = stack.handle(Input::BadFrame {
                from: Some(NodeAddr(2)),
                error: checksum_err(),
            });
        }
        for t in [5_000u64, 5_100] {
            stack.set_now(t);
            let _ = stack.handle(Input::BadFrame {
                from: Some(NodeAddr(2)),
                error: checksum_err(),
            });
        }
        assert_eq!(stack.bad_frame_suspects(), 0);
        // A spray of spoofed sources stays bounded at max_tracked.
        for i in 0..100u64 {
            let _ = stack.handle(Input::BadFrame {
                from: Some(NodeAddr(1_000 + i)),
                error: checksum_err(),
            });
        }
        assert!(stack.bad_peers_tracked() <= 4);
    }

    #[test]
    fn repeated_poisoning_episodes_quarantine_then_release() {
        let (mut stack, peer) = stack_with_peer();
        stack.set_health_config(dat_chord::HealthConfig {
            flap_window_ms: 60_000,
            flap_threshold: 3,
            quarantine_ms: 5_000,
            ..dat_chord::HealthConfig::default()
        });
        let mut now = 0u64;
        // Three poison-burst → heartbeat-recovery cycles inside the flap
        // window: the third recovery trips quarantine.
        for _ in 0..3 {
            for _ in 0..3 {
                now += 10;
                stack.set_now(now);
                let _ = stack.handle(Input::BadFrame {
                    from: Some(NodeAddr(2)),
                    error: checksum_err(),
                });
            }
            now += 500;
            stack.set_now(now);
            let _ = stack.handle(Input::Message {
                from: NodeAddr(2),
                msg: ChordMsg::Notify { sender: peer },
            });
        }
        assert_eq!(
            stack.chord().health().peek(peer.id),
            SuspicionLevel::Quarantined
        );
        assert_eq!(stack.chord().health().quarantines, 1);
        // Quarantine served + the peer talking again → it rejoins.
        now += 6_000;
        stack.set_now(now);
        let _ = stack.handle(Input::Message {
            from: NodeAddr(2),
            msg: ChordMsg::Notify { sender: peer },
        });
        assert_eq!(
            stack.chord().health().peek(peer.id),
            SuspicionLevel::Healthy
        );
        assert_eq!(stack.chord().health().rejoins, 1);
    }
}
