//! Explicit-membership aggregation tree — the baseline DAT argues against.
//!
//! The paper motivates implicit trees by the cost of the alternative
//! (§2.3): "explicit tree construction has limited scalability … the
//! parent-child maintenance overhead increases linearly with the number of
//! trees \[and\] will be further exaggerated when nodes dynamically join or
//! leave". To *quantify* that claim (the churn experiment in
//! `repro churn`), this module implements a classic explicitly-maintained
//! aggregation tree as an [`AppProtocol`] over the same Chord substrate:
//!
//! * a joining node routes a `JoinTree` request to the rendezvous root;
//!   nodes with spare capacity adopt it, full nodes delegate to their
//!   lowest-degree child (yielding a bounded-degree tree);
//! * parents and children exchange periodic heartbeats; a missed heartbeat
//!   dissolves the edge and forces the child to re-join;
//! * every membership message (`join_tree`, `adopt`, `heartbeat`,
//!   `heartbeat_ack`, `leave_tree`) is tallied separately from aggregation
//!   payload traffic, so experiments can compare *maintenance* overhead
//!   against the implicit DAT's zero.

use std::collections::HashMap;

use dat_chord::{Id, Metrics, NodeRef, NodeStatus};

use crate::aggregate::AggPartial;
use crate::codec::{CodecError, ReadPartial, Reader, WritePartial, Writer, WIRE_VERSION};
use crate::engine::{AppProtocol, Ctx, StackNode};

/// Application-protocol discriminator for explicit-tree messages.
pub const EXPLICIT_PROTO: u8 = 2;

/// Explicit-tree wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ExpMsg {
    /// Routed to the root: `joiner` wants a tree parent.
    JoinTree {
        /// Tree rendezvous key.
        key: Id,
        /// The node seeking a parent.
        joiner: NodeRef,
    },
    /// Adoption notice: sender is now the joiner's parent.
    Adopt {
        /// Tree rendezvous key.
        key: Id,
        /// The adopting parent.
        parent: NodeRef,
    },
    /// Parent-liveness heartbeat (child → parent).
    Heartbeat {
        /// Tree rendezvous key.
        key: Id,
        /// The heartbeating child.
        sender: NodeRef,
    },
    /// Heartbeat acknowledgement (parent → child).
    HeartbeatAck {
        /// Tree rendezvous key.
        key: Id,
        /// The acknowledging parent.
        sender: NodeRef,
    },
    /// Graceful departure notice to parent and children.
    LeaveTree {
        /// Tree rendezvous key.
        key: Id,
        /// The departing node.
        sender: NodeRef,
    },
    /// Aggregation payload pushed child → parent (same shape as DAT's).
    Update {
        /// Tree rendezvous key.
        key: Id,
        /// Epoch index.
        epoch: u64,
        /// Merged subtree partial.
        partial: AggPartial,
        /// The pushing child.
        sender: NodeRef,
    },
}

impl ExpMsg {
    /// Metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            ExpMsg::JoinTree { .. } => "exp_join_tree",
            ExpMsg::Adopt { .. } => "exp_adopt",
            ExpMsg::Heartbeat { .. } => "exp_heartbeat",
            ExpMsg::HeartbeatAck { .. } => "exp_heartbeat_ack",
            ExpMsg::LeaveTree { .. } => "exp_leave_tree",
            ExpMsg::Update { .. } => "exp_update",
        }
    }

    /// `true` for tree-membership maintenance (everything but `Update`).
    pub fn is_membership(&self) -> bool {
        !matches!(self, ExpMsg::Update { .. })
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        match self {
            ExpMsg::JoinTree { key, joiner } => {
                w.u8(1).id(*key).node_ref(*joiner);
            }
            ExpMsg::Adopt { key, parent } => {
                w.u8(2).id(*key).node_ref(*parent);
            }
            ExpMsg::Heartbeat { key, sender } => {
                w.u8(3).id(*key).node_ref(*sender);
            }
            ExpMsg::HeartbeatAck { key, sender } => {
                w.u8(4).id(*key).node_ref(*sender);
            }
            ExpMsg::LeaveTree { key, sender } => {
                w.u8(5).id(*key).node_ref(*sender);
            }
            ExpMsg::Update {
                key,
                epoch,
                partial,
                sender,
            } => {
                w.u8(6)
                    .id(*key)
                    .u64(*epoch)
                    .partial(partial)
                    .node_ref(*sender);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let tag = r.u8()?;
        let m = match tag {
            1 => ExpMsg::JoinTree {
                key: r.id()?,
                joiner: r.node_ref()?,
            },
            2 => ExpMsg::Adopt {
                key: r.id()?,
                parent: r.node_ref()?,
            },
            3 => ExpMsg::Heartbeat {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            4 => ExpMsg::HeartbeatAck {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            5 => ExpMsg::LeaveTree {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            6 => ExpMsg::Update {
                key: r.id()?,
                epoch: r.u64()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            t => return Err(CodecError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(m)
    }
}

/// Tunables for the explicit tree.
#[derive(Clone, Copy, Debug)]
pub struct ExplicitConfig {
    /// Maximum children per node (bounded degree).
    pub max_children: usize,
    /// Heartbeat period, ms.
    pub heartbeat_ms: u64,
    /// Missed-heartbeat threshold before an edge is dissolved.
    pub miss_limit: u32,
    /// Aggregation epoch, ms (matches the DAT side for fair comparison).
    pub epoch_ms: u64,
}

impl Default for ExplicitConfig {
    fn default() -> Self {
        ExplicitConfig {
            max_children: 4,
            heartbeat_ms: 1_000,
            miss_limit: 3,
            epoch_ms: 1_000,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExpTimer {
    Heartbeat,
    Epoch,
}

#[derive(Clone, Debug)]
struct ChildState {
    node: NodeRef,
    missed: u32,
    partial: Option<(AggPartial, u64)>,
}

/// The explicit-membership aggregation tree for one rendezvous key, as a
/// protocol handler (Chord is used only as a router for `JoinTree`).
pub struct ExplicitProtocol {
    cfg: ExplicitConfig,
    key: Id,
    parent: Option<NodeRef>,
    /// Parent heartbeats missed (from the child's perspective).
    parent_missed: u32,
    children: HashMap<Id, ChildState>,
    local: Option<f64>,
    epoch: u64,
    timers: HashMap<u64, ExpTimer>,
    next_token: u64,
    joining_tree: bool,
    metrics: Metrics,
    /// Root-side per-epoch reports.
    reports: Vec<(u64, AggPartial)>,
}

impl ExplicitProtocol {
    /// Create an explicit-tree handler for `key`.
    pub fn new(cfg: ExplicitConfig, key: Id) -> Self {
        ExplicitProtocol {
            cfg,
            key,
            parent: None,
            parent_missed: 0,
            children: HashMap::new(),
            local: None,
            epoch: 0,
            timers: HashMap::new(),
            next_token: 1,
            joining_tree: false,
            metrics: Metrics::default(),
            reports: Vec::new(),
        }
    }

    /// Tree-layer message counters (membership traffic is every kind except
    /// `exp_update`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The tree's rendezvous key.
    pub fn key(&self) -> Id {
        self.key
    }

    /// Total membership-maintenance messages sent by this node.
    pub fn membership_sent(&self) -> u64 {
        self.metrics.sent_of_kinds(&[
            "exp_join_tree",
            "exp_adopt",
            "exp_heartbeat",
            "exp_heartbeat_ack",
            "exp_leave_tree",
        ])
    }

    /// Current tree parent.
    pub fn tree_parent(&self) -> Option<NodeRef> {
        self.parent
    }

    /// Current child count.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Update the local observation.
    pub fn set_local(&mut self, v: f64) {
        self.local = Some(v);
    }

    /// Root-side per-epoch global partials.
    pub fn reports(&self) -> &[(u64, AggPartial)] {
        &self.reports
    }

    fn is_root(&self, cx: &Ctx<'_>) -> bool {
        cx.owns(self.key)
    }

    fn arm_timer(&mut self, cx: &mut Ctx<'_>, t: ExpTimer, delay: u64) {
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, t);
        cx.set_timer(token, delay);
    }

    fn send_join_tree(&mut self, cx: &mut Ctx<'_>) {
        if self.joining_tree || self.is_root(cx) {
            return;
        }
        self.joining_tree = true;
        let m = ExpMsg::JoinTree {
            key: self.key,
            joiner: cx.me(),
        };
        self.metrics.count_sent_kind(m.kind());
        cx.route(self.key, m.encode());
    }

    fn on_msg(&mut self, cx: &mut Ctx<'_>, m: ExpMsg) {
        let me = cx.me();
        match m {
            ExpMsg::JoinTree { key, joiner } => {
                if joiner.id == me.id {
                    return;
                }
                if self.children.len() < self.cfg.max_children {
                    self.children.insert(
                        joiner.id,
                        ChildState {
                            node: joiner,
                            missed: 0,
                            partial: None,
                        },
                    );
                    let adopt = ExpMsg::Adopt { key, parent: me };
                    self.metrics.count_sent_kind(adopt.kind());
                    cx.send(joiner, adopt.encode());
                } else {
                    // Delegate to the lowest-id child (deterministic,
                    // keeps the tree bounded-degree and O(log n) deep
                    // in expectation).
                    let target = self
                        .children
                        .values()
                        .map(|c| c.node)
                        .min_by_key(|n| n.id)
                        .expect("full node has children");
                    let fwd = ExpMsg::JoinTree { key, joiner };
                    self.metrics.count_sent_kind(fwd.kind());
                    cx.send(target, fwd.encode());
                }
            }
            ExpMsg::Adopt { key: _, parent } => {
                self.joining_tree = false;
                self.parent = Some(parent);
                self.parent_missed = 0;
            }
            ExpMsg::Heartbeat { key, sender } => {
                if let Some(c) = self.children.get_mut(&sender.id) {
                    c.missed = 0;
                    let ack = ExpMsg::HeartbeatAck { key, sender: me };
                    self.metrics.count_sent_kind(ack.kind());
                    cx.send(sender, ack.encode());
                }
                // Heartbeat from an unknown child: it was dropped; silence
                // makes it re-join.
            }
            ExpMsg::HeartbeatAck { .. } => {
                self.parent_missed = 0;
            }
            ExpMsg::LeaveTree { key: _, sender } => {
                if self.parent.map(|p| p.id) == Some(sender.id) {
                    self.parent = None;
                    self.send_join_tree(cx);
                }
                self.children.remove(&sender.id);
            }
            ExpMsg::Update {
                key: _,
                epoch,
                partial,
                sender,
            } => {
                if let Some(c) = self.children.get_mut(&sender.id) {
                    c.partial = Some((partial, epoch));
                }
            }
        }
    }

    fn on_heartbeat_timer(&mut self, cx: &mut Ctx<'_>) {
        if cx.status() != NodeStatus::Active {
            return;
        }
        let me = cx.me();
        // Child side: heartbeat the parent, count misses.
        if let Some(p) = self.parent {
            self.parent_missed += 1;
            if self.parent_missed > self.cfg.miss_limit {
                self.parent = None;
                self.send_join_tree(cx);
            } else {
                let hb = ExpMsg::Heartbeat {
                    key: self.key,
                    sender: me,
                };
                self.metrics.count_sent_kind(hb.kind());
                cx.send(p, hb.encode());
            }
        } else if !self.is_root(cx) {
            self.send_join_tree(cx);
        }
        // Parent side: age children.
        let dead: Vec<Id> = self
            .children
            .iter_mut()
            .filter_map(|(id, c)| {
                c.missed += 1;
                (c.missed > self.cfg.miss_limit).then_some(*id)
            })
            .collect();
        for id in dead {
            self.children.remove(&id);
        }
    }

    fn on_epoch(&mut self, cx: &mut Ctx<'_>) {
        if cx.status() != NodeStatus::Active {
            return;
        }
        self.epoch += 1;
        let mut acc = AggPartial::identity();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        for c in self.children.values() {
            if let Some((p, e)) = &c.partial {
                if self.epoch.saturating_sub(*e) <= 3 {
                    acc.merge(p);
                }
            }
        }
        if self.is_root(cx) {
            self.reports.push((self.epoch, acc));
        } else if let Some(p) = self.parent {
            let m = ExpMsg::Update {
                key: self.key,
                epoch: self.epoch,
                partial: acc,
                sender: cx.me(),
            };
            self.metrics.count_sent_kind(m.kind());
            cx.send(p, m.encode());
        }
    }
}

impl AppProtocol for ExplicitProtocol {
    fn proto(&self) -> u8 {
        EXPLICIT_PROTO
    }

    fn on_start(&mut self, cx: &mut Ctx<'_>) {
        self.arm_timer(cx, ExpTimer::Heartbeat, self.cfg.heartbeat_ms);
        self.arm_timer(cx, ExpTimer::Epoch, self.cfg.epoch_ms);
        if !self.is_root(cx) {
            self.send_join_tree(cx);
        }
    }

    fn on_message(&mut self, cx: &mut Ctx<'_>, _from: NodeRef, payload: &[u8]) {
        match ExpMsg::decode(payload) {
            Ok(m) => {
                self.metrics.count_received_kind(m.kind());
                self.on_msg(cx, m);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn on_timer(&mut self, cx: &mut Ctx<'_>, sub: u64) {
        match self.timers.remove(&sub) {
            Some(ExpTimer::Heartbeat) => {
                self.on_heartbeat_timer(cx);
                self.arm_timer(cx, ExpTimer::Heartbeat, self.cfg.heartbeat_ms);
            }
            Some(ExpTimer::Epoch) => {
                self.on_epoch(cx);
                self.arm_timer(cx, ExpTimer::Epoch, self.cfg.epoch_ms);
            }
            None => {}
        }
    }

    fn on_routed(&mut self, cx: &mut Ctx<'_>, _key: Id, _origin: NodeRef, payload: &[u8]) {
        match ExpMsg::decode(payload) {
            Ok(m) => {
                self.metrics.count_received_kind(m.kind());
                self.on_msg(cx, m);
            }
            Err(_) => self.metrics.dropped += 1,
        }
    }

    fn on_leave(&mut self, cx: &mut Ctx<'_>) {
        let leave = ExpMsg::LeaveTree {
            key: self.key,
            sender: cx.me(),
        };
        if let Some(p) = self.parent {
            self.metrics.count_sent_kind(leave.kind());
            cx.send(p, leave.encode());
        }
        let kids: Vec<NodeRef> = self.children.values().map(|c| c.node).collect();
        for c in kids {
            self.metrics.count_sent_kind(leave.kind());
            cx.send(c, leave.encode());
        }
    }

    fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn metrics_mut(&mut self) -> Option<&mut Metrics> {
        Some(&mut self.metrics)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Explicit-tree conveniences on the stack engine, `exp_`-prefixed to stay
/// clear of the DAT names. All of these panic if no [`ExplicitProtocol`] is
/// registered.
impl StackNode {
    /// The explicit-tree handler (read-only).
    pub fn explicit(&self) -> &ExplicitProtocol {
        self.app::<ExplicitProtocol>()
    }

    /// The explicit-tree handler (mutable).
    pub fn explicit_mut(&mut self) -> &mut ExplicitProtocol {
        self.app_mut::<ExplicitProtocol>()
    }

    /// Update the explicit tree's local observation.
    pub fn exp_set_local(&mut self, v: f64) {
        self.explicit_mut().set_local(v);
    }

    /// Root-side per-epoch global partials of the explicit tree.
    pub fn exp_reports(&self) -> &[(u64, AggPartial)] {
        self.explicit().reports()
    }

    /// Current explicit-tree parent.
    pub fn tree_parent(&self) -> Option<NodeRef> {
        self.explicit().tree_parent()
    }

    /// Current explicit-tree child count.
    pub fn child_count(&self) -> usize {
        self.explicit().child_count()
    }

    /// Total explicit-tree membership messages sent by this node.
    pub fn membership_sent(&self) -> u64 {
        self.explicit().membership_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::{ChordConfig, IdSpace, NodeAddr, Output};

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id))
    }

    fn mk(id: u64) -> StackNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        StackNode::new(ccfg, Id(id), NodeAddr(id))
            .with_app(ExplicitProtocol::new(ExplicitConfig::default(), Id(0)))
    }

    #[test]
    fn exp_msg_roundtrip() {
        let msgs = vec![
            ExpMsg::JoinTree {
                key: Id(1),
                joiner: nr(2),
            },
            ExpMsg::Adopt {
                key: Id(1),
                parent: nr(3),
            },
            ExpMsg::Heartbeat {
                key: Id(1),
                sender: nr(4),
            },
            ExpMsg::HeartbeatAck {
                key: Id(1),
                sender: nr(5),
            },
            ExpMsg::LeaveTree {
                key: Id(1),
                sender: nr(6),
            },
            ExpMsg::Update {
                key: Id(1),
                epoch: 7,
                partial: AggPartial::of(1.5),
                sender: nr(8),
            },
        ];
        for m in msgs {
            assert_eq!(ExpMsg::decode(&m.encode()).unwrap(), m);
            assert_eq!(m.is_membership(), !matches!(m, ExpMsg::Update { .. }));
        }
    }

    #[test]
    fn adoption_under_capacity() {
        let mut root = mk(0);
        let _ = root.start_create();
        let ((), outs) = root.drive::<ExplicitProtocol, _>(|e, cx| {
            e.on_msg(
                cx,
                ExpMsg::JoinTree {
                    key: Id(0),
                    joiner: nr(10),
                },
            )
        });
        assert_eq!(root.child_count(), 1);
        // The adopt message went out.
        let adopted = outs.iter().any(|o| matches!(o, Output::Send { .. }));
        assert!(adopted);
    }

    #[test]
    fn full_node_delegates_join() {
        let mut root = mk(0);
        let _ = root.start_create();
        for i in 0..4 {
            let _ = root.drive::<ExplicitProtocol, _>(|e, cx| {
                e.on_msg(
                    cx,
                    ExpMsg::JoinTree {
                        key: Id(0),
                        joiner: nr(10 + i),
                    },
                )
            });
        }
        assert_eq!(root.child_count(), 4);
        let ((), outs) = root.drive::<ExplicitProtocol, _>(|e, cx| {
            e.on_msg(
                cx,
                ExpMsg::JoinTree {
                    key: Id(0),
                    joiner: nr(99),
                },
            )
        });
        // Still 4 children; the join was forwarded to child 10.
        assert_eq!(root.child_count(), 4);
        match &outs[0] {
            Output::Send { to, .. } => assert_eq!(to.id, Id(10)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(root.explicit().metrics().sent_of("exp_join_tree"), 1);
    }

    #[test]
    fn adopt_sets_parent() {
        let mut n = mk(50);
        let _ = n.start_create();
        n.explicit_mut().joining_tree = true;
        let _ = n.drive::<ExplicitProtocol, _>(|e, cx| {
            e.on_msg(
                cx,
                ExpMsg::Adopt {
                    key: Id(0),
                    parent: nr(3),
                },
            )
        });
        assert_eq!(n.tree_parent().unwrap().id, Id(3));
        assert!(!n.explicit().joining_tree);
    }

    #[test]
    fn missed_heartbeats_dissolve_edges() {
        let mut n = mk(50);
        let _ = n.start_create();
        n.explicit_mut().parent = Some(nr(3));
        n.explicit_mut().children.insert(
            Id(9),
            ChildState {
                node: nr(9),
                missed: 0,
                partial: None,
            },
        );
        for _ in 0..5 {
            let _ = n.drive::<ExplicitProtocol, _>(|e, cx| e.on_heartbeat_timer(cx));
        }
        // Edge to the silent child dissolved...
        assert_eq!(n.child_count(), 0);
        // ...and the silent parent was abandoned (rejoin attempted).
        assert!(n.tree_parent().is_none());
    }

    #[test]
    fn epoch_pushes_to_parent_and_root_reports() {
        let mut n = mk(50);
        let _ = n.start_create();
        // A lone created node IS the root (owns everything).
        n.exp_set_local(42.0);
        let _ = n.drive::<ExplicitProtocol, _>(|e, cx| e.on_epoch(cx));
        assert_eq!(n.exp_reports().len(), 1);
        assert_eq!(n.exp_reports()[0].1.sum, 42.0);
    }

    #[test]
    fn leave_notifies_parent_and_children() {
        let mut n = mk(50);
        let _ = n.start_create();
        n.explicit_mut().parent = Some(nr(3));
        n.explicit_mut().children.insert(
            Id(9),
            ChildState {
                node: nr(9),
                missed: 0,
                partial: None,
            },
        );
        let outs = n.leave();
        let leave_sends = outs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Output::Send {
                        msg: dat_chord::ChordMsg::App {
                            proto: EXPLICIT_PROTO,
                            ..
                        },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(leave_sends, 2, "parent and child both told");
        assert_eq!(n.explicit().metrics().sent_of("exp_leave_tree"), 2);
    }
}
