//! Explicit-membership aggregation tree — the baseline DAT argues against.
//!
//! The paper motivates implicit trees by the cost of the alternative
//! (§2.3): "explicit tree construction has limited scalability … the
//! parent-child maintenance overhead increases linearly with the number of
//! trees [and] will be further exaggerated when nodes dynamically join or
//! leave". To *quantify* that claim (the churn experiment in
//! `repro churn`), this module implements a classic explicitly-maintained
//! aggregation tree over the same Chord substrate:
//!
//! * a joining node routes a `JoinTree` request to the rendezvous root;
//!   nodes with spare capacity adopt it, full nodes delegate to their
//!   lowest-degree child (yielding a bounded-degree tree);
//! * parents and children exchange periodic heartbeats; a missed heartbeat
//!   dissolves the edge and forces the child to re-join;
//! * every membership message (`join_tree`, `adopt`, `heartbeat`,
//!   `heartbeat_ack`, `leave_tree`) is tallied separately from aggregation
//!   payload traffic, so experiments can compare *maintenance* overhead
//!   against the implicit DAT's zero.

use std::collections::HashMap;

use dat_chord::{
    ChordConfig, ChordNode, Id, Input, Metrics, NodeAddr, NodeRef, NodeStatus, Output, Upcall,
};

use crate::aggregate::AggPartial;
use crate::codec::{CodecError, Reader, Writer, WIRE_VERSION};

/// Application-protocol discriminator for explicit-tree messages.
pub const EXPLICIT_PROTO: u8 = 2;

/// Explicit-tree wire messages.
#[derive(Clone, Debug, PartialEq)]
pub enum ExpMsg {
    /// Routed to the root: `joiner` wants a tree parent.
    JoinTree {
        /// Tree rendezvous key.
        key: Id,
        /// The node seeking a parent.
        joiner: NodeRef,
    },
    /// Adoption notice: sender is now the joiner's parent.
    Adopt {
        /// Tree rendezvous key.
        key: Id,
        /// The adopting parent.
        parent: NodeRef,
    },
    /// Parent-liveness heartbeat (child → parent).
    Heartbeat {
        /// Tree rendezvous key.
        key: Id,
        /// The heartbeating child.
        sender: NodeRef,
    },
    /// Heartbeat acknowledgement (parent → child).
    HeartbeatAck {
        /// Tree rendezvous key.
        key: Id,
        /// The acknowledging parent.
        sender: NodeRef,
    },
    /// Graceful departure notice to parent and children.
    LeaveTree {
        /// Tree rendezvous key.
        key: Id,
        /// The departing node.
        sender: NodeRef,
    },
    /// Aggregation payload pushed child → parent (same shape as DAT's).
    Update {
        /// Tree rendezvous key.
        key: Id,
        /// Epoch index.
        epoch: u64,
        /// Merged subtree partial.
        partial: AggPartial,
        /// The pushing child.
        sender: NodeRef,
    },
}

impl ExpMsg {
    /// Metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            ExpMsg::JoinTree { .. } => "exp_join_tree",
            ExpMsg::Adopt { .. } => "exp_adopt",
            ExpMsg::Heartbeat { .. } => "exp_heartbeat",
            ExpMsg::HeartbeatAck { .. } => "exp_heartbeat_ack",
            ExpMsg::LeaveTree { .. } => "exp_leave_tree",
            ExpMsg::Update { .. } => "exp_update",
        }
    }

    /// `true` for tree-membership maintenance (everything but `Update`).
    pub fn is_membership(&self) -> bool {
        !matches!(self, ExpMsg::Update { .. })
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        match self {
            ExpMsg::JoinTree { key, joiner } => {
                w.u8(1).id(*key).node_ref(*joiner);
            }
            ExpMsg::Adopt { key, parent } => {
                w.u8(2).id(*key).node_ref(*parent);
            }
            ExpMsg::Heartbeat { key, sender } => {
                w.u8(3).id(*key).node_ref(*sender);
            }
            ExpMsg::HeartbeatAck { key, sender } => {
                w.u8(4).id(*key).node_ref(*sender);
            }
            ExpMsg::LeaveTree { key, sender } => {
                w.u8(5).id(*key).node_ref(*sender);
            }
            ExpMsg::Update {
                key,
                epoch,
                partial,
                sender,
            } => {
                w.u8(6)
                    .id(*key)
                    .u64(*epoch)
                    .partial(partial)
                    .node_ref(*sender);
            }
        }
        w.finish()
    }

    /// Decode from wire bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(buf);
        let ver = r.u8()?;
        if ver != WIRE_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let tag = r.u8()?;
        let m = match tag {
            1 => ExpMsg::JoinTree {
                key: r.id()?,
                joiner: r.node_ref()?,
            },
            2 => ExpMsg::Adopt {
                key: r.id()?,
                parent: r.node_ref()?,
            },
            3 => ExpMsg::Heartbeat {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            4 => ExpMsg::HeartbeatAck {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            5 => ExpMsg::LeaveTree {
                key: r.id()?,
                sender: r.node_ref()?,
            },
            6 => ExpMsg::Update {
                key: r.id()?,
                epoch: r.u64()?,
                partial: r.partial()?,
                sender: r.node_ref()?,
            },
            t => return Err(CodecError::BadTag(t)),
        };
        r.expect_end()?;
        Ok(m)
    }
}

/// Tunables for the explicit tree.
#[derive(Clone, Copy, Debug)]
pub struct ExplicitConfig {
    /// Maximum children per node (bounded degree).
    pub max_children: usize,
    /// Heartbeat period, ms.
    pub heartbeat_ms: u64,
    /// Missed-heartbeat threshold before an edge is dissolved.
    pub miss_limit: u32,
    /// Aggregation epoch, ms (matches the DAT side for fair comparison).
    pub epoch_ms: u64,
}

impl Default for ExplicitConfig {
    fn default() -> Self {
        ExplicitConfig {
            max_children: 4,
            heartbeat_ms: 1_000,
            miss_limit: 3,
            epoch_ms: 1_000,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExpTimer {
    Heartbeat,
    Epoch,
}

#[derive(Clone, Debug)]
struct ChildState {
    node: NodeRef,
    missed: u32,
    partial: Option<(AggPartial, u64)>,
}

/// A node of the explicit-membership aggregation tree for one rendezvous
/// key, layered over Chord (used only as a router for `JoinTree`).
pub struct ExplicitTreeNode {
    chord: ChordNode,
    cfg: ExplicitConfig,
    key: Id,
    parent: Option<NodeRef>,
    /// Parent heartbeats missed (from the child's perspective).
    parent_missed: u32,
    children: HashMap<Id, ChildState>,
    local: Option<f64>,
    epoch: u64,
    timers: HashMap<u64, ExpTimer>,
    next_token: u64,
    joining_tree: bool,
    metrics: Metrics,
    /// Root-side per-epoch reports.
    reports: Vec<(u64, AggPartial)>,
}

impl ExplicitTreeNode {
    /// Create an explicit-tree node for `key`.
    pub fn new(
        chord_cfg: ChordConfig,
        cfg: ExplicitConfig,
        key: Id,
        id: Id,
        addr: NodeAddr,
    ) -> Self {
        ExplicitTreeNode {
            chord: ChordNode::new(chord_cfg, id, addr),
            cfg,
            key,
            parent: None,
            parent_missed: 0,
            children: HashMap::new(),
            local: None,
            epoch: 0,
            timers: HashMap::new(),
            next_token: 1,
            joining_tree: false,
            metrics: Metrics::default(),
            reports: Vec::new(),
        }
    }

    /// This node's reference.
    pub fn me(&self) -> NodeRef {
        self.chord.me()
    }

    /// Underlying Chord node.
    pub fn chord(&self) -> &ChordNode {
        &self.chord
    }

    /// Report the host clock (monotonic ms) to the Chord layer's RTT
    /// estimator. Hosts call this before every input.
    pub fn set_now(&mut self, now_ms: u64) {
        self.chord.set_now(now_ms);
    }

    /// Tree-layer message counters (membership traffic is every kind except
    /// `exp_update`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Reset both tree-layer and Chord-layer counters.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
        self.chord.metrics_mut().reset();
    }

    /// Total membership-maintenance messages sent by this node.
    pub fn membership_sent(&self) -> u64 {
        self.metrics.sent_of_kinds(&[
            "exp_join_tree",
            "exp_adopt",
            "exp_heartbeat",
            "exp_heartbeat_ack",
            "exp_leave_tree",
        ])
    }

    /// Current tree parent.
    pub fn tree_parent(&self) -> Option<NodeRef> {
        self.parent
    }

    /// Current child count.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Update the local observation.
    pub fn set_local(&mut self, v: f64) {
        self.local = Some(v);
    }

    /// Root-side per-epoch global partials.
    pub fn reports(&self) -> &[(u64, AggPartial)] {
        &self.reports
    }

    /// Start as the first ring member.
    pub fn start_create(&mut self) -> Vec<Output> {
        let outs = self.chord.start_create();
        self.process(outs)
    }

    /// Join the ring, then the tree.
    pub fn start_join(&mut self, bootstrap: NodeRef) -> Vec<Output> {
        let outs = self.chord.start_join(bootstrap);
        self.process(outs)
    }

    /// Start with a pre-materialised routing table (see
    /// [`ChordNode::start_with_table`]); used by experiment harnesses.
    pub fn start_with_table(&mut self, table: dat_chord::FingerTable) -> Vec<Output> {
        let outs = self.chord.start_with_table(table);
        self.process(outs)
    }

    /// Gracefully leave both tree and ring.
    pub fn leave(&mut self) -> Vec<Output> {
        let mut outs: Vec<Output> = Vec::new();
        let me = self.me();
        let leave = ExpMsg::LeaveTree {
            key: self.key,
            sender: me,
        };
        if let Some(p) = self.parent {
            self.metrics.count_sent_kind(leave.kind());
            outs.push(self.chord.send_app(p, EXPLICIT_PROTO, leave.encode()));
        }
        let kids: Vec<NodeRef> = self.children.values().map(|c| c.node).collect();
        for c in kids {
            self.metrics.count_sent_kind(leave.kind());
            outs.push(self.chord.send_app(c, EXPLICIT_PROTO, leave.encode()));
        }
        let chord_outs = self.chord.leave();
        outs.extend(self.process(chord_outs));
        outs
    }

    /// Drive one input.
    pub fn handle(&mut self, input: Input) -> Vec<Output> {
        let outs = self.chord.handle(input);
        self.process(outs)
    }

    /// Am I the tree root (owner of the rendezvous key)?
    pub fn is_root(&self) -> bool {
        self.chord.owns(self.key)
    }

    fn process(&mut self, outs: Vec<Output>) -> Vec<Output> {
        let mut pass = Vec::with_capacity(outs.len());
        let mut scan: std::collections::VecDeque<Output> = outs.into();
        while let Some(o) = scan.pop_front() {
            match o {
                Output::Upcall(Upcall::Joined { id }) => {
                    self.arm_timer(ExpTimer::Heartbeat, self.cfg.heartbeat_ms, &mut scan);
                    self.arm_timer(ExpTimer::Epoch, self.cfg.epoch_ms, &mut scan);
                    if !self.is_root() {
                        self.send_join_tree(&mut scan);
                    }
                    pass.push(Output::Upcall(Upcall::Joined { id }));
                }
                Output::Upcall(Upcall::AppTimer(token)) => match self.timers.remove(&token) {
                    Some(ExpTimer::Heartbeat) => {
                        self.on_heartbeat_timer(&mut scan);
                        self.arm_timer(ExpTimer::Heartbeat, self.cfg.heartbeat_ms, &mut scan);
                    }
                    Some(ExpTimer::Epoch) => {
                        self.on_epoch(&mut scan);
                        self.arm_timer(ExpTimer::Epoch, self.cfg.epoch_ms, &mut scan);
                    }
                    None => {}
                },
                Output::Upcall(Upcall::AppMessage {
                    proto,
                    from: _,
                    payload,
                }) if proto == EXPLICIT_PROTO => match ExpMsg::decode(&payload) {
                    Ok(m) => {
                        self.metrics.count_received_kind(m.kind());
                        self.on_msg(m, &mut scan);
                    }
                    Err(_) => self.metrics.dropped += 1,
                },
                Output::Upcall(Upcall::Routed { payload, .. }) => match ExpMsg::decode(&payload) {
                    Ok(m) => {
                        self.metrics.count_received_kind(m.kind());
                        self.on_msg(m, &mut scan);
                    }
                    Err(_) => self.metrics.dropped += 1,
                },
                other => pass.push(other),
            }
        }
        pass
    }

    fn arm_timer(
        &mut self,
        t: ExpTimer,
        delay: u64,
        outs: &mut std::collections::VecDeque<Output>,
    ) {
        self.next_token += 1;
        let token = self.next_token;
        self.timers.insert(token, t);
        outs.push_back(self.chord.app_timer(token, delay));
    }

    fn send_join_tree(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        if self.joining_tree || self.is_root() {
            return;
        }
        self.joining_tree = true;
        let m = ExpMsg::JoinTree {
            key: self.key,
            joiner: self.me(),
        };
        self.metrics.count_sent_kind(m.kind());
        let routed = self.chord.route(self.key, m.encode());
        for o in self.process(routed) {
            outs.push_back(o);
        }
    }

    fn on_msg(&mut self, m: ExpMsg, outs: &mut std::collections::VecDeque<Output>) {
        let me = self.me();
        match m {
            ExpMsg::JoinTree { key, joiner } => {
                if joiner.id == me.id {
                    return;
                }
                if self.children.len() < self.cfg.max_children {
                    self.children.insert(
                        joiner.id,
                        ChildState {
                            node: joiner,
                            missed: 0,
                            partial: None,
                        },
                    );
                    let adopt = ExpMsg::Adopt { key, parent: me };
                    self.metrics.count_sent_kind(adopt.kind());
                    outs.push_back(self.chord.send_app(joiner, EXPLICIT_PROTO, adopt.encode()));
                } else {
                    // Delegate to the lowest-id child (deterministic,
                    // keeps the tree bounded-degree and O(log n) deep
                    // in expectation).
                    let target = self
                        .children
                        .values()
                        .map(|c| c.node)
                        .min_by_key(|n| n.id)
                        .expect("full node has children");
                    let fwd = ExpMsg::JoinTree { key, joiner };
                    self.metrics.count_sent_kind(fwd.kind());
                    outs.push_back(self.chord.send_app(target, EXPLICIT_PROTO, fwd.encode()));
                }
            }
            ExpMsg::Adopt { key: _, parent } => {
                self.joining_tree = false;
                self.parent = Some(parent);
                self.parent_missed = 0;
            }
            ExpMsg::Heartbeat { key, sender } => {
                if let Some(c) = self.children.get_mut(&sender.id) {
                    c.missed = 0;
                    let ack = ExpMsg::HeartbeatAck { key, sender: me };
                    self.metrics.count_sent_kind(ack.kind());
                    outs.push_back(self.chord.send_app(sender, EXPLICIT_PROTO, ack.encode()));
                }
                // Heartbeat from an unknown child: it was dropped; silence
                // makes it re-join.
            }
            ExpMsg::HeartbeatAck { .. } => {
                self.parent_missed = 0;
            }
            ExpMsg::LeaveTree { key: _, sender } => {
                if self.parent.map(|p| p.id) == Some(sender.id) {
                    self.parent = None;
                    self.send_join_tree(outs);
                }
                self.children.remove(&sender.id);
            }
            ExpMsg::Update {
                key: _,
                epoch,
                partial,
                sender,
            } => {
                if let Some(c) = self.children.get_mut(&sender.id) {
                    c.partial = Some((partial, epoch));
                }
            }
        }
    }

    fn on_heartbeat_timer(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        if self.chord.status() != NodeStatus::Active {
            return;
        }
        let me = self.me();
        // Child side: heartbeat the parent, count misses.
        if let Some(p) = self.parent {
            self.parent_missed += 1;
            if self.parent_missed > self.cfg.miss_limit {
                self.parent = None;
                self.send_join_tree(outs);
            } else {
                let hb = ExpMsg::Heartbeat {
                    key: self.key,
                    sender: me,
                };
                self.metrics.count_sent_kind(hb.kind());
                outs.push_back(self.chord.send_app(p, EXPLICIT_PROTO, hb.encode()));
            }
        } else if !self.is_root() {
            self.send_join_tree(outs);
        }
        // Parent side: age children.
        let dead: Vec<Id> = self
            .children
            .iter_mut()
            .filter_map(|(id, c)| {
                c.missed += 1;
                (c.missed > self.cfg.miss_limit).then_some(*id)
            })
            .collect();
        for id in dead {
            self.children.remove(&id);
        }
    }

    fn on_epoch(&mut self, outs: &mut std::collections::VecDeque<Output>) {
        if self.chord.status() != NodeStatus::Active {
            return;
        }
        self.epoch += 1;
        let mut acc = AggPartial::identity();
        if let Some(x) = self.local {
            acc.absorb(x);
        }
        for c in self.children.values() {
            if let Some((p, e)) = &c.partial {
                if self.epoch.saturating_sub(*e) <= 3 {
                    acc.merge(p);
                }
            }
        }
        if self.is_root() {
            self.reports.push((self.epoch, acc));
        } else if let Some(p) = self.parent {
            let m = ExpMsg::Update {
                key: self.key,
                epoch: self.epoch,
                partial: acc,
                sender: self.me(),
            };
            self.metrics.count_sent_kind(m.kind());
            outs.push_back(self.chord.send_app(p, EXPLICIT_PROTO, m.encode()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dat_chord::IdSpace;

    fn nr(id: u64) -> NodeRef {
        NodeRef::new(Id(id), NodeAddr(id))
    }

    fn mk(id: u64) -> ExplicitTreeNode {
        let ccfg = ChordConfig {
            space: IdSpace::new(8),
            ..ChordConfig::default()
        };
        ExplicitTreeNode::new(ccfg, ExplicitConfig::default(), Id(0), Id(id), NodeAddr(id))
    }

    #[test]
    fn exp_msg_roundtrip() {
        let msgs = vec![
            ExpMsg::JoinTree {
                key: Id(1),
                joiner: nr(2),
            },
            ExpMsg::Adopt {
                key: Id(1),
                parent: nr(3),
            },
            ExpMsg::Heartbeat {
                key: Id(1),
                sender: nr(4),
            },
            ExpMsg::HeartbeatAck {
                key: Id(1),
                sender: nr(5),
            },
            ExpMsg::LeaveTree {
                key: Id(1),
                sender: nr(6),
            },
            ExpMsg::Update {
                key: Id(1),
                epoch: 7,
                partial: AggPartial::of(1.5),
                sender: nr(8),
            },
        ];
        for m in msgs {
            assert_eq!(ExpMsg::decode(&m.encode()).unwrap(), m);
            assert_eq!(m.is_membership(), !matches!(m, ExpMsg::Update { .. }));
        }
    }

    #[test]
    fn adoption_under_capacity() {
        let mut root = mk(0);
        let _ = root.start_create();
        let mut outs = std::collections::VecDeque::new();
        root.on_msg(
            ExpMsg::JoinTree {
                key: Id(0),
                joiner: nr(10),
            },
            &mut outs,
        );
        assert_eq!(root.child_count(), 1);
        // The adopt message went out.
        let adopted = outs.iter().any(|o| matches!(o, Output::Send { .. }));
        assert!(adopted);
    }

    #[test]
    fn full_node_delegates_join() {
        let mut root = mk(0);
        let _ = root.start_create();
        let mut outs = std::collections::VecDeque::new();
        for i in 0..4 {
            root.on_msg(
                ExpMsg::JoinTree {
                    key: Id(0),
                    joiner: nr(10 + i),
                },
                &mut outs,
            );
        }
        assert_eq!(root.child_count(), 4);
        outs.clear();
        root.on_msg(
            ExpMsg::JoinTree {
                key: Id(0),
                joiner: nr(99),
            },
            &mut outs,
        );
        // Still 4 children; the join was forwarded to child 10.
        assert_eq!(root.child_count(), 4);
        match &outs[0] {
            Output::Send { to, .. } => assert_eq!(to.id, Id(10)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(root.metrics().sent_of("exp_join_tree"), 1);
    }

    #[test]
    fn adopt_sets_parent() {
        let mut n = mk(50);
        let _ = n.start_create();
        let mut outs = std::collections::VecDeque::new();
        n.joining_tree = true;
        n.on_msg(
            ExpMsg::Adopt {
                key: Id(0),
                parent: nr(3),
            },
            &mut outs,
        );
        assert_eq!(n.tree_parent().unwrap().id, Id(3));
        assert!(!n.joining_tree);
    }

    #[test]
    fn missed_heartbeats_dissolve_edges() {
        let mut n = mk(50);
        let _ = n.start_create();
        n.parent = Some(nr(3));
        n.children.insert(
            Id(9),
            ChildState {
                node: nr(9),
                missed: 0,
                partial: None,
            },
        );
        let mut outs = std::collections::VecDeque::new();
        for _ in 0..5 {
            n.on_heartbeat_timer(&mut outs);
        }
        // Edge to the silent child dissolved...
        assert_eq!(n.child_count(), 0);
        // ...and the silent parent was abandoned (rejoin attempted).
        assert!(n.tree_parent().is_none());
    }

    #[test]
    fn epoch_pushes_to_parent_and_root_reports() {
        let mut n = mk(50);
        let _ = n.start_create();
        // A lone created node IS the root (owns everything).
        n.set_local(42.0);
        let mut outs = std::collections::VecDeque::new();
        n.on_epoch(&mut outs);
        assert_eq!(n.reports().len(), 1);
        assert_eq!(n.reports()[0].1.sum, 42.0);
    }
}
