//! Closed-form tree properties (paper §3.3 and §3.5).
//!
//! For a basic DAT over `n` *evenly distributed* nodes the paper derives
//! the branching factor of node `i` as
//!
//! ```text
//! B(i, n) = log2(n) − ⌈log2(d/d0 + 1)⌉
//! ```
//!
//! with `d = DIST(i, r)` the clockwise distance from `i` to the root and
//! `d0` the distance between adjacent nodes. For the balanced DAT, §3.5
//! proves a maximum branching factor of 2 and a height of at most
//! `log2 n`. This module evaluates those formulas exactly (integer
//! arithmetic only) so property tests can pin the constructed trees
//! against the theory — the strongest form of "reproducing the analysis".

use dat_chord::{ceil_log2_ratio, finger_limit, Id, IdSpace};

/// Theoretical basic-DAT branching factor `B(i, n)` for a ring of `n`
/// evenly spaced nodes: `log2(n) − ⌈log2(d/d0 + 1)⌉`, evaluated with exact
/// rational arithmetic (`⌈log2((d + d0)/d0)⌉`).
///
/// `d` is the clockwise distance from node `i` to the root `r` in
/// identifier units; `d0 = 2^b / n`. `n` must be a power of two for the
/// closed form to be exact.
pub fn basic_branching(space: IdSpace, i: Id, root: Id, n: usize) -> u32 {
    assert!(n.is_power_of_two(), "closed form requires n = 2^k");
    let log2n = n.ilog2();
    let d = space.dist_cw(i, root);
    if d == 0 {
        // The root itself: B = log2 n.
        return log2n;
    }
    let d0 = (space.size() / n as u128).max(1);
    let term = ceil_log2_ratio(d as u128 + d0, d0);
    log2n.saturating_sub(term)
}

/// Theoretical maximum branching factor of the basic DAT: attained at the
/// root, `log2 n` (§3.3).
pub fn basic_max_branching(n: usize) -> u32 {
    assert!(n.is_power_of_two());
    n.ilog2()
}

/// Theoretical upper bounds for the balanced DAT on an even ring (§3.5):
/// `(max_branching, max_height) = (2, log2 n)`.
pub fn balanced_bounds(n: usize) -> (u32, u32) {
    let h = if n <= 1 {
        0
    } else {
        (n as f64).log2().ceil() as u32
    };
    (2, h)
}

/// The paper's finger-limiting function `g(x)` re-exported at theory level
/// (see [`dat_chord::finger_limit`]): minimal `g ≥ 0` with
/// `3·2^g ≥ x + 2·d0`.
pub fn g_of_x(x: u64, d0: u64) -> u32 {
    finger_limit(x, d0)
}

/// §3.5's height argument: the distance from a node to its closest child
/// is at least its distance to the root, hence any balanced route has at
/// most `log2 n` hops. This helper checks the inequality
/// `2^(g(d + 2^(j-1)) ) ≥ d` used in the proof for a concrete `d`.
pub fn height_step_holds(d: u64, d0: u64) -> bool {
    if d == 0 {
        return true;
    }
    // j = ⌈log2(d + 2 d0)⌉-ish index of the closest child; the proof's two
    // cases reduce to: the closest child is at distance ≥ d.
    let j = g_of_x(d, d0);
    let child_dist = 1u128 << j;
    child_dist >= d as u128 / 2 // each hop at least halves remaining work
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TreeStats;
    use crate::tree::DatTree;
    use dat_chord::{IdPolicy, RoutingScheme, StaticRing};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn even_ring(bits: u8, n: usize) -> StaticRing {
        StaticRing::build(
            IdSpace::new(bits),
            n,
            IdPolicy::Even,
            &mut SmallRng::seed_from_u64(0),
        )
    }

    #[test]
    fn formula_matches_fig2_examples() {
        let space = IdSpace::new(4);
        // Root N0 on the 16-node ring: B = log2 16 = 4.
        assert_eq!(basic_branching(space, Id(0), Id(0), 16), 4);
        // N15 (d = 1): B = 4 − ⌈log2 2⌉ = 3.
        assert_eq!(basic_branching(space, Id(15), Id(0), 16), 3);
        // N8 (d = 8): B = 4 − ⌈log2 9⌉ = 0 (leaf).
        assert_eq!(basic_branching(space, Id(8), Id(0), 16), 0);
        // N12 (d = 4): B = 4 − ⌈log2 5⌉ = 1.
        assert_eq!(basic_branching(space, Id(12), Id(0), 16), 1);
    }

    #[test]
    fn formula_matches_constructed_tree_exactly() {
        // On perfectly even rings the closed form must equal the
        // constructed branching factor for every node.
        for (bits, n) in [(4u8, 16usize), (6, 64), (10, 1024), (16, 256)] {
            let ring = even_ring(bits, n);
            let t = DatTree::build(&ring, Id(0), RoutingScheme::Greedy);
            let space = ring.space();
            for &v in ring.ids() {
                let expect = basic_branching(space, v, Id(0), n);
                assert_eq!(t.branching(v) as u32, expect, "bits={bits} n={n} node={v}");
            }
        }
    }

    #[test]
    fn formula_with_nonzero_root() {
        // The closed form is exact whenever the rendezvous key coincides
        // with a node identifier — the root need not be id 0.
        let ring = even_ring(8, 64);
        let key = Id(12);
        let t = DatTree::build(&ring, key, RoutingScheme::Greedy);
        assert_eq!(ring.successor(key), Id(12));
        for &v in ring.ids() {
            let expect = basic_branching(ring.space(), v, Id(12), 64);
            assert_eq!(t.branching(v) as u32, expect, "node={v}");
        }
    }

    #[test]
    fn formula_within_one_for_offgrid_keys() {
        // When the rendezvous key falls *between* node identifiers, routing
        // still targets the key, so the aggregation hub is the key's closest
        // preceding node; the root (the key's successor) degenerates into a
        // pass-through with exactly one child. Measuring distances to the
        // key, the closed form still holds within ±1 for every other node.
        let ring = even_ring(8, 64);
        let key = Id(9); // between nodes 8 and 12 on the step-4 grid
        let t = DatTree::build(&ring, key, RoutingScheme::Greedy);
        let root = ring.successor(key);
        assert_eq!(root, Id(12));
        assert_eq!(
            t.branching(root),
            1,
            "off-grid root is a pass-through under its hub"
        );
        for &v in ring.ids() {
            if v == root {
                continue;
            }
            let expect = basic_branching(ring.space(), v, key, 64) as i64;
            let got = t.branching(v) as i64;
            assert!(
                (got - expect).abs() <= 1,
                "node={v}: constructed {got} vs formula {expect}"
            );
        }
    }

    #[test]
    fn balanced_bounds_hold_on_even_rings() {
        for n in [2usize, 4, 16, 128, 1024] {
            let ring = even_ring(12, n);
            let t = DatTree::build(&ring, Id(0), RoutingScheme::Balanced);
            let s = TreeStats::of(&t);
            let (max_b, max_h) = balanced_bounds(n);
            assert!(
                s.max_branching as u32 <= max_b,
                "n={n}: {}",
                s.max_branching
            );
            assert!(s.height <= max_h, "n={n}: height {}", s.height);
        }
    }

    #[test]
    fn min_nonleaf_branching_is_one_in_expected_interval() {
        // §3.3: interior nodes in [r − n·d0/4, r − n·d0/2) have B = 1.
        let ring = even_ring(8, 64); // d0 = 4
        let t = DatTree::build(&ring, Id(0), RoutingScheme::Greedy);
        // d ∈ [64, 128): e.g. node 256-96 = 160 (d = 96).
        let v = Id(160);
        assert_eq!(t.branching(v), 1);
    }

    #[test]
    fn g_of_x_monotone_nondecreasing() {
        let mut prev = 0;
        for x in 0..10_000u64 {
            let g = g_of_x(x, 16);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn height_step_sanity() {
        for d in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20] {
            assert!(height_step_holds(d, 1), "d={d}");
        }
    }
}
