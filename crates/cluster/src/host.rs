//! Task-per-node tokio transport hosting sans-io protocol actors.
//!
//! Layout per node — one UDP socket shared by two tasks via `Arc`, plus
//! the actor task in between, all glued with **bounded** channels:
//!
//! ```text
//!   socket ──recv_from──► reader ──try_send──► inbox ─► actor ─► outbox ──recv──► writer ──send_to──► socket
//!                           │ (full ⇒ shed_rx)            │ (full ⇒ shed_tx)
//! ```
//!
//! The reader decodes every datagram through the shared
//! [`dat_chord::codec`]; failures are classified by kind and forwarded to
//! the actor as [`Input::BadFrame`] with source-address attribution, so
//! the engine's per-peer scoring and quarantine pipeline runs over real
//! UDP exactly as in the simulator and the blocking transport. The actor
//! task owns a private timer heap — `Output::SetTimer` never leaves the
//! task, so timer delivery cannot reorder against the inputs that set it.
//!
//! Drain contract (identical to `dat_rpc::RpcCluster` after its cleanup):
//! `shutdown` enqueues a `Stop` marker on the reliable control plane and
//! raises the stop flag. Each actor finishes everything queued before its
//! marker, then returns itself; readers observe the flag within one
//! `socket_poll`; writers flush every frame the actors produced and exit
//! when the outbox closes. No task outlives `shutdown`.

use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dat_chord::codec;
use dat_chord::wire::ERROR_KINDS;
use dat_chord::{Actor, Input, NodeAddr, Output, TimerKind, Upcall};
use dat_obs::Registry;
use parking_lot::Mutex;
use tokio::sync::mpsc;
use tokio::sync::mpsc::error::TrySendError;

/// Number of distinct decode-failure kinds the transport classifies
/// (one counter slot per [`dat_chord::wire::ERROR_KINDS`] label).
const KINDS: usize = ERROR_KINDS.len();

/// Runtime knobs for [`ClusterHost`].
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Executor worker threads; `0` means available parallelism.
    pub worker_threads: usize,
    /// Bound of each node's reader→actor channel. A full inbox sheds the
    /// datagram and counts it (`engine_shed_total{layer="transport_rx"}`).
    pub inbox_capacity: usize,
    /// Bound of each node's actor→writer channel. A full outbox sheds the
    /// frame and counts it (`engine_shed_total{layer="transport_tx"}`).
    pub outbox_capacity: usize,
    /// How often an idle reader wakes to check for shutdown — the upper
    /// bound on how long readers linger after `shutdown`.
    pub socket_poll: Duration,
    /// Cap on how long an actor task sleeps between timer-heap sweeps,
    /// which caps how late a timer can fire.
    pub timer_granularity: Duration,
    /// How long one [`ClusterHost::call`] wait round lasts.
    pub call_timeout: Duration,
    /// Extra wait rounds `call` spends after the first before giving up.
    pub call_retries: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            worker_threads: 0,
            inbox_capacity: 1024,
            outbox_capacity: 1024,
            socket_poll: Duration::from_millis(100),
            timer_granularity: Duration::from_millis(50),
            call_timeout: Duration::from_secs(10),
            call_retries: 0,
        }
    }
}

type WithFn<A> = Box<dyn FnOnce(&mut A) -> Vec<Output> + Send>;

enum Control<A> {
    Input(Input),
    With(WithFn<A>),
    Stop,
}

/// A pending timer inside one actor task's private heap.
struct TimerEntry {
    deadline: Instant,
    seq: u64,
    kind: TimerKind,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (deadline, insertion order).
        (other.deadline, other.seq).cmp(&(self.deadline, self.seq))
    }
}

/// Shared transport counters, one set for the whole cluster.
#[derive(Default)]
struct Counters {
    sent: AtomicU64,
    received: AtomicU64,
    decode_errors: AtomicU64,
    decode_errors_by_kind: [AtomicU64; KINDS],
    shed_rx: AtomicU64,
    shed_tx: AtomicU64,
    socket_recv_errors: AtomicU64,
    socket_send_errors: AtomicU64,
}

/// Transport counters for the whole cluster, as one coherent snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostStats {
    /// Datagrams handed to the kernel.
    pub sent: u64,
    /// Datagrams received and decoded.
    pub received: u64,
    /// Datagrams that failed to decode.
    pub decode_errors: u64,
    /// `decode_errors` broken down by failure kind, indexed like
    /// [`dat_chord::wire::ERROR_KINDS`].
    pub decode_errors_by_kind: [u64; KINDS],
    /// Inbound frames dropped because a node's inbox was full.
    pub shed_rx: u64,
    /// Outbound frames dropped because a node's outbox was full.
    pub shed_tx: u64,
    /// `recv_from` socket errors (other than the poll timeout).
    pub socket_recv_errors: u64,
    /// `send_to` socket errors.
    pub socket_send_errors: u64,
}

impl HostStats {
    /// The per-kind decode-error tallies paired with their wire labels.
    pub fn decode_error_kinds(&self) -> [(&'static str, u64); KINDS] {
        let mut out = [("", 0u64); KINDS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (ERROR_KINDS[i], self.decode_errors_by_kind[i]);
        }
        out
    }
}

/// Build the transport-level metric registry for a stats snapshot, in
/// the shared [`dat_obs::transport`] vocabulary. All series are
/// zero-initialized so a fresh cluster already exposes everything.
pub(crate) fn stats_registry(transport: &'static str, s: &HostStats) -> Registry {
    dat_obs::transport_registry(&dat_obs::TransportCounters {
        transport,
        sent: s.sent,
        received: s.received,
        decode_errors_by_kind: s.decode_error_kinds().to_vec(),
        shed_rx: s.shed_rx,
        shed_tx: s.shed_tx,
        socket_recv_errors: s.socket_recv_errors,
        socket_send_errors: s.socket_send_errors,
    })
}

/// A running cluster of UDP-backed protocol nodes on a tokio runtime.
pub struct ClusterHost<A: Actor> {
    inboxes: HashMap<NodeAddr, mpsc::Sender<Control<A>>>,
    actors: Vec<tokio::task::JoinHandle<A>>,
    readers: Vec<tokio::task::JoinHandle<()>>,
    writers: Vec<tokio::task::JoinHandle<()>>,
    sockets: Vec<Arc<tokio::net::UdpSocket>>,
    addr_book: Arc<HashMap<NodeAddr, SocketAddr>>,
    upcalls: Arc<Mutex<Vec<(NodeAddr, Upcall)>>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    cfg: HostConfig,
    // Dropped last (declaration order): tasks and sockets must unwind
    // while the executor, timer and reactor threads still run.
    runtime: tokio::runtime::Runtime,
}

impl<A: Actor> ClusterHost<A> {
    /// Bind sockets and spawn the per-node task trios for `actors` with
    /// default [`HostConfig`]. Actor `i` must use logical `NodeAddr(i)`.
    pub fn launch(actors: Vec<A>) -> std::io::Result<Self> {
        Self::launch_with(actors, HostConfig::default())
    }

    /// Like [`ClusterHost::launch`] with explicit runtime knobs.
    pub fn launch_with(actors: Vec<A>, cfg: HostConfig) -> std::io::Result<Self> {
        let n = actors.len();
        let mut builder = tokio::runtime::Builder::new_multi_thread();
        builder.thread_name("cluster");
        if cfg.worker_threads > 0 {
            builder.worker_threads(cfg.worker_threads);
        }
        let runtime = builder.enable_all().build()?;

        // Bind std sockets first (cheap, synchronous), then adopt them
        // into the reactor from inside the runtime context.
        let mut std_sockets = Vec::with_capacity(n);
        let mut book = HashMap::with_capacity(n);
        for (i, a) in actors.iter().enumerate() {
            assert_eq!(
                a.addr(),
                NodeAddr(i as u64),
                "actor {i} must use NodeAddr({i})"
            );
            let sock = std::net::UdpSocket::bind(("127.0.0.1", 0))?;
            book.insert(NodeAddr(i as u64), sock.local_addr()?);
            std_sockets.push(sock);
        }
        let sockets: Vec<Arc<tokio::net::UdpSocket>> = runtime.block_on(async {
            std_sockets
                .into_iter()
                .map(|s| tokio::net::UdpSocket::from_std(s).map(Arc::new))
                .collect::<std::io::Result<Vec<_>>>()
        })?;

        // Reverse book: source socket -> logical address, so a damaged
        // frame can still be attributed to the peer that sent it (the
        // payload is untrustworthy by definition; the UDP source address
        // is the best evidence available).
        let rev_book: Arc<HashMap<SocketAddr, NodeAddr>> =
            Arc::new(book.iter().map(|(&n, &s)| (s, n)).collect());
        let addr_book = Arc::new(book);
        let stop = Arc::new(AtomicBool::new(false));
        let upcalls = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(Counters::default());

        let mut inboxes = HashMap::with_capacity(n);
        let mut actor_tasks = Vec::with_capacity(n);
        let mut reader_tasks = Vec::with_capacity(n);
        let mut writer_tasks = Vec::with_capacity(n);
        // One epoch for the whole cluster: every actor task reports the
        // same monotonic clock, so cross-node RTT math is coherent.
        let epoch = Instant::now();

        for (i, actor) in actors.into_iter().enumerate() {
            let addr = NodeAddr(i as u64);
            let (in_tx, in_rx) = mpsc::channel::<Control<A>>(cfg.inbox_capacity);
            let (out_tx, out_rx) = mpsc::channel::<(Vec<u8>, SocketAddr)>(cfg.outbox_capacity);
            inboxes.insert(addr, in_tx.clone());

            reader_tasks.push(runtime.spawn(reader_task(
                Arc::clone(&sockets[i]),
                in_tx,
                Arc::clone(&stop),
                Arc::clone(&counters),
                Arc::clone(&rev_book),
                cfg.socket_poll,
            )));
            writer_tasks.push(runtime.spawn(writer_task(
                Arc::clone(&sockets[i]),
                out_rx,
                Arc::clone(&counters),
            )));
            actor_tasks.push(runtime.spawn(actor_task(
                actor,
                addr,
                in_rx,
                out_tx,
                Arc::clone(&addr_book),
                Arc::clone(&upcalls),
                Arc::clone(&counters),
                epoch,
                cfg.timer_granularity,
            )));
        }

        Ok(ClusterHost {
            inboxes,
            actors: actor_tasks,
            readers: reader_tasks,
            writers: writer_tasks,
            sockets,
            addr_book,
            upcalls,
            stop,
            counters,
            cfg,
            runtime,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// `true` when the cluster hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// The UDP socket address of a logical node.
    pub fn socket_addr(&self, addr: NodeAddr) -> Option<SocketAddr> {
        self.addr_book.get(&addr).copied()
    }

    /// Send raw bytes from `from`'s socket to `to`'s socket, bypassing the
    /// codec entirely — a byte-level fault-injection hook for hostile-wire
    /// tests. The receiver attributes whatever arrives to `from` via the
    /// source address, exactly as it would a genuinely corrupted datagram.
    pub fn send_raw(&self, from: NodeAddr, to: NodeAddr, bytes: &[u8]) -> std::io::Result<()> {
        let sock = self
            .sockets
            .get(from.0 as usize)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown sender"))?;
        let peer = *self
            .addr_book
            .get(&to)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "unknown target"))?;
        self.runtime.block_on(sock.send_to(bytes, peer)).map(|_| ())
    }

    /// Run `f` against the actor at `addr` asynchronously; its outputs
    /// are processed on the actor task. Control plane: waits for inbox
    /// capacity instead of shedding.
    pub fn cast<F>(&self, addr: NodeAddr, f: F)
    where
        F: FnOnce(&mut A) -> Vec<Output> + Send + 'static,
    {
        if let Some(tx) = self.inboxes.get(&addr) {
            let _ = tx.blocking_send(Control::With(Box::new(f)));
        }
    }

    /// Run `f` against the actor at `addr` and wait for its return value.
    pub fn call<R, F>(&self, addr: NodeAddr, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut A) -> (R, Vec<Output>) + Send + 'static,
    {
        let tx = self.inboxes.get(&addr)?;
        let (rtx, rrx) = std::sync::mpsc::sync_channel::<R>(1);
        let _ = tx.blocking_send(Control::With(Box::new(move |a| {
            let (r, outs) = f(a);
            let _ = rtx.send(r);
            outs
        })));
        // The control channel is reliable; a round only expires when the
        // actor task is genuinely backed up.
        for _ in 0..=self.cfg.call_retries {
            if let Ok(r) = rrx.recv_timeout(self.cfg.call_timeout) {
                return Some(r);
            }
        }
        None
    }

    /// Drain the recorded upcalls of every node.
    pub fn drain_upcalls(&self) -> Vec<(NodeAddr, Upcall)> {
        std::mem::take(&mut *self.upcalls.lock())
    }

    /// Transport counters.
    pub fn stats(&self) -> HostStats {
        let c = &self.counters;
        let mut by_kind = [0u64; KINDS];
        for (slot, counter) in by_kind.iter_mut().zip(c.decode_errors_by_kind.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        HostStats {
            sent: c.sent.load(Ordering::Relaxed),
            received: c.received.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            decode_errors_by_kind: by_kind,
            shed_rx: c.shed_rx.load(Ordering::Relaxed),
            shed_tx: c.shed_tx.load(Ordering::Relaxed),
            socket_recv_errors: c.socket_recv_errors.load(Ordering::Relaxed),
            socket_send_errors: c.socket_send_errors.load(Ordering::Relaxed),
        }
    }

    /// Transport-level metrics as an obs registry: datagram, decode-error
    /// and socket-error counters plus `engine_shed_total` transport
    /// layers, every series zero-initialized (`transport="tokio"`).
    pub fn transport_registry(&self) -> Registry {
        stats_registry("tokio", &self.stats())
    }

    /// Stop every task, drain the planes, and return the actors.
    ///
    /// Order matters: the `Stop` markers ride the reliable control plane
    /// behind any queued datagrams, so each actor finishes its backlog
    /// first; the stop flag bounds reader exit to one `socket_poll`; the
    /// writers flush everything the actors produced before their outboxes
    /// close. The runtime itself shuts down when the host drops.
    pub fn shutdown(mut self) -> Vec<A> {
        for tx in self.inboxes.values() {
            let _ = tx.blocking_send(Control::Stop);
        }
        self.stop.store(true, Ordering::Relaxed);
        let actor_handles = std::mem::take(&mut self.actors);
        let reader_handles = std::mem::take(&mut self.readers);
        let writer_handles = std::mem::take(&mut self.writers);
        let mut actors = self.runtime.block_on(async move {
            let mut out = Vec::with_capacity(actor_handles.len());
            for h in actor_handles {
                if let Ok(a) = h.await {
                    out.push(a);
                }
            }
            for h in reader_handles {
                let _ = h.await;
            }
            for h in writer_handles {
                let _ = h.await;
            }
            out
        });
        actors.sort_by_key(|a| a.addr());
        actors
    }
}

/// Reader task: socket → decode → bounded inbox (shed on full).
async fn reader_task<A: Actor>(
    sock: Arc<tokio::net::UdpSocket>,
    inbox: mpsc::Sender<Control<A>>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    sources: Arc<HashMap<SocketAddr, NodeAddr>>,
    socket_poll: Duration,
) {
    let mut buf = vec![0u8; codec::MAX_FRAME];
    loop {
        match tokio::time::timeout(socket_poll, sock.recv_from(&mut buf)).await {
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Ok(Ok((len, peer))) => {
                let ctl = match codec::decode(&buf[..len]) {
                    Ok(msg) => {
                        counters.received.fetch_add(1, Ordering::Relaxed);
                        // `from` is carried inside the message where
                        // needed; the transport-level from is the logical
                        // unknown here, pass a sentinel.
                        Control::Input(Input::Message {
                            from: NodeAddr(u64::MAX),
                            msg,
                        })
                    }
                    Err(error) => {
                        counters.decode_errors.fetch_add(1, Ordering::Relaxed);
                        counters.decode_errors_by_kind[error.kind_index()]
                            .fetch_add(1, Ordering::Relaxed);
                        Control::Input(Input::BadFrame {
                            from: sources.get(&peer).copied(),
                            error,
                        })
                    }
                };
                match inbox.try_send(ctl) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        counters.shed_rx.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Closed(_)) => break,
                }
            }
            Ok(Err(_)) => {
                counters.socket_recv_errors.fetch_add(1, Ordering::Relaxed);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
    }
}

/// Writer task: bounded outbox → socket. Exits when the actor task drops
/// its sender, after flushing everything already queued.
async fn writer_task(
    sock: Arc<tokio::net::UdpSocket>,
    mut outbox: mpsc::Receiver<(Vec<u8>, SocketAddr)>,
    counters: Arc<Counters>,
) {
    while let Some((frame, peer)) = outbox.recv().await {
        match sock.send_to(&frame, peer).await {
            Ok(_) => {
                counters.sent.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                counters.socket_send_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Actor task: drives the state machine from its inbox and a private
/// timer heap. `SetTimer` outputs never leave the task, so a timer can
/// never race ahead of the input that scheduled it.
#[allow(clippy::too_many_arguments)]
async fn actor_task<A: Actor>(
    mut actor: A,
    addr: NodeAddr,
    mut inbox: mpsc::Receiver<Control<A>>,
    outbox: mpsc::Sender<(Vec<u8>, SocketAddr)>,
    book: Arc<HashMap<NodeAddr, SocketAddr>>,
    upcalls: Arc<Mutex<Vec<(NodeAddr, Upcall)>>>,
    counters: Arc<Counters>,
    epoch: Instant,
    granularity: Duration,
) -> A {
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut seq = 0u64;
    let process = |actor: &mut A,
                   input: Option<Control<A>>,
                   timers: &mut BinaryHeap<TimerEntry>,
                   seq: &mut u64|
     -> bool {
        actor.set_now(epoch.elapsed().as_millis() as u64);
        let outs = match input {
            Some(Control::Input(input)) => actor.on_input(input),
            Some(Control::With(f)) => f(actor),
            Some(Control::Stop) => return false,
            None => return false,
        };
        for o in outs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(peer) = book.get(&to.addr) {
                        let frame = codec::encode(&msg);
                        match outbox.try_send((frame, *peer)) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                counters.shed_tx.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(TrySendError::Closed(_)) => {}
                        }
                    }
                }
                Output::SetTimer { kind, delay_ms } => {
                    timers.push(TimerEntry {
                        deadline: Instant::now() + Duration::from_millis(delay_ms),
                        seq: *seq,
                        kind,
                    });
                    *seq += 1;
                }
                Output::Upcall(u) => upcalls.lock().push((addr, u)),
            }
        }
        true
    };

    loop {
        // Fire everything due, then sleep until the next deadline (capped
        // by the granularity so clock skew cannot starve the heap).
        let now = Instant::now();
        while timers.peek().is_some_and(|t| t.deadline <= now) {
            if let Some(t) = timers.pop() {
                process(
                    &mut actor,
                    Some(Control::Input(Input::Timer(t.kind))),
                    &mut timers,
                    &mut seq,
                );
            }
        }
        let wait = timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(granularity)
            .min(granularity);
        match tokio::time::timeout(wait, inbox.recv()).await {
            Ok(ctl @ Some(_)) => {
                if !process(&mut actor, ctl, &mut timers, &mut seq) {
                    break;
                }
            }
            Ok(None) => break,
            Err(_) => {}
        }
    }
    actor
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use dat_chord::{ChordConfig, ChordNode, Id, IdSpace, NodeRef};

    fn fast_cfg() -> ChordConfig {
        ChordConfig {
            space: IdSpace::new(32),
            stabilize_ms: 50,
            fix_fingers_ms: 30,
            check_pred_ms: 100,
            req_timeout_ms: 400,
            ..ChordConfig::default()
        }
    }

    #[test]
    fn two_nodes_join_over_tokio_udp() {
        let a = ChordNode::new(fast_cfg(), Id(1_000), NodeAddr(0));
        let b = ChordNode::new(fast_cfg(), Id(2_000_000), NodeAddr(1));
        let cluster = ClusterHost::launch(vec![a, b]).unwrap();
        let bootstrap = cluster
            .call(NodeAddr(0), |n| (n.me(), n.start_create()))
            .unwrap();
        cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut ok = false;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
            let succ_a = cluster
                .call(NodeAddr(0), |n| {
                    (n.table().successor().map(|s| s.id), vec![])
                })
                .unwrap();
            let succ_b = cluster
                .call(NodeAddr(1), |n| {
                    (n.table().successor().map(|s| s.id), vec![])
                })
                .unwrap();
            if succ_a == Some(Id(2_000_000)) && succ_b == Some(Id(1_000)) {
                ok = true;
                break;
            }
        }
        let stats = cluster.stats();
        let actors = cluster.shutdown();
        assert!(ok, "ring did not converge over tokio UDP");
        assert_eq!(actors.len(), 2);
        assert!(stats.sent > 0 && stats.received > 0);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.shed_rx, 0);
    }

    #[test]
    fn upcalls_and_registry_vocabulary() {
        let a = ChordNode::new(fast_cfg(), Id(5), NodeAddr(0));
        let cluster = ClusterHost::launch(vec![a]).unwrap();
        cluster.cast(NodeAddr(0), |n| n.start_create());
        std::thread::sleep(Duration::from_millis(200));
        let ups = cluster.drain_upcalls();
        assert!(ups
            .iter()
            .any(|(_, u)| matches!(u, Upcall::Joined { id } if *id == Id(5))));
        let reg = cluster.transport_registry();
        // Zero-initialized vocabulary: every series exists up front.
        assert_eq!(reg.counter_sum("engine_shed_total"), 0);
        assert_eq!(reg.counter_sum("transport_socket_errors_total"), 0);
        assert_eq!(reg.counter_sum("transport_decode_errors_total"), 0);
        let text = reg.render_prometheus();
        dat_obs::validate_prometheus(&text).expect("valid exposition");
        assert!(text.contains("transport=\"tokio\""));
        cluster.shutdown();
    }

    /// A minimal actor that records every `BadFrame` it is handed.
    struct Recorder {
        addr: NodeAddr,
        bad: Vec<(Option<NodeAddr>, &'static str)>,
        messages: u64,
    }

    impl Actor for Recorder {
        fn addr(&self) -> NodeAddr {
            self.addr
        }
        fn on_input(&mut self, input: Input) -> Vec<Output> {
            match input {
                Input::BadFrame { from, error } => self.bad.push((from, error.kind_label())),
                Input::Message { .. } => self.messages += 1,
                _ => {}
            }
            vec![]
        }
    }

    #[test]
    fn damaged_datagrams_are_classified_attributed_and_forwarded() {
        let recorder = |i: u64| Recorder {
            addr: NodeAddr(i),
            bad: Vec::new(),
            messages: 0,
        };
        let cluster = ClusterHost::launch(vec![recorder(0), recorder(1)]).unwrap();
        let valid = codec::encode(&dat_chord::ChordMsg::Ping {
            req: 7,
            sender: NodeRef::new(Id(42), NodeAddr(1)),
        });
        cluster.send_raw(NodeAddr(1), NodeAddr(0), &valid).unwrap();
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), &valid[..1])
            .unwrap(); // truncated
        cluster
            .send_raw(NodeAddr(1), NodeAddr(0), b"not a chord frame")
            .unwrap(); // bad_magic
        let outsider = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let target = cluster.socket_addr(NodeAddr(0)).unwrap();
        outsider.send_to(b"zzzz", target).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut seen = Vec::new();
        let mut messages = 0;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            let (bad, msgs) = cluster
                .call(NodeAddr(0), |a| ((a.bad.clone(), a.messages), vec![]))
                .unwrap();
            if bad.len() >= 3 && msgs >= 1 {
                seen = bad;
                messages = msgs;
                break;
            }
        }
        let stats = cluster.stats();
        cluster.shutdown();

        assert_eq!(messages, 1, "the intact frame should decode and deliver");
        assert_eq!(seen.len(), 3, "all three damaged frames should forward");
        assert!(seen
            .iter()
            .any(|(f, k)| *f == Some(NodeAddr(1)) && *k == "truncated"));
        assert!(seen
            .iter()
            .any(|(f, k)| *f == Some(NodeAddr(1)) && *k == "bad_magic"));
        assert!(
            seen.iter().any(|(f, k)| f.is_none() && *k == "bad_magic"),
            "the outsider's frame should arrive unattributed"
        );
        assert_eq!(stats.received, 1);
        assert_eq!(stats.decode_errors, 3);
    }

    #[test]
    #[should_panic(expected = "must use NodeAddr")]
    fn launch_validates_addresses() {
        let a = ChordNode::new(fast_cfg(), Id(5), NodeAddr(7));
        let _ = ClusterHost::launch(vec![a]);
    }

    #[test]
    fn full_inbox_sheds_and_counts() {
        // A one-slot inbox with an actor wedged on a long blocking call:
        // floods must shed (bounded memory), and every shed is counted.
        let cfg = HostConfig {
            inbox_capacity: 1,
            ..HostConfig::default()
        };
        let cluster =
            ClusterHost::launch_with(vec![ChordNode::new(fast_cfg(), Id(5), NodeAddr(0))], cfg)
                .unwrap();
        // Wedge the actor task so nothing drains the inbox.
        cluster.cast(NodeAddr(0), |_| {
            std::thread::sleep(Duration::from_millis(600));
            vec![]
        });
        std::thread::sleep(Duration::from_millis(100));
        let valid = codec::encode(&dat_chord::ChordMsg::Ping {
            req: 1,
            sender: NodeRef::new(Id(9), NodeAddr(0)),
        });
        let sender = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let target = cluster.socket_addr(NodeAddr(0)).unwrap();
        for _ in 0..50 {
            sender.send_to(&valid, target).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut shed = 0;
        while Instant::now() < deadline {
            shed = cluster.stats().shed_rx;
            if shed > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(shed > 0, "flooding a wedged one-slot inbox must shed");
        let reg = cluster.transport_registry();
        assert!(reg.counter_with("engine_shed_total", "transport_rx") >= shed);
        cluster.shutdown();
    }
}
