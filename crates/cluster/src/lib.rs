//! # dat-cluster — async UDP cluster host and real-network harness
//!
//! The third [`dat_chord::Actor`] host, next to the discrete-event
//! simulator (`dat_sim::SimNet`) and the thread-per-node blocking
//! transport (`dat_rpc::RpcCluster`): every node becomes a trio of tokio
//! tasks (socket reader, actor, socket writer) around one UDP socket,
//! connected by **bounded** mpsc channels. Tasks are cheap enough that a
//! single process hosts a thousand-plus real nodes — the scale of the
//! paper's testbed ("up to 64 DAT instances on each machine to create a
//! network of 512 nodes", §4) on one machine, with genuine datagrams,
//! kernel socket buffers and wall-clock timers.
//!
//! Backpressure is explicit, mirroring the engine's inbox policy: the
//! data plane (`recv` → actor inbox, actor → `send` outbox) uses
//! `try_send` and counts every refused frame as a shed in the
//! `engine_shed_total{layer}` vocabulary (`transport_rx`/`transport_tx`);
//! the control plane (`call`/`cast`/shutdown) uses waiting sends and is
//! never shed. The sans-io engine is hosted untouched — the same codec,
//! `BadFrame` attribution and quarantine pipeline as the other two hosts,
//! which is what makes three-way transport parity testable.
//!
//! * [`host::ClusterHost`] — the transport: launch, drive, scrape,
//!   drain/shutdown;
//! * [`harness`] — boot a full DAT+MAAN stack cluster (staged live joins
//!   or pre-stabilized tables), run the multi-service workload, scrape
//!   per-node Prometheus expositions and check the paper's Completeness
//!   and exactness invariants against the real network.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod harness;
pub mod host;

pub use harness::{run_harness, BootMode, HarnessConfig, HarnessReport};
pub use host::{ClusterHost, HostConfig, HostStats};
