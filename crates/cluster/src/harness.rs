//! Real-cluster harness: boot a full DAT+MAAN stack over the tokio
//! transport, run the multi-service workload, scrape every node's
//! Prometheus exposition and check the paper's invariants.
//!
//! This is the real-network analogue of `tests/multi_service.rs`: the
//! same protocol stack (continuous DAT aggregation of `cpu-usage` plus
//! MAAN range discovery of `cpu-speed`) on the same pre-built topology,
//! but every node is a live tokio task with its own UDP socket, and every
//! assertion runs against wall-clock behavior. The paper's testbed ran
//! "up to 64 DAT instances on each machine to create a network of 512
//! nodes" (§4); [`run_harness`] boots 1024+ instances in one process.
//!
//! Two boot paths, mirroring `dat_sim::harness`:
//!
//! * [`BootMode::Prestabilized`] — finger tables are materialised from a
//!   [`StaticRing`] global view before launch, so even a 1k-node overlay
//!   is converged in milliseconds of wall time;
//! * [`BootMode::StagedJoin`] — nodes run the real join + stabilization
//!   protocol in batches against node 0, then the harness waits for the
//!   ring to converge to the `StaticRing` prediction.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use dat_chord::{ChordConfig, Id, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing};
use dat_core::{AggFunc, AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use dat_maan::{MaanEvent, MaanProtocol, MaanStack, Resource};
use dat_monitor::grid_schemas;
use dat_obs::Registry;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::host::{ClusterHost, HostConfig, HostStats};

/// How the overlay comes up.
#[derive(Clone, Copy, Debug)]
pub enum BootMode {
    /// Materialise converged finger tables from the global ring view.
    Prestabilized,
    /// Live joins against node 0 in batches of `batch`, sleeping
    /// `settle_ms` between batches, then wait for convergence.
    StagedJoin {
        /// Nodes joining per batch.
        batch: usize,
        /// Settle pause between batches, milliseconds.
        settle_ms: u64,
    },
}

/// Everything the harness needs to run one cluster experiment.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Number of real nodes to boot.
    pub nodes: usize,
    /// Topology / workload seed.
    pub seed: u64,
    /// Identifier-space width in bits.
    pub bits: u8,
    /// Boot path.
    pub boot: BootMode,
    /// DAT epoch length (wall milliseconds).
    pub epoch_ms: u64,
    /// How many root reports to observe before declaring the run done.
    pub epochs: u64,
    /// Transport knobs.
    pub host: HostConfig,
    /// How many machines advertise MAAN resources (multi-service side).
    pub machines: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            nodes: 64,
            seed: 0x5AC,
            bits: 32,
            boot: BootMode::Prestabilized,
            epoch_ms: 500,
            epochs: 16,
            host: HostConfig {
                inbox_capacity: 256,
                outbox_capacity: 256,
                timer_granularity: Duration::from_millis(200),
                ..HostConfig::default()
            },
            machines: 16,
        }
    }
}

/// What one harness run measured and concluded.
#[derive(Clone, Debug)]
pub struct HarnessReport {
    /// Nodes booted.
    pub nodes: usize,
    /// Wall time to a converged overlay, ms.
    pub boot_ms: u64,
    /// Wall time of the workload phase, ms.
    pub run_ms: u64,
    /// Root reports observed for the registered attribute.
    pub reports_seen: u64,
    /// Wall-clock gaps between consecutive root reports, ms.
    pub report_intervals_ms: Vec<u64>,
    /// Contributor count of the last full report.
    pub root_count: u64,
    /// Sum of the last full report.
    pub root_sum: f64,
    /// What the sum must be: `Σ i for i in 0..nodes`.
    pub expected_sum: f64,
    /// Completeness ratio of the last report (1.0 = full coverage).
    pub completeness: f64,
    /// Resource URIs the MAAN range query returned, sorted.
    pub maan_hits: Vec<String>,
    /// Transport counters at the end of the run.
    pub stats: HostStats,
    /// Total Prometheus samples scraped across every node exposition.
    pub scrape_samples: usize,
    /// `engine_shed_total` over all layers, fleet plus transport.
    pub sheds: u64,
    /// `root_sum == expected_sum` and every node contributed.
    pub exact: bool,
    /// Last report covered the whole grid (ratio 1.0).
    pub complete: bool,
}

impl HarnessReport {
    /// `true` when the run met the paper's invariants end to end.
    pub fn ok(&self) -> bool {
        self.exact && self.complete && self.reports_seen > 0
    }

    /// Percentile (0.0..=1.0) of the report inter-arrival gaps, ms.
    pub fn report_interval_pct(&self, p: f64) -> u64 {
        if self.report_intervals_ms.is_empty() {
            return 0;
        }
        let mut v = self.report_intervals_ms.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    /// One-object JSON rendering (hand-rolled; no serde in the tree).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"nodes\": {}, \"boot_ms\": {}, \"run_ms\": {}, \
             \"reports_seen\": {}, \"report_ms_p50\": {}, \"report_ms_p99\": {}, \
             \"root_count\": {}, \"root_sum\": {:.1}, \"expected_sum\": {:.1}, \
             \"completeness\": {:.4}, \"maan_hits\": {}, \
             \"sent\": {}, \"received\": {}, \"decode_errors\": {}, \
             \"shed_total\": {}, \"socket_errors\": {}, \
             \"scrape_samples\": {}, \"exact\": {}, \"complete\": {}}}",
            self.nodes,
            self.boot_ms,
            self.run_ms,
            self.reports_seen,
            self.report_interval_pct(0.50),
            self.report_interval_pct(0.99),
            self.root_count,
            self.root_sum,
            self.expected_sum,
            self.completeness,
            self.maan_hits.len(),
            self.stats.sent,
            self.stats.received,
            self.stats.decode_errors,
            self.sheds,
            self.stats.socket_recv_errors + self.stats.socket_send_errors,
            self.scrape_samples,
            self.exact,
            self.complete,
        )
    }
}

/// Map ring identifiers to cluster addresses `0..n` (sorted-id order).
fn addr_book(ring: &StaticRing) -> HashMap<Id, NodeAddr> {
    ring.ids()
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, NodeAddr(i as u64)))
        .collect()
}

/// Boot the overlay, run the DAT+MAAN workload, scrape, and report.
///
/// Returns `Err` on harness-level failures (socket exhaustion, a node
/// that stops answering); invariant violations are reported in the
/// returned [`HarnessReport`] (`exact` / `complete`), so callers decide
/// whether to assert or just record.
pub fn run_harness(cfg: HarnessConfig) -> Result<HarnessReport, String> {
    let n = cfg.nodes;
    if n < 2 {
        return Err("harness needs at least 2 nodes".into());
    }
    let space = IdSpace::new(cfg.bits);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let book = addr_book(&ring);

    // Maintenance cadence: quiet for a pre-converged ring (the workload,
    // not stabilization, should own the wire), live for staged joins.
    let ccfg = match cfg.boot {
        BootMode::Prestabilized => ChordConfig {
            space,
            stabilize_ms: 60_000,
            fix_fingers_ms: 60_000,
            check_pred_ms: 60_000,
            ..ChordConfig::default()
        },
        BootMode::StagedJoin { .. } => ChordConfig {
            space,
            stabilize_ms: 150,
            fix_fingers_ms: 60,
            check_pred_ms: 500,
            ..ChordConfig::default()
        },
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: cfg.epoch_ms,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };

    let mut actors = Vec::with_capacity(n);
    for (i, &id) in ring.ids().iter().enumerate() {
        actors.push(
            StackNode::new(ccfg, id, NodeAddr(i as u64))
                .with_app(DatProtocol::new(dcfg))
                .with_app(MaanProtocol::new(grid_schemas())),
        );
    }

    let boot_t0 = Instant::now();
    let cluster = ClusterHost::launch_with(actors, cfg.host).map_err(|e| e.to_string())?;
    boot(&cluster, &ring, &book, cfg.boot)?;
    let boot_ms = boot_t0.elapsed().as_millis() as u64;

    // DAT side: register the global attribute everywhere, local value =
    // ring position, so the exact root sum is n(n-1)/2.
    let key = cluster
        .call(NodeAddr(0), |node| {
            let key = node.register("cpu-usage", AggregationMode::Continuous);
            node.set_local(key, 0.0);
            (key, vec![])
        })
        .ok_or("node 0 stopped answering during registration")?;
    for i in 1..n {
        cluster.cast(NodeAddr(i as u64), move |node| {
            let key = node.register("cpu-usage", AggregationMode::Continuous);
            node.set_local(key, i as f64);
            vec![]
        });
    }

    // MAAN side: `machines` hosts advertise their cpu-speed from
    // scattered origin nodes (0.0, 0.5, … GHz).
    for j in 0..cfg.machines {
        let res = Resource::new(&format!("grid://host-{j:02}")).with("cpu-speed", j as f64 * 0.5);
        let origin = NodeAddr(((j * 4) % n) as u64);
        cluster.cast(origin, move |node| node.maan_register(&res));
    }

    // Workload phase: watch the root until `epochs` reports arrived and
    // the last one is exact, or the deadline passes.
    let root = book[&ring.successor(key)];
    let expected_sum = (n * (n - 1) / 2) as f64;
    let run_t0 = Instant::now();
    let deadline = run_t0 + Duration::from_millis(cfg.epoch_ms * cfg.epochs * 3 + 15_000);
    let mut reports_seen = 0u64;
    let mut intervals = Vec::new();
    let mut last_report_t: Option<Instant> = None;
    let (mut root_count, mut root_sum, mut completeness) = (0u64, 0f64, 0f64);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(cfg.epoch_ms.min(200)));
        let events = cluster
            .call(root, |node| (node.take_events(), vec![]))
            .ok_or("root stopped answering during the workload")?;
        for e in events {
            if let DatEvent::Report {
                key: k,
                partial,
                completeness: c,
                ..
            } = e
            {
                if k != key {
                    continue;
                }
                reports_seen += 1;
                let now = Instant::now();
                if let Some(prev) = last_report_t {
                    intervals.push(now.duration_since(prev).as_millis() as u64);
                }
                last_report_t = Some(now);
                root_count = partial.count;
                root_sum = partial.finalize(AggFunc::Sum);
                completeness = c.ratio;
            }
        }
        if reports_seen >= cfg.epochs && root_count as usize == n && root_sum == expected_sum {
            break;
        }
    }

    // Discovery runs against the same overlay while aggregation
    // continues: cpu-speed ∈ [2.0, 3.0] GHz selects hosts 04, 05, 06.
    let asker = NodeAddr((n / 2) as u64);
    let qid = cluster
        .call(asker, |node| node.maan_range_query("cpu-speed", 2.0, 3.0))
        .ok_or("asker stopped answering")?;
    let query_deadline = Instant::now() + Duration::from_secs(30);
    let mut maan_hits: Vec<String> = Vec::new();
    'query: while Instant::now() < query_deadline {
        std::thread::sleep(Duration::from_millis(100));
        let events = cluster
            .call(asker, |node| (node.take_maan_events(), vec![]))
            .ok_or("asker stopped answering mid-query")?;
        for e in events {
            let MaanEvent::QueryDone { qid: q, hits } = e;
            if q == qid {
                maan_hits = hits.into_iter().map(|r| r.uri).collect();
                maan_hits.sort();
                break 'query;
            }
        }
    }
    let run_ms = run_t0.elapsed().as_millis() as u64;

    // Scrape every node's exposition — each must parse standalone — and
    // fold the engine registries plus the transport registry into one
    // fleet view for the shed total.
    let mut scrape_samples = 0usize;
    let mut fleet = Registry::new();
    for i in 0..n {
        let (text, reg) = cluster
            .call(NodeAddr(i as u64), |node| {
                ((node.render_prometheus(), node.obs_registry()), vec![])
            })
            .ok_or_else(|| format!("node {i} stopped answering during scrape"))?;
        scrape_samples +=
            dat_obs::validate_prometheus(&text).map_err(|e| format!("node {i} exposition: {e}"))?;
        fleet.merge(&reg);
    }
    fleet.merge(&cluster.transport_registry());
    let sheds = fleet.counter_sum("engine_shed_total");

    let stats = cluster.stats();
    cluster.shutdown();

    let exact = root_count as usize == n && root_sum == expected_sum;
    Ok(HarnessReport {
        nodes: n,
        boot_ms,
        run_ms,
        reports_seen,
        report_intervals_ms: intervals,
        root_count,
        root_sum,
        expected_sum,
        completeness,
        maan_hits,
        stats,
        scrape_samples,
        sheds,
        exact,
        complete: completeness >= 1.0,
    })
}

/// Bring the ring up according to `mode`; returns once converged.
fn boot(
    cluster: &ClusterHost<StackNode>,
    ring: &StaticRing,
    book: &HashMap<Id, NodeAddr>,
    mode: BootMode,
) -> Result<(), String> {
    let n = ring.ids().len();
    match mode {
        BootMode::Prestabilized => {
            let succ_len = cluster
                .call(NodeAddr(0), |node| {
                    (node.chord().config().succ_list_len, vec![])
                })
                .ok_or("node 0 stopped answering during boot")?;
            for (i, &id) in ring.ids().iter().enumerate() {
                let addr_of = |id: Id| book[&id];
                let table = ring.table_of_with(id, succ_len, &addr_of);
                cluster.cast(NodeAddr(i as u64), move |node| node.start_with_table(table));
            }
            Ok(())
        }
        BootMode::StagedJoin { batch, settle_ms } => {
            let bootstrap = cluster
                .call(NodeAddr(0), |node| (node.me(), node.start_create()))
                .ok_or("node 0 stopped answering during boot")?;
            let mut next = 1usize;
            while next < n {
                let end = (next + batch.max(1)).min(n);
                for i in next..end {
                    cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
                }
                next = end;
                std::thread::sleep(Duration::from_millis(settle_ms));
            }
            // Converged = every node's successor matches the global view.
            let ids = ring.ids();
            let deadline = Instant::now() + Duration::from_secs(60 + n as u64 / 4);
            'wait: while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(200));
                for i in 0..n {
                    let want = ids[(i + 1) % n];
                    let got = cluster
                        .call(NodeAddr(i as u64), |node| {
                            (node.chord().table().successor().map(|s| s.id), vec![])
                        })
                        .ok_or_else(|| format!("node {i} stopped answering during boot"))?;
                    if got != Some(want) {
                        continue 'wait;
                    }
                }
                return Ok(());
            }
            Err(format!(
                "staged join did not converge within the deadline (n={n})"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    /// A small real cluster end to end: both boot paths complete the
    /// multi-service workload with exact sums over genuine UDP.
    #[test]
    fn small_cluster_completes_the_workload() {
        let report = run_harness(HarnessConfig {
            nodes: 16,
            epochs: 6,
            epoch_ms: 300,
            ..HarnessConfig::default()
        })
        .expect("harness runs");
        assert!(report.ok(), "invariants failed: {report:?}");
        assert_eq!(report.root_count, 16);
        assert_eq!(report.root_sum, 120.0);
        assert_eq!(
            report.maan_hits,
            vec!["grid://host-04", "grid://host-05", "grid://host-06"]
        );
        assert!(report.scrape_samples > 0);
        assert_eq!(report.stats.decode_errors, 0);
    }

    #[test]
    fn staged_join_boots_a_real_ring() {
        let report = run_harness(HarnessConfig {
            nodes: 8,
            epochs: 4,
            epoch_ms: 300,
            boot: BootMode::StagedJoin {
                batch: 4,
                settle_ms: 300,
            },
            ..HarnessConfig::default()
        })
        .expect("harness runs");
        assert!(report.ok(), "invariants failed: {report:?}");
        assert_eq!(report.root_count, 8);
    }
}
