//! `clusterbench` — real-cluster scaling trajectory, tracked in
//! `BENCH_cluster.json`.
//!
//! ```text
//! clusterbench [--sizes 64,256,1024] [--epochs 12] [--epoch-ms 500]
//!              [--budget-s N] [--out BENCH_cluster.json] [--quiet]
//! ```
//!
//! Runs the full harness (prestabilized boot, DAT+MAAN workload, scrape,
//! invariant check) once per size, ascending, and records node count vs
//! epochs/sec at the root, report-latency percentiles and shed totals.
//! `--budget-s` stops the sweep once total wall time exceeds the budget;
//! remaining sizes are recorded as skipped, never silently dropped.

#![deny(clippy::unwrap_used)]

use std::time::Instant;

use dat_cluster::{run_harness, HarnessConfig};

struct Opts {
    sizes: Vec<usize>,
    epochs: u64,
    epoch_ms: u64,
    budget_s: u64,
    out: String,
    quiet: bool,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        sizes: vec![64, 256, 1024],
        epochs: 12,
        epoch_ms: 500,
        budget_s: 0, // 0 = unbounded
        out: "BENCH_cluster.json".into(),
        quiet: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let val = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {arg}");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_u64 = |s: String, what: &str| -> u64 {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad {what} `{s}`");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--sizes" => {
                o.sizes = val(&mut i)
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad size `{s}`");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--epochs" => o.epochs = parse_u64(val(&mut i), "--epochs"),
            "--epoch-ms" => o.epoch_ms = parse_u64(val(&mut i), "--epoch-ms"),
            "--budget-s" => o.budget_s = parse_u64(val(&mut i), "--budget-s"),
            "--out" => o.out = val(&mut i),
            "--quiet" => o.quiet = true,
            other => {
                eprintln!("unknown flag `{other}`; see clusterbench source header");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o.sizes.sort_unstable();
    o
}

fn main() {
    let opts = parse_opts();
    let sweep_t0 = Instant::now();
    let mut entries: Vec<String> = Vec::new();
    let mut skipped: Vec<usize> = Vec::new();
    let mut failed = false;
    for &n in &opts.sizes {
        if opts.budget_s > 0 && sweep_t0.elapsed().as_secs() > opts.budget_s {
            skipped.push(n);
            continue;
        }
        if !opts.quiet {
            eprintln!("clusterbench: {n} real nodes…");
        }
        let t0 = Instant::now();
        match run_harness(HarnessConfig {
            nodes: n,
            epochs: opts.epochs,
            epoch_ms: opts.epoch_ms,
            ..HarnessConfig::default()
        }) {
            Ok(r) => {
                let wall_s = t0.elapsed().as_secs_f64();
                let epochs_per_sec = if r.run_ms > 0 {
                    r.reports_seen as f64 / (r.run_ms as f64 / 1000.0)
                } else {
                    0.0
                };
                if !r.ok() {
                    failed = true;
                    eprintln!(
                        "clusterbench: n={n} FAILED invariants (exact={}, complete={})",
                        r.exact, r.complete
                    );
                }
                entries.push(format!(
                    "    {{\"n\": {}, \"boot_ms\": {}, \"run_ms\": {}, \"wall_s\": {:.1}, \
                     \"reports\": {}, \"epochs_per_sec\": {:.2}, \
                     \"report_ms_p50\": {}, \"report_ms_p99\": {}, \
                     \"sent\": {}, \"received\": {}, \"shed_total\": {}, \
                     \"socket_errors\": {}, \"exact\": {}, \"complete\": {}}}",
                    r.nodes,
                    r.boot_ms,
                    r.run_ms,
                    wall_s,
                    r.reports_seen,
                    epochs_per_sec,
                    r.report_interval_pct(0.50),
                    r.report_interval_pct(0.99),
                    r.stats.sent,
                    r.stats.received,
                    r.sheds,
                    r.stats.socket_recv_errors + r.stats.socket_send_errors,
                    r.exact,
                    r.complete,
                ));
                if !opts.quiet {
                    eprintln!(
                        "clusterbench: n={n} done in {wall_s:.1}s — {:.2} epochs/s, \
                         p50 {} ms, p99 {} ms, sheds {}",
                        epochs_per_sec,
                        r.report_interval_pct(0.50),
                        r.report_interval_pct(0.99),
                        r.sheds
                    );
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("clusterbench: n={n} harness error: {e}");
            }
        }
    }
    let skipped_json = skipped
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let doc = format!(
        "{{\n  \"generated_unix\": {},\n  \"epochs\": {},\n  \"epoch_ms\": {},\n  \
         \"wall_s\": {},\n  \"runs\": [\n{}\n  ],\n  \"skipped\": [{}]\n}}\n",
        unix,
        opts.epochs,
        opts.epoch_ms,
        sweep_t0.elapsed().as_secs(),
        entries.join(",\n"),
        skipped_json,
    );
    if let Err(e) = std::fs::write(&opts.out, &doc) {
        eprintln!("clusterbench: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    }
    if !opts.quiet {
        eprintln!("clusterbench: wrote {}", opts.out);
    }
    if failed {
        std::process::exit(1);
    }
}
