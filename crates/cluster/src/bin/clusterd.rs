//! `clusterd` — boot a real cluster on this machine and run the
//! DAT+MAAN multi-service workload end to end.
//!
//! ```text
//! clusterd [--nodes 1024] [--seed 0x5AC] [--epochs 16] [--epoch-ms 500]
//!          [--boot prestab|staged] [--batch 32] [--settle-ms 500]
//!          [--machines 16] [--quiet]
//! ```
//!
//! Every node is a tokio task trio around its own UDP socket (see
//! `dat_cluster::host`). The process exits 0 only when the run met the
//! paper's invariants: the root's continuous report is **exact**
//! (`sum == Σ values`, every node contributed) and **complete**
//! (coverage ratio 1.0), and every node's Prometheus exposition parsed.

#![deny(clippy::unwrap_used)]

use dat_cluster::{run_harness, BootMode, HarnessConfig};

struct Opts {
    cfg: HarnessConfig,
    quiet: bool,
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        cfg: HarnessConfig::default(),
        quiet: false,
    };
    let mut boot = ("prestab".to_string(), 32usize, 500u64);
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let val = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {arg}");
                    std::process::exit(2);
                })
                .clone()
        };
        let parse_u64 = |s: String, what: &str| -> u64 {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| {
                eprintln!("bad {what} `{s}`");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--nodes" => o.cfg.nodes = parse_u64(val(&mut i), "--nodes") as usize,
            "--seed" => o.cfg.seed = parse_u64(val(&mut i), "--seed"),
            "--epochs" => o.cfg.epochs = parse_u64(val(&mut i), "--epochs"),
            "--epoch-ms" => o.cfg.epoch_ms = parse_u64(val(&mut i), "--epoch-ms"),
            "--machines" => o.cfg.machines = parse_u64(val(&mut i), "--machines") as usize,
            "--boot" => boot.0 = val(&mut i),
            "--batch" => boot.1 = parse_u64(val(&mut i), "--batch") as usize,
            "--settle-ms" => boot.2 = parse_u64(val(&mut i), "--settle-ms"),
            "--quiet" => o.quiet = true,
            other => {
                eprintln!("unknown flag `{other}`; see clusterd source header");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    o.cfg.boot = match boot.0.as_str() {
        "prestab" => BootMode::Prestabilized,
        "staged" => BootMode::StagedJoin {
            batch: boot.1,
            settle_ms: boot.2,
        },
        other => {
            eprintln!("unknown boot mode `{other}` (prestab|staged)");
            std::process::exit(2);
        }
    };
    o
}

fn main() {
    let opts = parse_opts();
    if !opts.quiet {
        eprintln!(
            "clusterd: booting {} real nodes (boot={:?}, epoch_ms={}, epochs={})",
            opts.cfg.nodes, opts.cfg.boot, opts.cfg.epoch_ms, opts.cfg.epochs
        );
    }
    match run_harness(opts.cfg) {
        Ok(report) => {
            println!("{}", report.to_json());
            if report.ok() {
                if !opts.quiet {
                    eprintln!(
                        "clusterd: OK — {} nodes, sum {} == {}, completeness {:.3}, {} reports",
                        report.nodes,
                        report.root_sum,
                        report.expected_sum,
                        report.completeness,
                        report.reports_seen
                    );
                }
            } else {
                eprintln!(
                    "clusterd: INVARIANTS FAILED — exact={} complete={} reports={} (sum {} vs {})",
                    report.exact,
                    report.complete,
                    report.reports_seen,
                    report.root_sum,
                    report.expected_sum
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("clusterd: harness error: {e}");
            std::process::exit(1);
        }
    }
}
