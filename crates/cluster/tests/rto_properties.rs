//! Karn/Jacobson RTO invariants exercised over the tokio host's real
//! timer path.
//!
//! The chord node's retransmission machinery (SRTT/RTTVAR estimation,
//! exponential backoff, the `[rto_min_ms, rto_max_ms]` clamp) is pure
//! sans-io state — but its inputs here come from genuine UDP round trips
//! and the async host's per-actor timer heap, not a simulated clock. The
//! properties under test:
//!
//! 1. `current_rto()` stays inside `[rto_min_ms, rto_max_ms]` at every
//!    observable instant — cold start, live estimation, and backoff.
//! 2. Once traffic flows, `srtt_ms()` becomes `Some` and stays plausible
//!    (positive, far below the clamp ceiling on loopback).
//! 3. Retransmission is driven by the host's timers: a join whose first
//!    datagram is protocol-dropped completes only when `max_retries > 0`.

#![deny(clippy::unwrap_used)]
#![allow(clippy::expect_used)]

use std::time::{Duration, Instant};

use dat_chord::{ChordConfig, ChordNode, Id, IdSpace, NodeAddr, NodeRef, Upcall};
use dat_cluster::ClusterHost;

fn fast_cfg() -> ChordConfig {
    ChordConfig {
        space: IdSpace::new(32),
        stabilize_ms: 50,
        fix_fingers_ms: 30,
        check_pred_ms: 100,
        req_timeout_ms: 400,
        ..ChordConfig::default()
    }
}

/// Sample every node's `(rto, srtt)` and assert the clamp invariant holds
/// at this instant; returns the samples for higher-level checks.
fn sample_rto(
    cluster: &ClusterHost<ChordNode>,
    nodes: u64,
    cfg: &ChordConfig,
) -> Vec<(u64, Option<f64>)> {
    let mut out = Vec::new();
    for i in 0..nodes {
        let (rto, srtt) = cluster
            .call(NodeAddr(i), |n| ((n.current_rto(), n.srtt_ms()), vec![]))
            .expect("node answers");
        assert!(
            (cfg.rto_min_ms..=cfg.rto_max_ms).contains(&rto),
            "node {i}: rto {rto} ms escaped [{}, {}]",
            cfg.rto_min_ms,
            cfg.rto_max_ms
        );
        if let Some(s) = srtt {
            // Loopback RTTs at millisecond clock resolution can round to
            // exactly 0 — negative or non-finite would be the bug.
            assert!(s >= 0.0 && s.is_finite(), "node {i}: bogus srtt {s}");
        }
        out.push((rto, srtt));
    }
    out
}

#[test]
fn rto_stays_clamped_while_estimating_over_real_udp() {
    let cfg = fast_cfg();
    let a = ChordNode::new(cfg, Id(1_000), NodeAddr(0));
    let b = ChordNode::new(cfg, Id(2_000_000), NodeAddr(1));
    let cluster = ClusterHost::launch(vec![a, b]).expect("bind loopback sockets");

    // Cold start: no RTT samples yet, the clamp must already hold.
    for (rto, srtt) in sample_rto(&cluster, 2, &cfg) {
        assert_eq!(srtt, None, "no traffic yet, no estimate");
        assert!(rto >= cfg.rto_min_ms);
    }

    let bootstrap = cluster
        .call(NodeAddr(0), |n| (n.me(), n.start_create()))
        .expect("node 0 answers");
    cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));

    // Live estimation: sample the whole window of a real join + the
    // stabilization chatter that follows. Every instant must satisfy the
    // clamp; loopback RTTs must keep the estimate far below the ceiling.
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut estimated = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
        let samples = sample_rto(&cluster, 2, &cfg);
        if samples.iter().all(|(_, s)| s.is_some()) {
            estimated = true;
            for (rto, srtt) in samples {
                let s = srtt.expect("checked above");
                assert!(
                    s < cfg.rto_max_ms as f64 / 4.0,
                    "loopback srtt {s} ms is implausibly close to the clamp ceiling"
                );
                // Jacobson: the timeout is srtt plus variance margin, so
                // it can never undercut the smoothed estimate.
                assert!(
                    (rto as f64) >= s || rto == cfg.rto_min_ms,
                    "rto {rto} below srtt {s} without hitting the floor"
                );
            }
            break;
        }
    }
    cluster.shutdown();
    assert!(estimated, "both nodes should converge to an RTT estimate");
}

#[test]
fn retransmission_through_the_tokio_timer_path_drives_the_join() {
    // The bootstrap activates ~250 ms late: the joiner's first
    // FindSuccessor lands while it is still `Created` and is
    // protocol-dropped. With a single protocol-level join attempt, only
    // RTO-driven datagram retransmission — fired by the async host's
    // per-actor timer heap — can complete the join.
    let run = |max_retries: u32| {
        let cfg = ChordConfig {
            max_retries,
            max_join_retries: 1,
            ..fast_cfg()
        };
        let a = ChordNode::new(cfg, Id(1_000), NodeAddr(0));
        let b = ChordNode::new(cfg, Id(2_000_000), NodeAddr(1));
        let cluster = ClusterHost::launch(vec![a, b]).expect("bind loopback sockets");
        let bootstrap = NodeRef::new(Id(1_000), NodeAddr(0));
        cluster.cast(NodeAddr(1), move |n| n.start_join(bootstrap));
        // Activate the bootstrap only after its socket has *received* the
        // joiner's first FindSuccessor — which the still-dormant node
        // protocol-drops. Synchronizing on the counter instead of a fixed
        // sleep keeps the race deterministic under arbitrary CPU load.
        let armed = Instant::now() + Duration::from_secs(10);
        while cluster.stats().received == 0 && Instant::now() < armed {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            cluster.stats().received > 0,
            "the join request never reached the dormant bootstrap"
        );
        // Counted slightly before it is enqueued — give the reader a beat
        // so the drop is ordered ahead of the create on node 0's inbox.
        std::thread::sleep(Duration::from_millis(50));
        cluster.cast(NodeAddr(0), |n| n.start_create());
        let deadline = Instant::now() + Duration::from_secs(20);
        let (mut joined, mut failed) = (false, false);
        while Instant::now() < deadline && !joined && !failed {
            std::thread::sleep(Duration::from_millis(50));
            // The backoff invariant must hold mid-retransmission too.
            sample_rto(&cluster, 2, &cfg);
            for (addr, u) in cluster.drain_upcalls() {
                if addr == NodeAddr(1) {
                    match u {
                        Upcall::Joined { .. } => joined = true,
                        Upcall::JoinFailed => failed = true,
                        _ => {}
                    }
                }
            }
        }
        cluster.shutdown();
        (joined, failed)
    };
    let (joined, _) = run(2);
    assert!(
        joined,
        "retransmission should recover the dropped join request"
    );
    let (joined, failed) = run(0);
    assert!(
        !joined && failed,
        "single-shot join through a sleeping bootstrap must fail (joined={joined}, failed={failed})"
    );
}
