#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> examples build"
cargo build --release --examples

echo "==> examples smoke: quickstart (sim) + rpc_cluster (UDP, 8 nodes)"
cargo run --release --example quickstart
cargo run --release --example rpc_cluster -- 8

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI green."
