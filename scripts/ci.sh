#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: unwrap_used denied in self-healing + observability + health modules"
# The failure-semantics layer (PR 3) must not panic its way out of a
# degraded state, the observability crate (PR 4) must never crash the
# node it instruments, the health plane (PR 6) must never panic the
# failure detector it runs inside, and the wire-robustness layer (PR 8:
# codec error paths, fuzz driver, corruption soak) must never panic on
# hostile input, and the async cluster host + its bins (PR 9) must never
# panic a 1k-node fleet, and the multi-core engine (PR 10) must never
# panic a worker thread mid-barrier (a poisoned barrier deadlocks the
# other shards); the modules opt in via
# #![deny(clippy::unwrap_used)] and this check keeps the attribute from
# being dropped silently.
for f in crates/sim/src/soak.rs crates/bench/src/experiments/degradation.rs \
         crates/obs/src/lib.rs crates/chord/src/health.rs \
         crates/sim/src/gray.rs crates/sim/src/queue.rs crates/sim/src/net.rs \
         crates/sim/src/scale.rs crates/chord/src/wire.rs \
         crates/sim/src/fuzz.rs crates/sim/src/corrupt.rs \
         crates/cluster/src/lib.rs crates/cluster/src/bin/clusterd.rs \
         crates/cluster/src/bin/clusterbench.rs crates/sim/src/shard.rs; do
  grep -q '#!\[deny(clippy::unwrap_used)\]' "$f" \
    || { echo "missing #![deny(clippy::unwrap_used)] in $f"; exit 1; }
done

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> repro smoke: fig8a with tracing on; the fleet Prometheus dump must parse"
# --metrics merges every node's registry and validates the exposition
# (non-empty, grammar, no duplicate series); --check turns a validation
# failure into a non-zero exit. Capture first: a -q grep would close the
# pipe mid-dump and kill the producer with SIGPIPE under pipefail.
metrics_out="$(cargo run --release -p dat-bench --bin repro -- --quick --check --metrics fig8a)"
grep -q "parses clean" <<<"$metrics_out" \
  || { echo "fig8a --metrics produced no validated Prometheus dump"; exit 1; }

echo "==> soak smoke: bounded churn matrix (failing seeds print their replay line)"
# Two simulated hours of seeded churn per seed; ~10 s wall-clock each
# thanks to the per-crate opt-level overrides. Extend the matrix with
# e.g. SOAK_SEEDS="2 9 41" for a deeper sweep.
SOAK_SEEDS="${SOAK_SEEDS:-2}" cargo test -q --test soak_churn -- --nocapture

echo "==> gray-failure smoke: slow/half-open/overload/flapping matrix"
# Four scored gray-fault episodes against a 32-node continuous
# aggregation (~1 s wall-clock per seed); failing seeds print their
# replay line. Extend with e.g. GRAY_SEEDS="3 5 8" for a deeper sweep.
GRAY_SEEDS="${GRAY_SEEDS:-2}" cargo test -q --test gray_failures -- --nocapture

echo "==> decode fuzz smoke: 50k seeded mutations per wire codec"
# Structure-aware mutation fuzz over all four decoders (chord frames,
# DAT payloads, MAAN payloads, Prometheus text); a hit prints the seed,
# iteration and hex input for offline replay. Plain `cargo test` runs
# 5k per codec; CI runs 50k. Deepen with e.g. FUZZ_ITERS=500000.
FUZZ_ITERS="${FUZZ_ITERS:-50000}" cargo test -q --test codec_fuzz -- --nocapture

echo "==> corruption soak smoke: scored byte-damage campaign, 3 seeds"
# ~3 simulated minutes of wire damage per seed (bit-flip noise floor, a
# garbage jam on the biggest subtree's uplink, a poisoning burst on a
# ring-neighbor link) against a 24-node continuous aggregation. Scored:
# zero silently-wrong reports, detection counted, completeness dips and
# heals, poisoned peer quarantined and released. Failing seeds print
# their replay line. Extend with e.g. CORRUPT_SEEDS="9 17".
cargo test -q --test corruption_soak -- --nocapture

echo "==> event-engine bench smoke: simbench at small sizes emits BENCH_sim.json"
# A fast sweep (512 and 2048 nodes, 2 s virtual) through the same binary
# that produced the committed BENCH_sim.json; validates the harness and
# the JSON shape without the multi-minute full sweep. Writes to a temp
# file so the committed trajectory is not clobbered by smoke numbers.
simbench_out="$(mktemp)"
cargo run --release -p dat-bench --bin simbench -- \
  --sizes 512,2048 --virtual-ms 2000 --scheduler both --quiet \
  --out "$simbench_out"
grep -q '"events_per_sec"' "$simbench_out" \
  || { echo "simbench smoke produced no throughput figures"; exit 1; }
rm -f "$simbench_out"

echo "==> multi-shard smoke: 4-shard scale run must reproduce the 1-shard digest"
# A ~100k-event seeded maintenance run (4096 nodes, 2 s virtual) on the
# multi-core engine at 1 and 4 shards. simbench itself exits non-zero on
# any digest divergence; the greps below double-check that both shard
# counts actually ran and that the conservative window never clamped.
shard_out="$(mktemp)"
cargo run --release -p dat-bench --bin simbench -- \
  --sizes 4096 --virtual-ms 2000 --shards 1,4 --quiet \
  --out "$shard_out" \
  || { echo "multi-shard smoke: digest divergence or engine failure"; exit 1; }
grep -q '"shards": 1' "$shard_out" && grep -q '"shards": 4' "$shard_out" \
  || { echo "multi-shard smoke: missing a shard-count entry"; exit 1; }
shard_digests="$(grep '"scheduler": "sharded"' "$shard_out" \
  | grep -o '"digest": "[0-9a-f]*"' | sort -u | wc -l)"
[ "$shard_digests" -eq 1 ] \
  || { echo "multi-shard smoke: shard counts disagree on the run digest"; exit 1; }
grep -q '"clamped": 0' "$shard_out" \
  || { echo "multi-shard smoke: conservative window clamped an event"; exit 1; }
rm -f "$shard_out"

echo "==> scale smoke: 100k-node ring, 1 s virtual, bounded wall clock"
# The million-node engine's CI-sized proxy: build a 100k-node
# prestabilized ring and run one virtual second through the timer wheel.
# The wall-clock budget (default 300 s, enforced by timeout(1) since
# simbench's own --budget-s only gates between sweep entries) catches
# complexity regressions in the hot path — at the measured ~300k
# events/s this finishes in well under half the budget, so a trip means
# something got slower in kind, not degree. Raise SCALE_BUDGET_S on
# slow hardware.
scale_out="$(mktemp)"
timeout "${SCALE_BUDGET_S:-300}" \
  cargo run --release -p dat-bench --bin simbench -- \
  --sizes 98304 --virtual-ms 1000 --quiet --out "$scale_out" \
  || { echo "100k scale smoke failed or exceeded ${SCALE_BUDGET_S:-300}s budget"; exit 1; }
grep -q '"n": 98304' "$scale_out" \
  || { echo "100k scale smoke produced no report entry"; exit 1; }
grep -q '"clamped": 0' "$scale_out" \
  || { echo "100k scale smoke clamped timestamps (wheel span exceeded)"; exit 1; }
rm -f "$scale_out"

echo "==> cluster smoke: 64 real UDP nodes through the tokio host"
# Boots 64 real nodes (one UDP socket + three tasks each) with the
# prestabilized harness, runs 6 DAT epochs + a MAAN discovery, scrapes
# every node, and exits non-zero unless the root answer was exact
# (sum 64·63/2) and completeness held at 1.0. ~5 s wall-clock; scale
# with e.g. CLUSTER_SMOKE_NODES=256. The full 1024-node run backs the
# committed BENCH_cluster.json (see clusterbench).
cargo run --release -p dat-cluster --bin clusterd -- \
  --nodes "${CLUSTER_SMOKE_NODES:-64}" --epochs 6 --epoch-ms 500 --quiet

echo "==> examples build"
cargo build --release --examples

echo "==> examples smoke: quickstart (sim) + rpc_cluster (UDP, 8 nodes)"
cargo run --release --example quickstart
cargo run --release --example rpc_cluster -- 8

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

if [ "${TSAN:-0}" = "1" ]; then
  echo "==> TSAN lane: sharded-engine tests under ThreadSanitizer (opt-in)"
  # -Zsanitizer=thread needs nightly plus the rust-src component (std must
  # be rebuilt instrumented). The lane is opt-in (TSAN=1) and skips
  # gracefully where nightly is absent, so the default gate stays usable
  # on stable-only hosts; run it before touching the barrier protocol or
  # the cross-shard mailboxes.
  if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
     && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src (installed)'; then
    tsan_target="$(rustc -vV | sed -n 's/^host: //p')"
    RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -Zbuild-std --target "$tsan_target" \
      -p dat-sim --lib shard:: \
      || { echo "TSAN lane: data race or test failure in the sharded engine"; exit 1; }
  else
    echo "TSAN lane: nightly toolchain with rust-src not installed; skipping"
  fi
else
  echo "==> TSAN lane skipped (opt in with TSAN=1; needs nightly + rust-src)"
fi

echo "CI green."
