#!/usr/bin/env bash
# Local CI gate: formatting, lints, then the tier-1 build + test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy: unwrap_used denied in self-healing + observability + health modules"
# The failure-semantics layer (PR 3) must not panic its way out of a
# degraded state, the observability crate (PR 4) must never crash the
# node it instruments, and the health plane (PR 6) must never panic the
# failure detector it runs inside; the modules opt in via
# #![deny(clippy::unwrap_used)] and this check keeps the attribute from
# being dropped silently.
for f in crates/sim/src/soak.rs crates/bench/src/experiments/degradation.rs \
         crates/obs/src/lib.rs crates/chord/src/health.rs \
         crates/sim/src/gray.rs; do
  grep -q '#!\[deny(clippy::unwrap_used)\]' "$f" \
    || { echo "missing #![deny(clippy::unwrap_used)] in $f"; exit 1; }
done

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> repro smoke: fig8a with tracing on; the fleet Prometheus dump must parse"
# --metrics merges every node's registry and validates the exposition
# (non-empty, grammar, no duplicate series); --check turns a validation
# failure into a non-zero exit. Capture first: a -q grep would close the
# pipe mid-dump and kill the producer with SIGPIPE under pipefail.
metrics_out="$(cargo run --release -p dat-bench --bin repro -- --quick --check --metrics fig8a)"
grep -q "parses clean" <<<"$metrics_out" \
  || { echo "fig8a --metrics produced no validated Prometheus dump"; exit 1; }

echo "==> soak smoke: bounded churn matrix (failing seeds print their replay line)"
# Two simulated hours of seeded churn per seed; ~10 s wall-clock each
# thanks to the per-crate opt-level overrides. Extend the matrix with
# e.g. SOAK_SEEDS="2 9 41" for a deeper sweep.
SOAK_SEEDS="${SOAK_SEEDS:-2}" cargo test -q --test soak_churn -- --nocapture

echo "==> gray-failure smoke: slow/half-open/overload/flapping matrix"
# Four scored gray-fault episodes against a 32-node continuous
# aggregation (~1 s wall-clock per seed); failing seeds print their
# replay line. Extend with e.g. GRAY_SEEDS="3 5 8" for a deeper sweep.
GRAY_SEEDS="${GRAY_SEEDS:-2}" cargo test -q --test gray_failures -- --nocapture

echo "==> examples build"
cargo build --release --examples

echo "==> examples smoke: quickstart (sim) + rpc_cluster (UDP, 8 nodes)"
cargo run --release --example quickstart
cargo run --release --example rpc_cluster -- 8

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "CI green."
