//! Gossip vs DAT: two decentralized ways to learn the global average.
//!
//! Push-sum gossip needs no structure at all but pays `O(n log n)` messages
//! for an ε-approximation; the balanced DAT computes the exact answer with
//! `n − 1` messages per epoch. This example runs both on the same 256-node
//! overlay and prints the convergence race. A distinct-count sketch rides
//! along in the DAT partials to show digest aggregation (how many distinct
//! sites reported this epoch).
//!
//! ```text
//! cargo run --release --example gossip_vs_dat
//! ```

use libdat::chord::{hash_to_id, ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use libdat::core::{AggFunc, DatEvent, GossipConfig};
use libdat::sim::harness::{addr_book, prestabilized_dat, prestabilized_gossip};
use rand::SeedableRng;

fn main() {
    let n = 256usize;
    let space = IdSpace::new(32);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x6055);
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 600_000,
        fix_fingers_ms: 600_000,
        check_pred_ms: 600_000,
        ..ChordConfig::default()
    };
    let truth = (n as f64 - 1.0) / 2.0;
    println!("true global average over {n} nodes: {truth}");

    // --- push-sum gossip -------------------------------------------------
    let gcfg = GossipConfig {
        round_ms: 1_000,
        fanout: 1,
    };
    let mut gnet = prestabilized_gossip(&ring, ccfg, gcfg, 1, |i| i as f64);
    gnet.set_record_upcalls(false);
    println!("\npush-sum:");
    println!("  round   worst-node error   messages so far");
    let mut gossip_done_msgs = None;
    for round in 1..=60u64 {
        gnet.run_for(1_000);
        let worst = gnet
            .iter_nodes()
            .map(|(_, node)| ((node.gossip().estimate() - truth) / truth).abs())
            .fold(0.0f64, f64::max);
        let msgs: u64 = gnet
            .addrs()
            .iter()
            .map(|&a| {
                gnet.node(a)
                    .unwrap()
                    .gossip_metrics()
                    .sent_of("gossip_share")
            })
            .sum();
        if round % 5 == 0 || worst < 0.001 {
            println!("  {round:>5}   {:>16.4}%   {msgs:>15}", worst * 100.0);
        }
        if worst < 0.001 {
            gossip_done_msgs = Some(msgs);
            break;
        }
    }

    // --- balanced DAT -----------------------------------------------------
    let dcfg = libdat::core::DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..libdat::core::DatConfig::default()
    };
    let mut dnet = prestabilized_dat(&ring, ccfg, dcfg, 1);
    dnet.set_record_upcalls(false);
    let book = addr_book(&ring);
    let key = hash_to_id(space, b"load-average");
    let sites = ["usc", "isi", "caltech", "ucla", "ucsd"];
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = dnet.node_mut(book[&id]).unwrap();
        // The partial also carries a distinct-count sketch of the sites
        // reporting — one digest rides along with the scalar aggregate.
        let k = node.register_with_distinct(
            "load-average",
            libdat::core::AggregationMode::Continuous,
            10,
        );
        node.set_local(k, i as f64);
        node.observe_local_item(k, sites[i % sites.len()].as_bytes());
    }
    dnet.run_for(3_000);
    let root = book[&ring.successor(key)];
    let report = dnet
        .node_mut(root)
        .unwrap()
        .take_events()
        .into_iter()
        .rev()
        .find_map(|e| match e {
            DatEvent::Report { partial, .. } => Some(partial),
            _ => None,
        })
        .expect("root reports");
    let dat_msgs: u64 = dnet
        .addrs()
        .iter()
        .map(|&a| dnet.node(a).unwrap().dat_metrics().sent_of("dat_update"))
        .sum();
    println!("\nbalanced DAT:");
    println!(
        "  exact average {} after 3 epochs, {} update messages total ({} per epoch)",
        report.finalize(AggFunc::Avg),
        dat_msgs,
        dat_msgs / 3
    );
    println!(
        "  distinct sites reporting (HyperLogLog digest): {:.1} (true: {})",
        report.distinct_estimate(),
        sites.len()
    );
    assert_eq!(report.finalize(AggFunc::Avg), truth);
    if let Some(g) = gossip_done_msgs {
        println!(
            "\nsummary: gossip needed {g} messages for a 0.1% answer; the DAT's exact \
             answer costs {} per epoch — a {:.0}x difference",
            n - 1,
            g as f64 / (n as f64 - 1.0)
        );
    }
    println!("ok");
}
