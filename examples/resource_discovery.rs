//! Resource discovery over MAAN: advertise a fleet of heterogeneous Grid
//! machines, then answer multi-attribute range queries (paper §2.2 — the
//! indexing layer the DAT aggregation sits on).
//!
//! ```text
//! cargo run --example resource_discovery
//! ```

use libdat::chord::{IdPolicy, IdSpace, StaticRing};
use libdat::maan::{MaanNetwork, Predicate, Resource};
use libdat::monitor::DiscoveryService;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
    let ring = StaticRing::build(IdSpace::new(32), 128, IdPolicy::Probed, &mut rng);
    let mut svc =
        DiscoveryService::new(MaanNetwork::new(ring, DiscoveryService::standard_schemas()));
    let origin = svc.maan().ring().ids()[0];

    // Advertise 300 machines across three sites.
    let sites = ["usc", "isi", "caltech"];
    let oses = ["linux", "linux", "linux", "freebsd"]; // 3:1 mix
    let mut reg_hops = 0u64;
    for i in 0..300u64 {
        let machine = Resource::new(&format!("grid://node{i:03}"))
            .with("cpu-speed", 1.0 + rng.random::<f64>() * 3.0)
            .with("cpu-usage", rng.random::<f64>() * 100.0)
            .with("memory-size", [8.0, 16.0, 32.0, 64.0][i as usize % 4])
            .with("os", oses[i as usize % 4])
            .with("site", sites[i as usize % 3]);
        reg_hops += svc.advertise(origin, &machine).total();
    }
    println!(
        "registered 300 machines (5 attributes each): {} routing hops total, {:.1} per registration",
        reg_hops,
        reg_hops as f64 / 300.0
    );
    let loads = svc.maan().load_distribution();
    let max_load = loads.iter().map(|&(_, c)| c).max().unwrap();
    println!(
        "index load: {} entries across {} nodes, max {} on one node",
        loads.iter().map(|&(_, c)| c).sum::<usize>(),
        loads.len(),
        max_load
    );

    // Scheduler-style query: fast idle Linux machines with plenty of RAM.
    let preds = [
        Predicate::exact("os", "linux"),
        Predicate::range("cpu-speed", 2.5, 16.0),
        Predicate::range("cpu-usage", 0.0, 30.0),
        Predicate::range("memory-size", 32.0, 1024.0),
    ];
    let (hits, stats) = svc.find(origin, &preds);
    println!(
        "\nquery: linux ∧ cpu≥2.5GHz ∧ load≤30% ∧ mem≥32GB → {} machines \
         ({} routing hops + {} nodes visited)",
        hits.len(),
        stats.routing_hops,
        stats.visited_nodes
    );
    for r in hits.iter().take(5) {
        println!(
            "  {}  cpu {:.2} GHz  load {:>5.1}%  mem {:>3.0} GB  @{}",
            r.uri,
            r.get("cpu-speed").unwrap().as_num().unwrap(),
            r.get("cpu-usage").unwrap().as_num().unwrap(),
            r.get("memory-size").unwrap().as_num().unwrap(),
            r.get("site").unwrap().as_str().unwrap()
        );
    }
    if hits.len() > 5 {
        println!("  ... and {} more", hits.len() - 5);
    }
    // Every hit really satisfies every predicate.
    assert!(hits.iter().all(|r| preds.iter().all(|p| r.matches(p))));
    println!("\nok: multi-attribute dominated queries resolve correctly");
}
