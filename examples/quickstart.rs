//! Quickstart: build DAT trees, inspect their shape, and run one live
//! aggregation round in the discrete-event simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use libdat::chord::{hash_to_id, ChordConfig, IdPolicy, IdSpace, RoutingScheme, StaticRing};
use libdat::core::{AggFunc, AggregationMode, DatConfig, DatEvent, DatTree, TreeStats};
use libdat::sim::harness::{addr_book, prestabilized_dat};
use rand::SeedableRng;

fn main() {
    let space = IdSpace::new(32);
    let n = 256;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(42);

    // 1. A Chord ring with identifier probing (paper §3.5).
    let ring = StaticRing::build(space, n, IdPolicy::Probed, &mut rng);
    println!("ring: {n} nodes, gap ratio {:.2}", ring.gap_ratio());

    // 2. The implicit aggregation trees toward the "cpu-usage" key.
    let key = hash_to_id(space, b"cpu-usage");
    for scheme in [RoutingScheme::Greedy, RoutingScheme::Balanced] {
        let tree = DatTree::build(&ring, key, scheme);
        let s = TreeStats::of(&tree);
        println!(
            "{:>8} DAT: height {}, max branching {}, avg branching {:.2}, leaves {}",
            scheme.label(),
            s.height,
            s.max_branching,
            s.avg_branching,
            s.leaves
        );
    }

    // 3. Live continuous aggregation in the simulator: every node reports
    //    a synthetic CPU usage; the rendezvous root aggregates globally.
    let ccfg = ChordConfig {
        space,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        d0_hint: Some(ring.d0()),
        ..DatConfig::default()
    };
    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 42);
    net.set_record_upcalls(false);
    let book = addr_book(&ring);
    for (i, &id) in ring.ids().iter().enumerate() {
        let node = net.node_mut(book[&id]).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 20.0 + (i % 60) as f64); // synthetic load
    }
    // Let a few epochs elapse so partials propagate up the tree.
    net.run_for(6_000);

    let root_addr = book[&ring.successor(key)];
    let report = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            DatEvent::Report { epoch, partial, .. } => Some((epoch, partial)),
            _ => None,
        })
        .next_back()
        .expect("the root must have produced a report");
    let (epoch, p) = report;
    println!(
        "epoch {epoch}: global cpu-usage — count {}, avg {:.2}, min {:.0}, max {:.0}",
        p.count,
        p.finalize(AggFunc::Avg),
        p.finalize(AggFunc::Min),
        p.finalize(AggFunc::Max),
    );
    assert_eq!(p.count as usize, n, "every node contributed");
    println!("ok: all {n} nodes aggregated through the balanced DAT");
}
