//! Churn storm: the implicit DAT adapts to continuous arrivals and
//! departures with zero tree-maintenance traffic (paper §2.3 and the
//! abstract's "very low overhead during node arrival and departure").
//!
//! A 128-node overlay loses or gains a node every second for two minutes
//! of virtual time; the balanced DAT keeps aggregating throughout, and the
//! report's node coverage tracks the live membership.
//!
//! ```text
//! cargo run --release --example churn_storm
//! ```

use libdat::chord::{
    hash_to_id, ChordConfig, IdPolicy, IdSpace, NodeAddr, RoutingScheme, StaticRing,
};
use libdat::core::{AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::sim::harness::{addr_book, prestabilized_dat};
use rand::{Rng, SeedableRng};

fn main() {
    let space = IdSpace::new(32);
    let n0 = 128usize;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x57);
    let ring = StaticRing::build(space, n0, IdPolicy::Probed, &mut rng);
    let ccfg = ChordConfig {
        space,
        stabilize_ms: 1_000,
        fix_fingers_ms: 500,
        check_pred_ms: 1_500,
        req_timeout_ms: 2_500,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        scheme: RoutingScheme::Balanced,
        epoch_ms: 1_000,
        child_ttl_epochs: 3,
        ..DatConfig::default()
    };
    let key = hash_to_id(space, b"cpu-usage");
    let book = addr_book(&ring);
    let root_addr = book[&ring.successor(key)];

    let mut net = prestabilized_dat(&ring, ccfg, dcfg, 0x57);
    net.set_record_upcalls(false);
    for addr in net.addrs() {
        let node = net.node_mut(addr).unwrap();
        let k = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(k, 42.0);
    }
    net.run_for(5_000);

    println!("  t(s)  live-nodes  reported-count  coverage");
    let mut next_addr = n0 as u64;
    let mut leave_next = true;
    for sec in 1..=120u64 {
        net.run_for(1_000);
        // One churn event per second, alternating leave/join.
        if leave_next {
            let candidates: Vec<NodeAddr> = net
                .addrs()
                .into_iter()
                .filter(|&a| a != root_addr)
                .collect();
            if candidates.len() > 8 {
                let victim = candidates[rng.random_range(0..candidates.len())];
                if sec % 2 == 0 {
                    // Graceful departure.
                    net.with_node(victim, |node| ((), node.leave()));
                } else {
                    // Crash: peers must discover it via timeouts.
                    net.crash(victim);
                }
            }
        } else {
            let id = space.random(&mut rng);
            let addr = NodeAddr(next_addr);
            next_addr += 1;
            let bootstrap = net.node(root_addr).unwrap().me();
            let mut node = StackNode::new(ccfg, id, addr).with_app(DatProtocol::new(dcfg));
            let k = node.register("cpu-usage", AggregationMode::Continuous);
            node.set_local(k, 42.0);
            let outs = node.start_join(bootstrap);
            net.add_node(node);
            net.apply(addr, outs);
        }
        leave_next = !leave_next;

        if sec % 10 == 0 {
            let live = net.len();
            let report = net
                .node_mut(root_addr)
                .unwrap()
                .take_events()
                .into_iter()
                .filter_map(|e| match e {
                    DatEvent::Report { partial, .. } => Some(partial),
                    _ => None,
                })
                .next_back();
            match report {
                Some(p) => println!(
                    "  {sec:>4}  {live:>10}  {:>14}  {:>7.1}%",
                    p.count,
                    p.count as f64 / live as f64 * 100.0
                ),
                None => println!("  {sec:>4}  {live:>10}  (no report)"),
            }
        }
    }

    // Let things settle, then verify near-complete coverage again.
    net.run_for(15_000);
    let live = net.len();
    let p = net
        .node_mut(root_addr)
        .unwrap()
        .take_events()
        .into_iter()
        .filter_map(|e| match e {
            DatEvent::Report { partial, .. } => Some(partial),
            _ => None,
        })
        .next_back()
        .expect("root keeps reporting");
    let coverage = p.count as f64 / live as f64;
    println!(
        "\nafter settling: {live} live nodes, report covers {} ({:.1}%)",
        p.count,
        coverage * 100.0
    );
    assert!(
        coverage > 0.9,
        "implicit tree should recover >90% coverage after churn"
    );
    println!("ok: the implicit DAT survived 120 churn events with no tree-repair messages");
}
