//! Real-network DAT: a cluster of nodes over loopback UDP sockets (the
//! paper's RPC-based deployment, §4/§5.1 — it ran 64 instances per machine;
//! we run them in one process, one real socket each).
//!
//! Nodes join the ring live (with identifier probing), the overlay
//! stabilizes in wall-clock time, then an on-demand aggregate query fans
//! out and convergecasts over real datagrams.
//!
//! ```text
//! cargo run --release --example rpc_cluster [-- <nodes>]   # default 24
//! ```

use std::time::{Duration, Instant};

use libdat::chord::{ChordConfig, IdSpace, NodeAddr, NodeStatus};
use libdat::core::{AggFunc, AggregationMode, DatConfig, DatEvent, DatProtocol, StackNode};
use libdat::rpc::RpcCluster;
use rand::{Rng, SeedableRng};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xDA7);
    let ccfg = ChordConfig {
        space: IdSpace::new(48),
        stabilize_ms: 100,
        fix_fingers_ms: 40,
        check_pred_ms: 300,
        req_timeout_ms: 1_000,
        probe_on_join: true,
        ..ChordConfig::default()
    };
    let dcfg = DatConfig {
        epoch_ms: 300,
        query_window_ms: 300,
        ..DatConfig::default()
    };

    // Build the actors; each will bind its own UDP socket.
    let mut actors = Vec::with_capacity(n);
    for i in 0..n {
        let id = libdat::chord::Id(rng.random());
        let mut node =
            StackNode::new(ccfg, id, NodeAddr(i as u64)).with_app(DatProtocol::new(dcfg));
        let key = node.register("cpu-usage", AggregationMode::Continuous);
        node.set_local(key, 10.0 + (i * 7 % 80) as f64);
        actors.push(node);
    }
    let key = libdat::chord::hash_to_id(ccfg.space, b"cpu-usage");
    let cluster = RpcCluster::launch(actors).expect("bind sockets");
    println!("launched {n} nodes on loopback UDP");

    // Node 0 creates the ring; the rest join through it (sequentially, as
    // the prototype does).
    let bootstrap = cluster
        .call(NodeAddr(0), |node| (node.me(), node.start_create()))
        .unwrap();
    for i in 1..n {
        cluster.cast(NodeAddr(i as u64), move |node| node.start_join(bootstrap));
        std::thread::sleep(Duration::from_millis(60));
    }

    // Wait until every node is active and the successor ring closes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            if let Some(s) = cluster.call(NodeAddr(i as u64), |node| {
                (
                    (
                        node.status(),
                        node.me().id,
                        node.chord().table().successor().map(|s| s.id),
                    ),
                    vec![],
                )
            }) {
                states.push(s);
            }
        }
        let all_active = states.iter().all(|(st, _, _)| *st == NodeStatus::Active);
        if all_active {
            let mut ids: Vec<_> = states.iter().map(|(_, id, _)| *id).collect();
            ids.sort_unstable();
            let ok = states.iter().all(|(_, id, succ)| {
                let pos = ids.iter().position(|x| x == id).unwrap();
                *succ == Some(ids[(pos + 1) % ids.len()])
            });
            if ok {
                println!("ring converged: {n} nodes active, successors correct");
                break;
            }
        }
        assert!(Instant::now() < deadline, "ring did not converge in 30s");
        std::thread::sleep(Duration::from_millis(200));
    }

    // Let continuous aggregation warm up, then issue an on-demand query
    // from a random non-root node.
    std::thread::sleep(Duration::from_millis(1_200));
    let asker = NodeAddr((n as u64).saturating_sub(1));
    let reqid = cluster
        .call(asker, move |node| node.query(key))
        .expect("query dispatched");
    println!("on-demand query {reqid} issued from node {asker:?}...");

    let deadline = Instant::now() + Duration::from_secs(15);
    let partial = loop {
        let found = cluster
            .call(asker, |node| (node.take_events(), vec![]))
            .unwrap_or_default()
            .into_iter()
            .find_map(|e| match e {
                DatEvent::QueryDone {
                    reqid: r, partial, ..
                } if r == reqid => Some(partial),
                _ => None,
            });
        if let Some(p) = found {
            break p;
        }
        assert!(Instant::now() < deadline, "query did not complete in 15s");
        std::thread::sleep(Duration::from_millis(100));
    };
    println!(
        "global cpu-usage over real UDP: count {}, avg {:.2}, min {:.0}, max {:.0}",
        partial.count,
        partial.finalize(AggFunc::Avg),
        partial.finalize(AggFunc::Min),
        partial.finalize(AggFunc::Max),
    );
    assert!(
        partial.count as usize >= n * 9 / 10,
        "query should cover (almost) every node"
    );

    let stats = cluster.stats();
    println!(
        "transport: {} datagrams sent, {} received, {} decode errors",
        stats.sent, stats.received, stats.decode_errors
    );
    cluster.shutdown();
    println!(
        "ok: live UDP cluster aggregated {} of {n} nodes",
        partial.count
    );
}
