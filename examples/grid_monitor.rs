//! Grid monitoring end-to-end: a 512-node simulated Grid aggregates a
//! 30-minute CPU-usage trace through the balanced DAT (the paper's §5.4
//! scenario, shortened; pass `--full` for the whole 2 hours).
//!
//! ```text
//! cargo run --release --example grid_monitor [-- --full]
//! ```

use libdat::monitor::{CpuTrace, GridMonitorSim, MonitorConfig, TraceConfig, TraceSensor};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let duration_s = if full { 7200 } else { 1800 };
    let epoch_s = 10;

    let trace = CpuTrace::generate(TraceConfig {
        duration_s,
        ..TraceConfig::default()
    });
    println!(
        "trace: {}s, {} samples, lag-1 autocorrelation {:.3}",
        duration_s,
        trace.len(),
        trace.lag1_autocorr()
    );

    let cfg = MonitorConfig {
        nodes: 512,
        epoch_ms: epoch_s * 1_000,
        ..MonitorConfig::default()
    };
    // Paper §5.4: every node replays the same trace.
    let mut sim = GridMonitorSim::new(cfg, "cpu-usage", |_| {
        Box::new(TraceSensor::new("cpu-usage", trace.clone(), 0, 1.0))
    });

    println!("\n  t(min)   actual-total   aggregated     err%");
    let epochs = duration_s / epoch_s;
    for e in 0..epochs {
        sim.step_epoch();
        if e % 18 == 0 || e == epochs - 1 {
            let r = sim.records().last().unwrap();
            match r.reported_total {
                Some(v) => println!(
                    "  {:>5}   {:>12.1}   {:>10.1}   {:+.2}",
                    r.t_s / 60,
                    r.actual_total,
                    v,
                    (v - r.actual_total) / r.actual_total * 100.0
                ),
                None => println!("  {:>5}   {:>12.1}   (warm-up)", r.t_s / 60, r.actual_total),
            }
        }
    }

    let acc = sim.accuracy();
    println!(
        "\naccuracy over {} reported epochs: MAPE {:.3}%, worst {:.3}%, node coverage {:.1}%",
        acc.reported_epochs,
        acc.mape,
        acc.max_ape,
        acc.coverage * 100.0
    );
    assert!(acc.mape < 5.0, "aggregation should track the trace closely");
    println!("ok: the aggregated view tracks ground truth (Fig 9 shape)");
}
