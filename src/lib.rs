//! # libdat — Distributed Aggregation Trees with Load-Balancing on Chord
//!
//! A full reproduction of *"Distributed Aggregation Algorithms with
//! Load-Balancing for Scalable Grid Resource Monitoring"* (Min Cai & Kai
//! Hwang, IPDPS 2007) as a Rust workspace. This umbrella crate re-exports
//! every layer under one roof:
//!
//! * [`chord`] — the Chord overlay: identifier space, finger tables with
//!   FOF, greedy **and balanced** routing, stabilization, identifier
//!   probing, plus a global-view [`chord::StaticRing`] for analysis;
//! * [`core`] — the DAT library: implicit basic/balanced trees, mergeable
//!   aggregate partials, the protocol-stack engine ([`core::StackNode`]
//!   hosting [`core::AppProtocol`] handlers) with continuous and on-demand
//!   aggregation, the centralized and explicit-tree baselines, and the
//!   paper's closed-form theory;
//! * [`sim`] — the discrete-event engine (heap queue, virtual time,
//!   latency/loss models) and overlay-building harness;
//! * [`rpc`] — the UDP transport running the same sans-io nodes over real
//!   sockets;
//! * [`maan`] — the multi-attribute addressable network indexing layer;
//! * [`monitor`] — the P-GMA monitoring stack (sensors → producers →
//!   aggregation → consumers) with the synthetic CPU-usage trace;
//! * [`obs`] — the observability subsystem: mergeable counter/gauge/
//!   histogram registries, structured event tracing with causal epoch
//!   trace ids, and Prometheus text exposition.
//!
//! ## Five-minute tour
//!
//! ```
//! use libdat::chord::{IdSpace, IdPolicy, StaticRing, RoutingScheme, Id};
//! use libdat::core::{DatTree, TreeStats};
//! use rand::SeedableRng;
//!
//! // A 512-node overlay with identifier probing, like the paper's.
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let ring = StaticRing::build(IdSpace::new(32), 512, IdPolicy::Probed, &mut rng);
//!
//! // The balanced DAT toward the "cpu-usage" rendezvous key.
//! let key = libdat::chord::hash_to_id(ring.space(), b"cpu-usage");
//! let tree = DatTree::build(&ring, key, RoutingScheme::Balanced);
//! let stats = TreeStats::of(&tree);
//!
//! assert!(stats.max_branching <= 6);          // near-constant branching
//! assert!(stats.height <= 20);                // O(log n) height
//! assert_eq!(tree.root(), ring.successor(key));
//! # let _: Id = tree.root();
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `cargo run --release -p dat-bench --bin repro -- all` for the full
//! paper-figure reproduction.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dat_chord as chord;
pub use dat_cluster as cluster;
pub use dat_core as core;
pub use dat_maan as maan;
pub use dat_monitor as monitor;
pub use dat_obs as obs;
pub use dat_rpc as rpc;
pub use dat_sim as sim;
